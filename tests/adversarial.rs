//! The adversarial-tenant gate: seeded DoS attack plans driven
//! against full fleet runs, holding five invariants:
//!
//! (a) **RT envelope under attack** — with per-tenant enforcement
//!     armed ([`AttackDefense`]), no attacked flight's 400 Hz fast
//!     loop ever misses ArduPilot's 2500 µs deadline, and the worst
//!     wakeup latency stays inside the paper's PREEMPT_RT envelope.
//! (b) **Breach without enforcement** — the same attack machinery
//!     with `defense: None` demonstrably blows the deadline: the
//!     isolation mechanisms are load-bearing, not decorative.
//! (c) **Determinism** — attacked runs replay bit-identically
//!     (fleet digest AND merged metrics digest) at threads 1/4/8.
//! (d) **Terminal outcomes** — every attacked tenant still resolves:
//!     completed missions bill, everything else is terminally
//!     refunded; the escalation ladder (budget → rate-halving →
//!     suspension → revocation) degrades gracefully, never hangs.
//! (e) **Zero-work when empty** — `execute_fleet_attacked` with
//!     [`FleetAttackPlan::none`] is bit-identical to the legacy
//!     `execute_fleet` path.
//!
//! Breadth is controlled by `ATTACK_SEEDS` (default 4; the release
//! gate in `scripts/attack.sh` runs the same count) and the thread
//! matrix by `ATTACK_THREADS` (default "1 4 8").

use std::collections::BTreeMap;

use androne::fleet::{
    FleetAttackPlan, FleetConfig, FleetOutcome, FleetSpec,
    FleetTenant, TenantResolution,
};
use androne::hal::GeoPoint;
use androne::simkern::latency::profiles;
use androne::simkern::{ContainerId, FleetFaultPlan, Kernel, KernelConfig};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::workloads::{run_cyclictest, AttackKind, AttackPlan, ARDUPILOT_DEADLINE_US};
use androne::AttackDefense;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const MAX_SIM_S: f64 = 240.0;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

/// Tenants matching the fleet chaos gate's geometry so the VRP
/// splits every wave across at least two physical flights.
fn fleet_tenants(n: usize) -> Vec<FleetTenant> {
    (0..n)
        .map(|i| {
            let k = i as f64;
            FleetTenant {
                vd_name: format!("vd{}", i + 1),
                user: format!("user{}", i + 1),
                spec: VirtualDroneSpec {
                    waypoints: vec![
                        wp(40.0 + 9.0 * k, -30.0 + 14.0 * k, 40.0),
                        wp(62.0 - 6.0 * k, 25.0 + 11.0 * k, 40.0),
                    ],
                    max_duration: 8.0,
                    energy_allotted: 60_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: vec!["camera".into(), "flight-control".into()],
                    apps: vec![],
                    app_args: Default::default(),
                },
            }
        })
        .collect()
}

fn gate_config(seed: u64, n_tenants: usize) -> FleetConfig {
    FleetConfig {
        base: BASE,
        seed,
        fleet_size: 2,
        tenants: fleet_tenants(n_tenants),
        max_waves: 6,
        max_sim_seconds: MAX_SIM_S,
        watchdog: None,
        threads: 1,
    }
}

/// Terminal-outcome invariant (d): every tenant resolves, the ledger
/// agrees with the VDC records, completion and refunds are exact.
fn assert_terminal_outcomes(run: &FleetOutcome, label: &str) {
    for (name, t) in &run.tenants {
        assert!(
            (t.ledger_energy_j - t.billed_energy_j).abs() < 1e-6,
            "{label}: {name} ledger billed {:.3} J but VDC records say {:.3} J",
            t.ledger_energy_j,
            t.billed_energy_j
        );
        assert!(
            (t.ledger_refund_j - t.refunded_energy_j).abs() < 1e-6,
            "{label}: {name} ledger refund disagrees"
        );
        match t.resolution {
            TenantResolution::Completed => {
                assert_eq!(
                    t.waypoints_completed, t.waypoints_total,
                    "{label}: {name} resolved Completed with waypoints unserved"
                );
                assert_eq!(
                    t.refunded_energy_j, 0.0,
                    "{label}: {name} completed but also refunded"
                );
            }
            TenantResolution::Refunded => {
                let expected = if t.flights_flown == 0 {
                    t.energy_allotted_j
                } else {
                    t.remaining_energy_j
                };
                assert!(
                    (t.refunded_energy_j - expected).abs() < 1e-6,
                    "{label}: {name} refunded {:.3} J, expected {expected:.3} J",
                    t.refunded_energy_j
                );
            }
        }
    }
}

/// The gate proper, invariants (a), (c), (d): generated attack plans
/// with enforcement armed never miss the fast-loop deadline, replay
/// bit-identically at every thread width, and every tenant resolves.
#[test]
fn attacked_fleet_holds_deadline_and_determinism() {
    let n: u64 = std::env::var("ATTACK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    for i in 0..n {
        let seed = 0xA77A_C4ED ^ (i.wrapping_mul(0x9E37_79B9));
        let cfg = gate_config(seed, 3 + (i as usize % 2));
        let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.vd_name.clone()).collect();
        // Attack the first two physical flights of the run; later
        // flights fly clean so the gate also covers the mixed case.
        let mut flights = BTreeMap::new();
        flights.insert(0usize, AttackPlan::generate(seed, 120, &tenant_names));
        flights.insert(1usize, AttackPlan::generate(seed ^ 0xDEAD, 120, &tenant_names));
        let attacks = FleetAttackPlan {
            flights,
            defense: Some(AttackDefense::default()),
            ..FleetAttackPlan::none()
        };
        let label = format!("attack seed {seed:#x} ({} tenants)", cfg.tenants.len());

        // (c) dual-run bit-identity of the attacked run.
        let a = FleetSpec::new(cfg.clone()).attacks(attacks.clone()).run().expect("run");
        let b = FleetSpec::new(cfg.clone()).attacks(attacks.clone()).run().expect("rerun");
        assert_eq!(a.fleet_digest(), b.fleet_digest(), "{label}: dual-run divergence");
        assert_eq!(
            a.metrics_digest(),
            b.metrics_digest(),
            "{label}: dual-run metrics divergence"
        );

        // (c') thread-count independence of the attacked executor.
        let widths = std::env::var("ATTACK_THREADS").unwrap_or_else(|_| "1 4 8".into());
        for width in widths.split_whitespace() {
            let threads: usize = width.parse().expect("ATTACK_THREADS entry");
            let mut tcfg = cfg.clone();
            tcfg.threads = threads;
            let t = FleetSpec::new(tcfg.clone()).attacks(attacks.clone()).run()
                .expect("threaded run");
            assert_eq!(
                a.fleet_digest(),
                t.fleet_digest(),
                "{label}: fleet digest diverged at threads={threads}"
            );
            assert_eq!(
                a.metrics_digest(),
                t.metrics_digest(),
                "{label}: metrics digest diverged at threads={threads}"
            );
        }

        // (a) the monitor rode every attacked flight and the fast
        // loop stayed inside the RT envelope end to end.
        let monitored: Vec<_> = a.flights.iter().filter(|f| f.rt_deadline.is_some()).collect();
        assert!(
            !monitored.is_empty(),
            "{label}: no flight carried the RT monitor"
        );
        for f in &monitored {
            let Some((samples, misses, max_us)) = f.rt_deadline else {
                continue;
            };
            assert!(samples > 0, "{label}: flight {} sampled nothing", f.flight_index);
            assert_eq!(
                misses, 0,
                "{label}: flight {} missed the 2500 µs deadline {misses}/{samples} times under enforcement (max {max_us:.1} µs)",
                f.flight_index
            );
            assert!(
                max_us < ARDUPILOT_DEADLINE_US,
                "{label}: flight {} worst wakeup {max_us:.1} µs left the RT envelope",
                f.flight_index
            );
        }
        // Unattacked flights carry no monitor — the machinery stays
        // scoped to the flights the plan names.
        for f in a.flights.iter().filter(|f| f.flight_index > 1) {
            assert!(
                f.rt_deadline.is_none(),
                "{label}: clean flight {} grew a monitor",
                f.flight_index
            );
        }

        // (d) every tenant — attacked or not — reached a terminal,
        // ledger-consistent outcome.
        assert_eq!(a.tenants.len(), cfg.tenants.len(), "{label}: tenant lost");
        assert_terminal_outcomes(&a, &label);
    }
}

/// Invariant (b): a pinned Binder-flood plan with enforcement
/// disabled breaches the 2500 µs fast loop; the identical plan with
/// the default defense armed does not. The contrast is the PR's
/// thesis in one test.
#[test]
fn unenforced_flood_breaches_the_fast_loop_and_defense_restores_it() {
    let cfg = FleetConfig {
        base: BASE,
        seed: 0xD05_A77C,
        fleet_size: 1,
        tenants: fleet_tenants(1),
        max_waves: 6,
        max_sim_seconds: MAX_SIM_S,
        watchdog: None,
        threads: 1,
    };
    let plan = AttackPlan::single(AttackKind::BinderFlood { per_tick: 600 }, "vd1", 2, 60);
    let mut flights = BTreeMap::new();
    flights.insert(0usize, plan);

    let unenforced = FleetAttackPlan {
        flights: flights.clone(),
        defense: None,
        ..FleetAttackPlan::none()
    };
    let run = FleetSpec::new(cfg.clone()).attacks(unenforced.clone()).run().expect("run");
    let (samples, misses, max_us) = run.flights[0]
        .rt_deadline
        .expect("the attacked flight carries the monitor");
    assert!(samples > 0);
    assert!(
        misses > 0,
        "unenforced flood should breach the deadline (max {max_us:.1} µs over {samples} samples)"
    );
    assert!(
        max_us > ARDUPILOT_DEADLINE_US,
        "unenforced worst case {max_us:.1} µs should exceed 2500 µs"
    );
    assert_terminal_outcomes(&run, "unenforced flood");

    let defended = FleetAttackPlan {
        flights,
        defense: Some(AttackDefense::default()),
        ..FleetAttackPlan::none()
    };
    let run = FleetSpec::new(cfg.clone()).attacks(defended.clone()).run().expect("run");
    let (samples, misses, max_us) = run.flights[0].rt_deadline.expect("monitor rode the flight");
    assert!(samples > 0);
    assert_eq!(
        misses, 0,
        "the defended flood missed {misses}/{samples} deadlines (max {max_us:.1} µs)"
    );
    assert!(max_us < ARDUPILOT_DEADLINE_US, "defended max {max_us:.1} µs");
    // The defense actually engaged: the flood tripped the budget and
    // the throttle counters surfaced in the merged metrics.
    assert!(
        run.flights[0].injected.iter().any(|l| l.contains("binder-flood")),
        "attack transitions logged: {:?}",
        run.flights[0].injected
    );
    assert_terminal_outcomes(&run, "defended flood");
}

/// Invariant (b) at the benchmark layer: cyclictest run exactly as
/// the paper's Section 6.2 does, against the attack interference
/// profiles. Throttled residual interference stays inside the
/// PREEMPT_RT envelope; the unthrottled profile shows the
/// millisecond tail and misses the ArduPilot deadline.
#[test]
fn cyclictest_bounds_the_throttled_attack_and_exposes_the_raw_one() {
    const LOOPS: u64 = 300_000;

    let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 11);
    kernel.add_interference(profiles::attack_throttled("attack:binder-flood"));
    let throttled = run_cyclictest(&mut kernel, ContainerId(2), LOOPS);
    assert!(
        throttled.max_us() < ARDUPILOT_DEADLINE_US,
        "throttled attack max {} µs",
        throttled.max_us()
    );
    assert_eq!(throttled.deadline_misses, 0);

    let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 11);
    kernel.add_interference(profiles::attack_unenforced("attack:binder-flood"));
    let raw = run_cyclictest(&mut kernel, ContainerId(2), LOOPS);
    assert!(
        raw.deadline_misses > 0,
        "unenforced attack must miss the fast loop (max {} µs)",
        raw.max_us()
    );
    assert!(raw.max_us() > ARDUPILOT_DEADLINE_US, "max {} µs", raw.max_us());
    assert!(
        raw.max_us() > throttled.max_us(),
        "enforcement shrank the tail: {} vs {}",
        throttled.max_us(),
        raw.max_us()
    );
}

/// Invariant (d) in depth: an aggressive flood against tight ladder
/// thresholds walks budget → rate-halved → suspended → revoked, the
/// revoked tenant is terminally refunded, and the flight still ends
/// cleanly — graceful degradation, not a hang.
#[test]
fn escalation_ladder_walks_to_revocation_and_still_resolves() {
    let cfg = FleetConfig {
        base: BASE,
        seed: 0x1ADDE2,
        fleet_size: 1,
        tenants: fleet_tenants(1),
        max_waves: 6,
        max_sim_seconds: MAX_SIM_S,
        watchdog: None,
        threads: 1,
    };
    let mut flights = BTreeMap::new();
    flights.insert(
        0usize,
        AttackPlan::single(AttackKind::BinderFlood { per_tick: 800 }, "vd1", 2, 200),
    );
    let attacks = FleetAttackPlan {
        flights,
        defense: Some(AttackDefense {
            halve_after: 8,
            suspend_after: 600,
            revoke_after: 2_000,
            ..AttackDefense::default()
        }),
        ..FleetAttackPlan::none()
    };
    let run = FleetSpec::new(cfg.clone()).attacks(attacks.clone()).run().expect("run");
    let f = &run.flights[0];
    let ladder: Vec<&String> = f.injected.iter().filter(|l| l.contains("ladder")).collect();
    for rung in ["rate-halved", "suspended", "revoked"] {
        assert!(
            ladder.iter().any(|l| l.contains(rung)),
            "ladder never reached {rung}: {ladder:?}"
        );
    }
    // One rung per tick at most: the escalation is ordered and
    // gradual, and each rung appears exactly once.
    assert_eq!(ladder.len(), 3, "each rung fires once: {ladder:?}");
    let t = &run.tenants["vd1"];
    assert_eq!(
        t.resolution,
        TenantResolution::Refunded,
        "the revoked tenant is terminally refunded: {t:?}"
    );
    let (_, misses, max_us) = f.rt_deadline.expect("monitor rode the flight");
    assert_eq!(misses, 0, "enforced even while escalating (max {max_us:.1} µs)");
    assert_terminal_outcomes(&run, "ladder");
}

/// Invariant (e): the attacked executor with no attack plan is
/// bit-identical to the legacy path — empty plans are provably
/// zero-work, so every pre-existing pinned digest stands.
#[test]
fn empty_attack_plan_is_zero_work() {
    let cfg = gate_config(0xF1EE_5EED, 3);
    let faults = FleetFaultPlan::empty();
    let legacy = FleetSpec::new(cfg.clone()).faults(faults.clone()).run().expect("legacy run");
    let attacked = FleetSpec::new(cfg.clone()).faults(faults.clone()).attacks(FleetAttackPlan::none()).run().expect("run");
    assert_eq!(legacy.fleet_digest(), attacked.fleet_digest());
    assert_eq!(legacy.metrics_digest(), attacked.metrics_digest());

    // A defense posture with no attack events is still zero-work:
    // enforcement arms per-attacker at attack-arm time, never
    // preemptively.
    let mut flights = BTreeMap::new();
    flights.insert(0usize, AttackPlan::empty());
    let armed_but_empty = FleetAttackPlan {
        flights,
        defense: Some(AttackDefense::default()),
        ..FleetAttackPlan::none()
    };
    assert!(armed_but_empty.is_empty());
    let run = FleetSpec::new(cfg.clone()).faults(faults.clone()).attacks(armed_but_empty.clone()).run().expect("run");
    assert_eq!(legacy.fleet_digest(), run.fleet_digest());
    assert_eq!(legacy.metrics_digest(), run.metrics_digest());
    assert!(run.flights.iter().all(|f| f.rt_deadline.is_none()));
}

/// Ladder hysteresis: "Suspended is recoverable" made real. A flood
/// pushes the tenant up to `Suspended` against tight thresholds,
/// then stops; with `decay_after` armed, consecutive quiet ticks
/// step the tenant back down (suspension lifted, then the halved
/// rate restored) and the mission still finishes `Completed` — not
/// `Refunded` — with identical digests at threads 1/4/8.
#[test]
fn suspended_tenant_recovers_and_completes_after_going_quiet() {
    let run_at = |threads: usize| {
        let cfg = FleetConfig {
            base: BASE,
            seed: 0x5E1F_CA2E,
            fleet_size: 1,
            tenants: fleet_tenants(1),
            max_waves: 6,
            max_sim_seconds: MAX_SIM_S,
            watchdog: None,
            threads,
        };
        let mut flights = BTreeMap::new();
        flights.insert(
            0usize,
            AttackPlan::single(AttackKind::BinderFlood { per_tick: 800 }, "vd1", 2, 12),
        );
        let attacks = FleetAttackPlan {
            flights,
            defense: Some(AttackDefense {
                halve_after: 8,
                suspend_after: 600,
                revoke_after: 1_000_000,
                decay_after: Some(3),
                ..AttackDefense::default()
            }),
            ..FleetAttackPlan::none()
        };
        FleetSpec::new(cfg.clone()).attacks(attacks.clone()).run().expect("run")
    };
    let run = run_at(1);
    let f = &run.flights[0];
    let ladder: Vec<&String> = f.injected.iter().filter(|l| l.contains("ladder")).collect();
    // Up while the flood runs...
    assert!(
        ladder.iter().any(|l| l.contains("-> suspended")),
        "the flood never reached suspension: {ladder:?}"
    );
    // ...and back down after it goes quiet: suspension lifted, then
    // the halved rate restored.
    assert!(
        ladder.iter().any(|l| l.contains("~> rate-halved")),
        "hysteresis never lifted the suspension: {ladder:?}"
    );
    assert!(
        ladder.iter().any(|l| l.contains("~> budgeted")),
        "hysteresis never restored the rate: {ladder:?}"
    );
    let t = &run.tenants["vd1"];
    assert_eq!(
        t.resolution,
        TenantResolution::Completed,
        "the recovered tenant must complete, not refund: {t:?}"
    );
    let (_, misses, max_us) = f.rt_deadline.expect("monitor rode the flight");
    assert_eq!(misses, 0, "enforced throughout recovery (max {max_us:.1} µs)");
    assert_terminal_outcomes(&run, "recovery");
    for threads in [4usize, 8] {
        let other = run_at(threads);
        assert_eq!(
            run.fleet_digest(),
            other.fleet_digest(),
            "threads {threads}: fleet digest diverged"
        );
        assert_eq!(
            run.metrics_digest(),
            other.metrics_digest(),
            "threads {threads}: metrics digest diverged"
        );
    }
}
