//! The fleet chaos gate: whole service runs — multiple waves,
//! multiple physical flights, multiple tenants — under generated
//! [`FleetFaultPlan`]s, holding four invariants on every one:
//!
//! (a) **Determinism** — the same config and fleet plan replayed
//!     twice fold to the same [`FleetOutcome::fleet_digest`].
//! (b) **Containment** — a tenant-targeted container crash never
//!     changes a *healthy* tenant's outcome bits versus the no-fault
//!     baseline run.
//! (c) **Conservation** — for every tenant that flew, billed energy
//!     and time telescope exactly across crash→resume:
//!     `allotted = Σ billed + final remaining`, and the billing
//!     ledger agrees with the VDC's allotment records.
//! (d) **Resolution** — every interrupted virtual drone either
//!     resumes to completion or is terminally refunded its unserved
//!     remainder; nothing is silently dropped.
//!
//! The `empty_fleet_plan_is_bit_identical_to_pr3_baseline` test pins
//! the fleet plumbing to the PR 3 chaos-gate baseline: driving the
//! single-flight scenario through `FleetFaultPlan::empty()`'s
//! effective plan must reproduce the exact pre-fleet bits.
//!
//! Breadth is controlled by `FLEET_CHAOS_SEEDS` (default 8; the
//! release gate in `scripts/chaos.sh --fleet` runs the same count).

use androne::android::DeviceClass;
use androne::fleet::{FleetConfig, FleetOutcome, FleetSpec, FleetTenant, TenantResolution};
use androne::hal::GeoPoint;
use androne::mavlink::{deg_to_e7, Message};
use androne::sanitizer::{TickHashes, Trace};
use androne::simkern::{
    CloudFaultEvent, CloudFaultKind, FaultEvent, FaultKind, FaultPlan, FleetFaultPlan,
};
use androne::vdc::{VirtualDroneSpec, WatchdogConfig, WaypointSpec};
use androne::{execute_flight_probed, Drone, EndReason, FaultInjector, FlightLog, FnProbe, ProbeStack};
use rand::RngCore;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const MAX_SIM_S: f64 = 240.0;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

/// The PR 3 chaos-gate scenario spec, bit-for-bit.
fn pr3_spec() -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints: vec![wp(60.0, 0.0, 40.0)],
        max_duration: 120.0,
        energy_allotted: 40_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec!["com.example.survey.apk".into()],
        app_args: Default::default(),
    }
}

fn pr3_plan() -> androne::planner::FlightPlan {
    androne::planner::FlightPlan {
        base: BASE,
        legs: vec![androne::planner::Leg {
            owner: "vd1".into(),
            position: BASE.offset_m(60.0, 0.0, 15.0),
            max_radius_m: 40.0,
            service_energy_j: 10_000.0,
            service_time_s: 8.0,
            eta_s: 20.0,
        }],
        estimated_duration_s: 120.0,
        estimated_energy_j: 40_000.0,
    }
}

/// Tenants for a fleet run: two waypoints each, with energy
/// allotments sized so the VRP *must* split the wave across at least
/// two physical flights (3 × 60 kJ of service energy exceeds one
/// pack's ~160 kJ plannable budget).
fn fleet_tenants(n: usize) -> Vec<FleetTenant> {
    (0..n)
        .map(|i| {
            let k = i as f64;
            FleetTenant {
                vd_name: format!("vd{}", i + 1),
                user: format!("user{}", i + 1),
                spec: VirtualDroneSpec {
                    waypoints: vec![
                        wp(40.0 + 9.0 * k, -30.0 + 14.0 * k, 40.0),
                        wp(62.0 - 6.0 * k, 25.0 + 11.0 * k, 40.0),
                    ],
                    max_duration: 8.0,
                    energy_allotted: 60_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: vec!["camera".into(), "flight-control".into()],
                    apps: vec![],
                    app_args: Default::default(),
                },
            }
        })
        .collect()
}

fn gate_config(seed: u64, n_tenants: usize) -> FleetConfig {
    FleetConfig {
        base: BASE,
        seed,
        fleet_size: 2,
        tenants: fleet_tenants(n_tenants),
        max_waves: 6,
        max_sim_seconds: MAX_SIM_S,
        watchdog: None,
        threads: 1,
    }
}

/// Invariants (c) and (d) plus per-flight sanity on one run.
fn assert_run_invariants(cfg: &FleetConfig, run: &FleetOutcome, label: &str) {
    assert_eq!(
        run.tenants.len(),
        cfg.tenants.len(),
        "{label}: tenant lost from the outcome"
    );
    for f in &run.flights {
        assert!(
            f.duration_s <= cfg.max_sim_seconds,
            "{label}: flight {} overran the safety cap",
            f.flight_index
        );
        assert!(f.total_energy_j >= 0.0, "{label}: negative energy");
        assert!(!f.owners.is_empty(), "{label}: flight without tenants");
    }
    for (name, t) in &run.tenants {
        // (c) conservation: the allotment telescopes exactly across
        // every flight (resume carries the remainder), and the
        // billing ledger agrees with the VDC-side accumulation.
        if t.flights_flown > 0 {
            let energy_gap = t.energy_allotted_j - t.billed_energy_j - t.remaining_energy_j;
            assert!(
                energy_gap.abs() < 1e-6,
                "{label}: {name} energy not conserved: allotted {:.3} = billed {:.3} + remaining {:.3} (gap {energy_gap:.9})",
                t.energy_allotted_j,
                t.billed_energy_j,
                t.remaining_energy_j
            );
            let time_allotted = cfg
                .tenants
                .iter()
                .find(|x| &x.vd_name == name)
                .map(|x| x.spec.max_duration)
                .unwrap_or(0.0);
            let time_gap = time_allotted - t.billed_time_s - t.remaining_time_s;
            assert!(
                time_gap.abs() < 1e-6,
                "{label}: {name} time not conserved (gap {time_gap:.9})"
            );
        }
        assert!(
            (t.ledger_energy_j - t.billed_energy_j).abs() < 1e-6,
            "{label}: {name} ledger billed {:.3} J but the VDC records say {:.3} J",
            t.ledger_energy_j,
            t.billed_energy_j
        );
        assert!(
            (t.ledger_refund_j - t.refunded_energy_j).abs() < 1e-6,
            "{label}: {name} ledger refund disagrees"
        );
        // (d) resolution: completed missions served every waypoint;
        // everything else was terminally refunded its unserved
        // remainder (the full allotment if it never flew).
        match t.resolution {
            TenantResolution::Completed => {
                assert_eq!(
                    t.waypoints_completed, t.waypoints_total,
                    "{label}: {name} resolved Completed with waypoints unserved"
                );
                assert_eq!(
                    t.refunded_energy_j, 0.0,
                    "{label}: {name} completed but also refunded"
                );
            }
            TenantResolution::Refunded => {
                let expected = if t.flights_flown == 0 {
                    t.energy_allotted_j
                } else {
                    t.remaining_energy_j
                };
                assert!(
                    (t.refunded_energy_j - expected).abs() < 1e-6,
                    "{label}: {name} refunded {:.3} J, expected {expected:.3} J",
                    t.refunded_energy_j
                );
            }
        }
    }
}

/// The gate proper: generated fleet plans, dual-run identity, crash
/// containment against the no-fault baseline, conservation, and
/// resolution — `FLEET_CHAOS_SEEDS` plans (default 8).
#[test]
fn fleet_gate_holds_invariants_across_generated_plans() {
    let n: u64 = std::env::var("FLEET_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    for i in 0..n {
        let seed = 0xF1EE_5EED ^ (i.wrapping_mul(0x9E37_79B9));
        let cfg = gate_config(seed, 3 + (i as usize % 2));
        let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.vd_name.clone()).collect();
        let faults = FleetFaultPlan::generate(seed, 3, &tenant_names, 150);
        let label = format!(
            "fleet seed {seed:#x} ({} tenants, {} flight plans, {} correlated, {} cloud)",
            cfg.tenants.len(),
            faults.flights.len(),
            faults.correlated.len(),
            faults.cloud.len()
        );

        // (a) dual-run bit-identity of the full faulted run.
        let a = FleetSpec::new(cfg.clone()).faults(faults.clone()).run().expect("fleet run");
        let b = FleetSpec::new(cfg.clone()).faults(faults.clone()).run().expect("fleet rerun");
        assert_eq!(
            a.fleet_digest(),
            b.fleet_digest(),
            "{label}: dual-run fleet divergence"
        );
        assert_eq!(a.flights.len(), b.flights.len(), "{label}: flight count drift");
        assert_run_invariants(&cfg, &a, &label);

        // (a') thread-count independence: the parallel wave executor
        // must merge to the exact sequential run — fleet digest AND
        // the merged metrics registry digest — at every width in the
        // matrix (`FLEET_CHAOS_THREADS`, default "1 4 8").
        let widths = std::env::var("FLEET_CHAOS_THREADS").unwrap_or_else(|_| "1 4 8".into());
        for width in widths.split_whitespace() {
            let threads: usize = width.parse().expect("FLEET_CHAOS_THREADS entry");
            let mut tcfg = cfg.clone();
            tcfg.threads = threads;
            let t = FleetSpec::new(tcfg.clone()).faults(faults.clone()).run().expect("threaded fleet run");
            assert_eq!(
                a.fleet_digest(),
                t.fleet_digest(),
                "{label}: fleet digest diverged at threads={threads}"
            );
            assert_eq!(
                a.metrics_digest(),
                t.metrics_digest(),
                "{label}: metrics digest diverged at threads={threads}"
            );
        }

        // Scale: every gate plan must exercise a real fleet.
        assert!(
            a.flights.len() >= 2,
            "{label}: expected >= 2 physical flights, got {}",
            a.flights.len()
        );
        assert!(cfg.tenants.len() >= 2, "{label}: degenerate tenant set");

        // (b) crash containment: replay only the tenant-targeted
        // container crashes and compare every *healthy* tenant's
        // outcome bits against the no-fault baseline. If the
        // generated plan crashed nobody, synthesize a victim so the
        // invariant is never vacuous.
        let baseline = FleetSpec::new(cfg.clone()).run().expect("baseline run");
        assert_run_invariants(&cfg, &baseline, &format!("{label} [baseline]"));
        let mut crash = faults.crash_only();
        if crash.is_empty() {
            crash.flights = vec![FaultPlan {
                seed: crash.seed,
                events: vec![FaultEvent {
                    kind: FaultKind::ContainerCrash {
                        target: Some(baseline.flights[0].owners[0].clone()),
                    },
                    arm_tick: 25,
                    disarm_tick: 40,
                }],
            }];
        }
        let crashed = FleetSpec::new(cfg.clone()).faults(crash.clone()).run().expect("crash-only run");
        assert_run_invariants(&cfg, &crashed, &format!("{label} [crash-only]"));
        let victims = crash.crash_targets();
        assert!(!victims.is_empty(), "{label}: no crash victim to contain");
        for (name, t) in &baseline.tenants {
            if victims.contains(name) {
                continue;
            }
            assert_eq!(
                t.outcome_bits(),
                crashed.tenants[name].outcome_bits(),
                "{label}: co-tenant crash of {victims:?} perturbed healthy tenant {name}"
            );
        }
    }
}

/// An empty fleet plan driven through the fleet fault machinery must
/// reproduce the PR 3 chaos-gate baseline literals bit-for-bit: the
/// fleet layer consumed nothing.
#[test]
fn empty_fleet_plan_is_bit_identical_to_pr3_baseline() {
    let fleet = FleetFaultPlan::empty();
    assert!(fleet.is_empty());
    assert!(fleet.crash_only().is_empty());
    assert!(fleet.cloud_armed(0).is_empty());

    let mut drone = Drone::boot(BASE, 1337).expect("boot");
    drone.deploy_vdrone("vd1", pr3_spec(), &[]).expect("deploy");
    let mut injector = FaultInjector::new(fleet.effective_plan(0));
    let mut trace = Trace::default();
    let outcome = {
        let mut recorder = FnProbe::new(|tick, drone: &mut Drone| {
            trace.ticks.push(TickHashes {
                tick,
                components: drone.component_hashes(),
            });
        });
        let mut probes = ProbeStack::new();
        probes.push(&mut injector);
        probes.push(&mut recorder);
        execute_flight_probed(&mut drone, pr3_plan(), MAX_SIM_S, None, &mut probes)
    };
    // The PR 3 baseline literals, captured at SEED=1337.
    assert!(outcome.completed);
    assert_eq!(outcome.end_reason, EndReason::Completed);
    assert_eq!(outcome.duration_s.to_bits(), 0x4051fb3333333333);
    assert_eq!(outcome.total_energy_j.to_bits(), 0x40c711038eb086ac);
    assert_eq!(outcome.vdrone_energy_j["vd1"].to_bits(), 0x40959f2c0ceda0e8);
    assert_eq!(outcome.log.len(), 4);
    assert_eq!(trace.ticks.len(), 72);
    assert_eq!(
        drone.board.borrow_mut().rng.next_u64(),
        10880446920844866505
    );
    assert_eq!(drone.kernel.borrow_mut().rng().next_u64(), 8156589452691600790);
    assert!(injector.actions().is_empty());
}

/// Cloud degraded mode end-to-end: a portal outage in wave 0 queues
/// the orders; the heal merges them into wave 1's planning round and
/// the tenants still complete.
#[test]
fn portal_outage_defers_the_wave_and_orders_still_complete() {
    let cfg = gate_config(0x90A7A1, 3);
    let faults = FleetFaultPlan {
        seed: 0,
        flights: Vec::new(),
        correlated: Vec::new(),
        cloud: vec![CloudFaultEvent {
            kind: CloudFaultKind::PortalDown,
            arm_wave: 0,
            disarm_wave: 1,
        }],
    };
    let run = FleetSpec::new(cfg.clone()).faults(faults.clone()).run().expect("fleet run");
    assert_run_invariants(&cfg, &run, "portal outage");
    assert!(run.waves_run >= 2, "the outage consumed wave 0");
    assert!(
        run.flights.iter().all(|f| f.wave >= 1),
        "no flight flew through the outage"
    );
    assert!(
        run.cloud_log.iter().any(|l| l.contains("orders queued")),
        "degraded mode logged: {:?}",
        run.cloud_log
    );
    assert!(
        run.tenants
            .values()
            .all(|t| t.resolution == TenantResolution::Completed),
        "tenants completed after the heal: {:?}",
        run.tenants
    );
}

/// Cross-flight resume end-to-end: a long link partition latches the
/// failsafe RTL on flight 0, the interrupted virtual drone is saved
/// with its remaining allotment, a VDR outage defers the resume one
/// wave, and the resumed flight finishes the mission — energy and
/// time conserved across all of it.
#[test]
fn link_partition_interrupts_then_vdr_heals_and_the_drone_resumes() {
    let cfg = FleetConfig {
        base: BASE,
        seed: 0x2E50BE,
        fleet_size: 1,
        tenants: fleet_tenants(1),
        max_waves: 6,
        max_sim_seconds: MAX_SIM_S,
        watchdog: None,
        threads: 1,
    };
    let faults = FleetFaultPlan {
        seed: 0,
        flights: vec![FaultPlan {
            seed: 0,
            events: vec![FaultEvent {
                kind: FaultKind::LinkPartition,
                arm_tick: 6,
                disarm_tick: 28,
            }],
        }],
        correlated: Vec::new(),
        cloud: vec![CloudFaultEvent {
            kind: CloudFaultKind::VdrUnavailable,
            arm_wave: 1,
            disarm_wave: 2,
        }],
    };
    let run = FleetSpec::new(cfg.clone()).faults(faults.clone()).run().expect("fleet run");
    assert_run_invariants(&cfg, &run, "link partition resume");

    let t = &run.tenants["vd1"];
    assert_eq!(
        run.flights[0].end_reason,
        EndReason::LinkLost,
        "flight 0 ended on the failsafe ladder: {:?}",
        run.flights[0]
    );
    assert!(
        t.flights_flown >= 2,
        "the mission needed a resume flight: {t:?}"
    );
    assert_eq!(
        t.resolution,
        TenantResolution::Completed,
        "the resumed flight finished the mission: {t:?}"
    );
    assert_eq!(t.waypoints_completed, t.waypoints_total);
    // The VDR outage deferred the resume: nothing flew in wave 1.
    assert!(
        run.flights.iter().all(|f| f.wave != 1),
        "wave 1 was the VDR outage: {:?}",
        run.flights
    );
}

/// The progress watchdog (ISSUE satellite): a tenant busy-looping
/// valid commands without mission progress evades the stall signal
/// but not the progress heartbeat — it is revoked; the same tenant
/// heartbeating via the SDK keeps its waypoint.
#[test]
fn progress_watchdog_revokes_busy_loop_but_spares_heartbeats() {
    let watchdog = WatchdogConfig {
        stall_timeout_s: 100,
        max_denials: 50,
        progress_timeout_s: Some(3),
    };
    let target = BASE.offset_m(60.0, 0.0, 15.0);
    let run = |heartbeat: bool| -> Vec<FlightLog> {
        let mut drone = Drone::boot(BASE, 1337).expect("boot");
        drone.deploy_vdrone("vd1", pr3_spec(), &[]).expect("deploy");
        drone.vdc.borrow_mut().set_watchdog(Some(watchdog));
        let outcome = {
            let mut observer = FnProbe::new(|_tick, d: &mut Drone| {
                if d.allows("vd1", DeviceClass::Camera) {
                    // Busy loop: a whitelisted, in-fence command every
                    // second — the stall counter never fires.
                    d.proxy.client_send(
                        "vd1",
                        Message::SetPositionTargetGlobalInt {
                            lat: deg_to_e7(target.latitude),
                            lon: deg_to_e7(target.longitude),
                            alt: 15.0,
                            speed: 2.0,
                        },
                        &mut d.sitl,
                    );
                    if heartbeat {
                        d.vdc.borrow_mut().report_progress("vd1");
                    }
                }
            });
            execute_flight_probed(&mut drone, pr3_plan(), MAX_SIM_S, None, &mut observer)
        };
        outcome.log
    };

    let revoked = |log: &[FlightLog]| {
        log.iter().any(|l| {
            matches!(
                l,
                FlightLog::WaypointEnd {
                    reason: EndReason::WatchdogRevoked,
                    ..
                }
            )
        })
    };
    let busy = run(false);
    assert!(
        revoked(&busy),
        "busy-looping without progress is revoked: {busy:?}"
    );
    let heartbeating = run(true);
    assert!(
        !revoked(&heartbeating),
        "the progress heartbeat keeps the waypoint: {heartbeating:?}"
    );
}
