//! The paper's Section 6.6 multi-waypoint flight simulation,
//! reproduced end to end: one physical flight carrying three virtual
//! drones — an autonomous survey app, an interactive remote-control
//! app, and a direct-access user — with device handovers at each
//! waypoint, an intentional geofence breach handled mid-flight, and
//! camera access denied away from the owning waypoint.

use androne::android::AndroneManifest;
use androne::flight::VfcState;
use androne::flight_exec::{execute_flight, FlightLog};
use androne::hal::GeoPoint;
use androne::mavlink::{deg_to_e7, Message};
use androne::planner::{FlightPlan, Leg};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn spec(waypoints: Vec<WaypointSpec>, devices: Vec<&str>) -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints,
        max_duration: 60.0,
        energy_allotted: 30_000.0,
        continuous_devices: vec![],
        waypoint_devices: devices.into_iter().map(String::from).collect(),
        apps: vec![],
        app_args: Default::default(),
    }
}

const SURVEY_MANIFEST: &str = r#"<androne-manifest package="com.example.survey">
    <uses-permission name="camera" type="waypoint"/>
    <uses-permission name="gps" type="waypoint"/>
    <uses-permission name="flight-control" type="waypoint"/>
</androne-manifest>"#;

#[test]
fn three_tenant_flight_with_breach_recovery() {
    let mut drone = Drone::boot(BASE, 66).unwrap();
    let manifest = AndroneManifest::parse(SURVEY_MANIFEST).unwrap();

    // Virtual drone 1: the autonomous survey app (camera + GPS +
    // flight control at its waypoint).
    drone
        .deploy_vdrone(
            "vd-survey",
            spec(vec![wp(70.0, 0.0, 45.0)], vec!["camera", "gps", "flight-control"]),
            std::slice::from_ref(&manifest),
        )
        .unwrap();
    // Virtual drone 2: interactive remote control from a phone.
    drone
        .deploy_vdrone(
            "vd-interactive",
            spec(vec![wp(70.0, 80.0, 25.0)], vec!["flight-control"]),
            &[],
        )
        .unwrap();
    // Virtual drone 3: direct (console) access with camera.
    drone
        .deploy_vdrone(
            "vd-direct",
            spec(vec![wp(0.0, 90.0, 30.0)], vec!["camera", "flight-control"]),
            &[],
        )
        .unwrap();

    let legs = vec![
        Leg {
            owner: "vd-survey".into(),
            position: BASE.offset_m(70.0, 0.0, 15.0),
            max_radius_m: 45.0,
            service_energy_j: 30_000.0,
            service_time_s: 12.0,
            eta_s: 0.0,
        },
        Leg {
            owner: "vd-interactive".into(),
            position: BASE.offset_m(70.0, 80.0, 15.0),
            max_radius_m: 25.0,
            service_energy_j: 30_000.0,
            service_time_s: 15.0,
            eta_s: 0.0,
        },
        Leg {
            owner: "vd-direct".into(),
            position: BASE.offset_m(0.0, 90.0, 15.0),
            max_radius_m: 30.0,
            service_energy_j: 30_000.0,
            service_time_s: 10.0,
            eta_s: 0.0,
        },
    ];
    let plan = FlightPlan {
        base: BASE,
        legs,
        estimated_duration_s: 300.0,
        estimated_energy_j: 120_000.0,
    };

    // Drive the flight manually so the "interactive" tenant can
    // misbehave at its waypoint: we interleave client traffic with
    // the execution loop by running the flight in one call but
    // pre-programming the interactive tenant's breach through a
    // planner-side push (as the mavproxy unit tests do) is not
    // possible here — instead, verify breach handling in the
    // dedicated scenario below and check handovers here.
    let outcome = execute_flight(&mut drone, plan, 400.0, None);
    assert!(outcome.completed, "log: {:?}", outcome.log);

    // All three tenants were handed their waypoints, in plan order.
    let handovers: Vec<&str> = outcome
        .log
        .iter()
        .filter_map(|e| match e {
            FlightLog::WaypointHandover { owner, .. } => Some(owner.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(handovers, vec!["vd-survey", "vd-interactive", "vd-direct"]);

    // Every tenant's service window closed, and the drone landed.
    let ends = outcome
        .log
        .iter()
        .filter(|e| matches!(e, FlightLog::WaypointEnd { .. }))
        .count();
    assert_eq!(ends, 3);
    assert!(matches!(outcome.log.last(), Some(FlightLog::Landed)));
    assert!(drone.sitl.on_ground());
    assert!(drone.sitl.position().ground_distance_m(&BASE) < 5.0);

    // Each tenant was billed energy for its window.
    for vd in ["vd-survey", "vd-interactive", "vd-direct"] {
        assert!(
            *outcome.vdrone_energy_j.get(vd).unwrap() > 100.0,
            "{vd} paid for its waypoint time"
        );
    }

    // Stability: the attitude estimate never diverged past the AED
    // analyzer's 5-degree threshold during the whole flight.
    assert!(
        drone.sitl.max_attitude_divergence < 5f64.to_radians(),
        "AED {:.2} deg",
        drone.sitl.max_attitude_divergence.to_degrees()
    );
}

#[test]
fn interactive_tenant_breaches_and_recovers_mid_session() {
    // The paper's intentional geofence breach: an interactive tenant
    // flies the drone out of its fence; AnDrone recovers and returns
    // control without ending the flight.
    let mut drone = Drone::boot(BASE, 67).unwrap();
    drone
        .deploy_vdrone(
            "vd-interactive",
            spec(vec![wp(50.0, 0.0, 30.0)], vec!["flight-control"]),
            &[],
        )
        .unwrap();

    // Fly the drone to the waypoint with the planner connection.
    assert!(drone
        .sitl
        .arm_and_takeoff(15.0, androne::simkern::SimDuration::from_secs(30)));
    let wp_pos = BASE.offset_m(50.0, 0.0, 15.0);
    assert!(drone.sitl.goto(
        wp_pos,
        5.0,
        2.0,
        androne::simkern::SimDuration::from_secs(60)
    ));

    // Hand over control.
    drone.vdc.borrow_mut().on_waypoint_arrived("vd-interactive", 0);
    drone.proxy.activate_vfc("vd-interactive");
    assert_eq!(
        drone.proxy.vfc("vd-interactive").unwrap().state(),
        VfcState::Active
    );

    // The user pilots toward the fence edge... and the wind model of
    // reality: we inject the breach through the planner path (the
    // physical drone ends up outside the 30 m fence).
    let outside = BASE.offset_m(110.0, 0.0, 15.0);
    drone.proxy.client_send(
        androne::planner::PILOT_CLIENT,
        Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(outside.latitude),
            lon: deg_to_e7(outside.longitude),
            alt: 15.0,
            speed: 5.0,
        },
        &mut drone.sitl,
    );
    for _ in 0..(40.0 * 400.0) as u64 {
        drone.proxy.step(&mut drone.sitl);
    }
    assert_eq!(drone.proxy.breaches_handled, 1, "breach detected and handled");

    // Control came back: the VFC is Active again and accepts a
    // guided target inside the fence.
    assert_eq!(
        drone.proxy.vfc("vd-interactive").unwrap().state(),
        VfcState::Active
    );
    let back_inside = BASE.offset_m(45.0, 0.0, 15.0);
    drone.proxy.client_send(
        "vd-interactive",
        Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(back_inside.latitude),
            lon: deg_to_e7(back_inside.longitude),
            alt: 15.0,
            speed: 4.0,
        },
        &mut drone.sitl,
    );
    for _ in 0..(20.0 * 400.0) as u64 {
        drone.proxy.step(&mut drone.sitl);
    }
    assert!(
        drone.sitl.position().distance_m(&back_inside) < 3.0,
        "tenant resumed control after recovery"
    );
}
