//! Dual-run determinism sanitizer tests.
//!
//! Runs the full-system mission twice under one seed and requires
//! the per-second component hash traces to be identical; a third run
//! with a mid-flight perturbation must be localized by the sanitizer
//! to the exact tick and component.

use androne::hal::GeoPoint;
use androne::planner::{FlightPlan, Leg};
use androne::sanitizer::{first_divergence, trace_flight, trace_flight_perturbed, Trace};
use androne::simkern::FaultPlan;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::{execute_flight_probed, Drone, FaultInjector, FlightProbe, FnProbe};

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const SEED: u64 = 1337;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn spec(waypoints: Vec<WaypointSpec>) -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints,
        max_duration: 120.0,
        energy_allotted: 40_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec!["com.example.survey.apk".into()],
        app_args: Default::default(),
    }
}

fn plan() -> FlightPlan {
    FlightPlan {
        base: BASE,
        legs: vec![Leg {
            owner: "vd1".into(),
            position: BASE.offset_m(60.0, 0.0, 15.0),
            max_radius_m: 40.0,
            service_energy_j: 10_000.0,
            service_time_s: 8.0,
            eta_s: 20.0,
        }],
        estimated_duration_s: 120.0,
        estimated_energy_j: 40_000.0,
    }
}

fn traced_mission(perturb: Option<&mut dyn FlightProbe>) -> Trace {
    let mut drone = Drone::boot(BASE, SEED).expect("boot");
    drone
        .deploy_vdrone("vd1", spec(vec![wp(60.0, 0.0, 40.0)]), &[])
        .expect("deploy");
    let (outcome, trace) = trace_flight_perturbed(&mut drone, plan(), 240.0, perturb);
    assert!(outcome.completed, "mission completes: {:?}", outcome.log);
    assert!(trace.ticks.len() > 10, "trace covers the flight");
    trace
}

#[test]
fn same_seed_runs_produce_identical_hash_traces() {
    let a = traced_mission(None);
    let b = traced_mission(None);
    if let Some(d) = first_divergence(&a, &b) {
        panic!("{d}");
    }
}

#[test]
fn sanitizer_bisects_injected_perturbation_to_its_tick() {
    let a = traced_mission(None);
    // Perturb the VDC's energy accounting at tick 12 of run B — the
    // kind of single-component drift an unordered map would cause.
    let mut perturb = FnProbe::new(|tick, drone: &mut Drone| {
        if tick == 12 {
            drone.vdc.borrow_mut().charge_energy("vd1", 0.125);
        }
    });
    let b = traced_mission(Some(&mut perturb));
    let d = first_divergence(&a, &b).expect("perturbation must be caught");
    // The perturbation lands after tick 12's hashes were recorded, so
    // the first divergent observation is tick 13.
    assert_eq!(d.tick, 13, "localized to the tick after injection: {d}");
    assert!(
        d.diverged_components.contains(&"vdc"),
        "vdc must diverge: {d}"
    );
    assert!(
        !d.diverged_components.contains(&"sitl"),
        "physics unaffected at the first divergent tick: {d}"
    );
    assert_eq!(d.first.len(), d.second.len());
}

/// Boots, deploys, and flies the standard mission under a generated
/// chaos plan, returning the drone's metric-registry digest.
fn chaos_metrics_digest(chaos_seed: u64) -> u64 {
    let mut drone = Drone::boot(BASE, SEED).expect("boot");
    drone
        .deploy_vdrone("vd1", spec(vec![wp(60.0, 0.0, 40.0)]), &[])
        .expect("deploy");
    let mut injector = FaultInjector::new(FaultPlan::generate(chaos_seed, 60));
    let outcome = execute_flight_probed(&mut drone, plan(), 240.0, None, &mut injector);
    assert!(outcome.duration_s > 0.0);
    drone.obs.metrics_digest()
}

/// The observability layer itself must be deterministic: two runs of
/// the same chaos seed produce bit-identical metric digests, for
/// every seed in the sweep. A digest mismatch means some emission
/// depended on wall-clock time, iteration order, or an RNG draw.
#[test]
fn dual_run_metric_digests_are_bit_identical_across_chaos_seeds() {
    for chaos_seed in [0x0b51, 0x0b52, 0x0b53, 0x0b54, 0x0b55, 0x0b56, 0x0b57, 0x0b58] {
        let a = chaos_metrics_digest(chaos_seed);
        let b = chaos_metrics_digest(chaos_seed);
        assert_eq!(a, b, "metric digest drift under chaos seed {chaos_seed:#x}");
        assert_ne!(a, 0, "chaos flight must emit metrics (seed {chaos_seed:#x})");
    }
}

#[test]
fn trace_flight_is_the_unperturbed_entry_point() {
    let mut drone = Drone::boot(BASE, SEED).expect("boot");
    drone
        .deploy_vdrone("vd1", spec(vec![wp(60.0, 0.0, 40.0)]), &[])
        .expect("deploy");
    let (outcome, trace) = trace_flight(&mut drone, plan(), 240.0);
    assert!(outcome.completed);
    assert_eq!(trace.ticks.first().map(|t| t.tick), Some(0));
    // Every tick carries the full fixed component vector.
    for t in &trace.ticks {
        assert_eq!(
            t.components.iter().map(|c| c.0).collect::<Vec<_>>(),
            vec!["kernel", "binder", "sitl", "proxy", "vdc"]
        );
    }
}
