//! The sharded control plane's contract tests:
//!
//! - **VDR shard chaos** — replaying an identical op tape (stores,
//!   telescoped re-saves, checkout/commit/abandon round-trips,
//!   compaction) against 1-shard and 4-shard repositories produces
//!   identical digests and stats, and a portal/VDR outage armed
//!   mid-checkout loses no customer drone.
//! - **Admission FIFO** — a model-based property test: under
//!   arbitrary interleavings of enqueue (with backpressure),
//!   batched admission, and `requeue_front`, every lane releases its
//!   orders in exact submission order.
//! - **Wrapper equivalence** — the deprecated `execute_fleet_attacked`
//!   door is byte-identical to `FleetSpec::attacks`, and a
//!   `vdr_shards(4)` fleet run is byte-identical to the 1-shard run.
//! - **Scaling ladder smoke** — the 10k-tenant rung runs to
//!   quiescence with digests invariant across shards 1/4 and threads
//!   1/4 (the `fleet-scale-smoke` CI leg), and an `#[ignore]`d
//!   100k rung covers the full acceptance matrix.

use std::collections::{BTreeMap, VecDeque};

use androne::cloud::{
    AdmissionConfig, AdmissionError, AdmissionQueue, CloudError, FallibleCloud, SaveReason,
    SavedVirtualDrone, VirtualDroneRepository,
};
use androne::container::{ContainerArchive, ContainerKind, Layer};
use androne::fleet::{FleetConfig, FleetSpec, FleetTenant};
#[allow(deprecated)]
use androne::fleet::execute_fleet_attacked;
use androne::hal::GeoPoint;
use androne::simkern::{CloudFaultKind, FleetFaultPlan};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::workloads::AttackPlan;
use androne::{execute_scale_fleet, AttackDefense, FleetAttackPlan, ScaleConfig};
use proptest::prelude::*;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn small_spec(k: f64) -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints: vec![
            wp(40.0 + 9.0 * k, -30.0 + 14.0 * k, 40.0),
            wp(62.0 - 6.0 * k, 25.0 + 11.0 * k, 40.0),
        ],
        max_duration: 8.0,
        energy_allotted: 60_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec![],
        app_args: Default::default(),
    }
}

fn saved(name: &str, owner: &str, flights_flown: u32, reason: SaveReason) -> SavedVirtualDrone {
    let mut diff = Layer::new();
    diff.write(
        "/data/androne/state.bin",
        bytes::Bytes::from(vec![0xA5u8; 128 + 64 * flights_flown as usize]),
    );
    SavedVirtualDrone {
        name: name.to_string(),
        owner: owner.to_string(),
        spec: small_spec(f64::from(flights_flown)),
        archive: ContainerArchive {
            name: name.to_string(),
            kind: ContainerKind::VirtualDrone,
            base_stack: Vec::new(),
            diff,
        },
        app_state: format!("state-{name}-{flights_flown}"),
        reason,
        remaining_energy_j: 40_000.0 - 1_000.0 * f64::from(flights_flown),
        remaining_time_s: 6.0,
        waypoints_completed: 1,
        flights_flown,
    }
}

/// Replays one deterministic op tape — stores, telescoped re-saves,
/// checkout/commit and checkout/abandon round-trips, a compaction —
/// against a repository. The tape touches enough distinct names to
/// populate every shard of a 4-way split.
fn replay_vdr_tape(vdr: &mut VirtualDroneRepository) {
    for i in 0..24u32 {
        let name = format!("vd-u{:02}-{}", i % 12, i);
        vdr.store(saved(&name, &format!("u{:02}", i % 12), 0, SaveReason::Interrupted));
    }
    // Telescoped re-saves: the same names re-stored with progress.
    for round in 1..4u32 {
        for i in 0..24u32 {
            if i % 3 == 0 {
                let name = format!("vd-u{:02}-{}", i % 12, i);
                vdr.store(saved(&name, &format!("u{:02}", i % 12), round, SaveReason::Interrupted));
            }
        }
    }
    // Checkout/commit round-trips (resume succeeded)...
    for i in (0..24u32).step_by(4) {
        let name = format!("vd-u{:02}-{}", i % 12, i);
        let e = vdr.checkout(&name).expect("stored entry checks out");
        assert_eq!(e.name, name);
        assert!(vdr.commit(&name), "lease must commit");
    }
    // ...and checkout/abandon round-trips (resume scrapped).
    for i in (1..24u32).step_by(4) {
        let name = format!("vd-u{:02}-{}", i % 12, i);
        let before = vdr.get(&name).expect("entry exists").flights_flown;
        vdr.checkout(&name).expect("stored entry checks out");
        assert!(vdr.get(&name).is_none(), "leased entry is off the shelf");
        assert!(vdr.abandon(&name), "lease must abandon back");
        assert_eq!(
            vdr.get(&name).expect("abandoned entry restored").flights_flown,
            before,
            "abandon must restore the entry unmodified"
        );
    }
    let report = vdr.compact();
    assert!(report.compacted_saves > 0, "telescoped saves must compact");
}

/// Any shard count is digest-identical to `shards = 1` on the same
/// op tape, and the roll-up stats agree entry for entry.
#[test]
fn vdr_shard_count_is_digest_invariant() {
    let mut one = VirtualDroneRepository::new();
    replay_vdr_tape(&mut one);
    for shards in [2usize, 4, 7] {
        let mut many = VirtualDroneRepository::with_shards(shards);
        replay_vdr_tape(&mut many);
        assert_eq!(
            one.digest(),
            many.digest(),
            "shards={shards} diverged from the 1-shard digest"
        );
        let (a, b) = (one.stats(), many.stats());
        assert_eq!(a.entries, b.entries, "shards={shards}: entry count");
        assert_eq!(a.leased, b.leased, "shards={shards}: lease count");
        assert_eq!(a.journal_entries, b.journal_entries, "shards={shards}: journal");
        assert_eq!(a.compacted_saves, b.compacted_saves, "shards={shards}: compaction");
        assert_eq!(a.reclaimed_bytes, b.reclaimed_bytes, "shards={shards}: reclaim");
        assert_eq!(one.stored_bytes(), many.stored_bytes());
        // The split itself is real: multiple shards hold entries.
        let populated = many
            .snapshot()
            .iter()
            .filter(|s| s.entries + s.leased > 0)
            .count();
        assert!(populated > 1, "shards={shards}: tape landed on one shard");
    }
}

/// A VDR outage armed *mid-checkout* (lease outstanding) neither
/// loses the leased drone nor blocks its commit/abandon; new
/// checkouts are refused with a typed error until the heal wave.
#[test]
fn vdr_outage_mid_checkout_loses_nothing() {
    let mut cloud = FallibleCloud::with_shards(4);
    for i in 0..8u32 {
        cloud
            .inner
            .vdr
            .store(saved(&format!("vd-x-{i}"), "x", 1, SaveReason::Interrupted));
    }
    cloud.begin_wave(0, vec![]);
    let leased = cloud
        .checkout_saved("vd-x-0")
        .expect("healthy wave")
        .expect("entry stored");
    assert_eq!(leased.name, "vd-x-0");

    // Outage lands while the lease is outstanding.
    cloud.begin_wave(1, vec![CloudFaultKind::VdrUnavailable]);
    assert!(matches!(
        cloud.checkout_saved("vd-x-1"),
        Err(CloudError::VdrUnavailable)
    ));
    let stats = cloud.inner.vdr.stats();
    assert_eq!(stats.entries + stats.leased, 8, "outage must not lose entries");
    assert_eq!(stats.leased, 1, "the outstanding lease survives the outage");
    // The leaseholder can still conclude its resume: abandon returns
    // the drone to the shelf even while checkouts are refused.
    assert!(cloud.inner.vdr.abandon("vd-x-0"));

    // Heal: checkouts flow again, and a commit round-trip works.
    cloud.begin_wave(2, vec![]);
    let again = cloud
        .checkout_saved("vd-x-1")
        .expect("healed wave")
        .expect("entry stored");
    assert_eq!(again.name, "vd-x-1");
    assert!(cloud.inner.vdr.commit("vd-x-1"));
    let stats = cloud.inner.vdr.stats();
    assert_eq!(stats.leased, 0);
    assert_eq!(stats.entries, 7, "committed resume consumes its entry");
}

// Property: under any interleaving of bounded enqueues, batched
// admission waves, and front-requeues, each lane's orders are
// released in exact submission order; a backpressured enqueue hands
// the item back untouched with a retry wave strictly ahead.
proptest! {
    #[test]
    fn admission_fifo_survives_backpressure_and_requeue(
        ops in proptest::collection::vec((0u8..6, 0u8..5), 1..160),
        per_wave in 1usize..5,
        cap in 4usize..24,
    ) {
        let mut q = AdmissionQueue::new(AdmissionConfig::batched(per_wave, cap));
        let mut model: BTreeMap<String, VecDeque<u32>> = BTreeMap::new();
        let mut next_item = 0u32;
        let mut wave = 0u64;
        for (op, lane) in ops {
            let lane_name = format!("t{lane}");
            match op {
                // Enqueue dominates the mix so capacity is reached.
                0..=3 => {
                    let item = next_item;
                    next_item += 1;
                    match q.enqueue(&lane_name, item, wave) {
                        Ok(_) => model.entry(lane_name).or_default().push_back(item),
                        Err((AdmissionError::Backpressure { retry_wave, depth }, bounced)) => {
                            prop_assert_eq!(bounced, item, "rejected item must ride back");
                            prop_assert!(retry_wave > wave, "retry wave not ahead");
                            prop_assert_eq!(depth, cap, "backpressure below capacity");
                        }
                    }
                }
                4 => {
                    wave += 1;
                    let admitted = q.admit();
                    prop_assert!(admitted.len() <= per_wave, "quota exceeded");
                    for a in admitted {
                        let front = model.get_mut(&a.lane).and_then(|l| l.pop_front());
                        prop_assert_eq!(front, Some(a.item), "lane admitted out of order");
                    }
                }
                _ => {
                    // Admit a wave but spill the first released order
                    // back to the front of its lane (the bin-packer's
                    // overflow path) — its FIFO position must hold.
                    wave += 1;
                    let mut admitted = q.admit();
                    if !admitted.is_empty() {
                        for a in &admitted {
                            let front = model.get_mut(&a.lane).and_then(|l| l.pop_front());
                            prop_assert_eq!(front, Some(a.item), "lane admitted out of order");
                        }
                        // Spill the first released order back: it
                        // returns to the *front* of its lane, ahead of
                        // anything still queued there.
                        let spilled = admitted.remove(0);
                        model
                            .entry(spilled.lane.clone())
                            .or_default()
                            .push_front(spilled.item);
                        q.requeue_front(spilled);
                    }
                }
            }
            let pending: usize = model.values().map(VecDeque::len).sum();
            prop_assert_eq!(q.pending(), pending, "queue and model disagree on depth");
            prop_assert!(q.pending() <= cap, "capacity bound violated");
        }
        // Drain to empty: the tail must also be in FIFO order.
        while !q.is_empty() {
            let admitted = q.admit();
            prop_assert!(!admitted.is_empty(), "pending queue admitted nothing");
            for a in admitted {
                let front = model.get_mut(&a.lane).and_then(|l| l.pop_front());
                prop_assert_eq!(front, Some(a.item), "drain out of order");
            }
        }
        prop_assert!(model.values().all(VecDeque::is_empty), "model items never released");
    }
}

fn gate_config(seed: u64, n_tenants: usize, threads: usize) -> FleetConfig {
    FleetConfig {
        base: BASE,
        seed,
        fleet_size: 2,
        tenants: (0..n_tenants)
            .map(|i| FleetTenant {
                vd_name: format!("vd{}", i + 1),
                user: format!("user{}", i + 1),
                spec: small_spec(i as f64),
            })
            .collect(),
        max_waves: 6,
        max_sim_seconds: 240.0,
        watchdog: None,
        threads,
    }
}

/// The deprecated attacked door is byte-identical to
/// `FleetSpec::attacks` on a generated adversarial plan.
#[test]
#[allow(deprecated)]
fn attacked_wrapper_is_byte_identical_to_the_spec() {
    let seed = 0xA77A_C4ED;
    let cfg = gate_config(seed, 3, 2);
    let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.vd_name.clone()).collect();
    let mut flights = BTreeMap::new();
    flights.insert(0usize, AttackPlan::generate(seed, 120, &tenant_names));
    let attacks = FleetAttackPlan {
        flights,
        defense: Some(AttackDefense::default()),
        ..FleetAttackPlan::none()
    };
    let faults = FleetFaultPlan::generate(seed, 2, &tenant_names, 150);

    let legacy = execute_fleet_attacked(&cfg, &faults, &attacks).expect("legacy door");
    let spec = FleetSpec::new(cfg)
        .faults(faults)
        .attacks(attacks)
        .run()
        .expect("spec door");
    assert_eq!(legacy.fleet_digest(), spec.fleet_digest());
    assert_eq!(legacy.metrics_digest(), spec.metrics_digest());
}

/// Sharding the fleet executor's VDR is invisible in the bits: a
/// `vdr_shards(4)` run reproduces the 1-shard digests on a faulted
/// gate scenario (faults force interrupt/resume traffic through the
/// repository).
#[test]
fn fleet_run_is_digest_invariant_across_vdr_shards() {
    let seed = 0xF1EE_5EED ^ 0x9E37_79B9;
    let cfg = gate_config(seed, 4, 2);
    let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.vd_name.clone()).collect();
    let faults = FleetFaultPlan::generate(seed, 3, &tenant_names, 150);
    let spec = FleetSpec::new(cfg).faults(faults);
    let one = spec.run().expect("1-shard run");
    let four = spec.clone().vdr_shards(4).run().expect("4-shard run");
    assert_eq!(one.fleet_digest(), four.fleet_digest());
    assert_eq!(one.metrics_digest(), four.metrics_digest());
}

/// The `fleet-scale-smoke` CI leg: the 10k-tenant rung runs to
/// quiescence, every tenant resolves terminally, backpressure
/// engages, and the digests are invariant across shards 1/4 and
/// threads 1/4.
#[test]
fn scale_10k_digests_invariant_across_shards_and_threads() {
    let reference = execute_scale_fleet(&ScaleConfig::rung(10_000));
    assert!(reference.quiescent, "10k rung did not reach quiescence");
    assert_eq!(
        reference.completed() + reference.exhausted(),
        10_000,
        "every tenant must resolve terminally"
    );
    assert!(
        reference.backpressured_submissions > 0,
        "10k must exceed queue capacity and exercise backpressure"
    );
    assert!(
        reference.peak_queue_depth <= reference.config.queue_capacity,
        "queue depth must respect the capacity bound"
    );
    for (threads, shards) in [(4usize, 1usize), (1, 4), (4, 4)] {
        let run = execute_scale_fleet(&ScaleConfig::rung(10_000).threads(threads).shards(shards));
        assert_eq!(
            reference.fleet_digest(),
            run.fleet_digest(),
            "threads={threads} shards={shards} diverged from the reference"
        );
        assert_eq!(
            reference.metrics_digest(),
            run.metrics_digest(),
            "threads={threads} shards={shards} metrics diverged"
        );
    }
}

/// Full acceptance matrix for the top rung: 100k tenants to
/// quiescence, digests identical across threads 1/4/8 and shards
/// 1/4. Ignored by default (several seconds per run in release, far
/// more in debug); run with
/// `cargo test --release --test fleet_scale -- --ignored`.
#[test]
#[ignore = "top rung of the scaling ladder; run in release"]
fn scale_100k_runs_to_quiescence_at_every_width() {
    let reference = execute_scale_fleet(&ScaleConfig::rung(100_000));
    assert!(reference.quiescent, "100k rung did not reach quiescence");
    assert_eq!(reference.completed() + reference.exhausted(), 100_000);
    for (threads, shards) in [(4usize, 1usize), (8, 1), (1, 4)] {
        let run = execute_scale_fleet(&ScaleConfig::rung(100_000).threads(threads).shards(shards));
        assert_eq!(
            reference.fleet_digest(),
            run.fleet_digest(),
            "threads={threads} shards={shards} diverged from the reference"
        );
        assert_eq!(reference.metrics_digest(), run.metrics_digest());
    }
}
