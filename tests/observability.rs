//! Observability-layer integration tests: the black-box flight
//! recorder, trace-bus content on real flights, and JSON export.
//!
//! The recorder contract is the paper's operational story inverted:
//! a flight that ends any way other than [`EndReason::Completed`]
//! must leave behind a frozen window of trace explaining *why* — and
//! a completed flight must leave nothing, so black boxes are always
//! signal, never noise.

use androne::hal::GeoPoint;
use androne::obs::{metrics_to_json, TraceEvent};
use androne::planner::{FlightPlan, Leg};
use androne::simkern::{FaultKind, FaultPlan};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::{
    execute_flight_probed, Drone, EndReason, FaultInjector, FlightRecorder, ProbeStack,
};

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const SEED: u64 = 1337;
const MAX_SIM_S: f64 = 240.0;
const WINDOW_S: u64 = 30;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn spec() -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints: vec![wp(60.0, 0.0, 40.0)],
        max_duration: 120.0,
        energy_allotted: 40_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec!["com.example.survey.apk".into()],
        app_args: Default::default(),
    }
}

fn plan() -> FlightPlan {
    FlightPlan {
        base: BASE,
        legs: vec![Leg {
            owner: "vd1".into(),
            position: BASE.offset_m(60.0, 0.0, 15.0),
            max_radius_m: 40.0,
            service_energy_j: 10_000.0,
            service_time_s: 8.0,
            eta_s: 20.0,
        }],
        estimated_duration_s: 120.0,
        estimated_energy_j: 40_000.0,
    }
}

/// Flies the standard mission under `faults` with a black-box
/// recorder riding along; returns the drone, the outcome's end
/// reason, and the recorder.
fn recorded_flight(faults: FaultPlan) -> (Drone, EndReason, FlightRecorder) {
    let mut drone = Drone::boot(BASE, SEED).expect("boot");
    drone.deploy_vdrone("vd1", spec(), &[]).expect("deploy");
    let mut injector = FaultInjector::new(faults);
    let mut recorder = FlightRecorder::new(WINDOW_S);
    let end_reason = {
        let mut probes = ProbeStack::new();
        probes.push(&mut injector);
        probes.push(&mut recorder);
        execute_flight_probed(&mut drone, plan(), MAX_SIM_S, None, &mut probes).end_reason
    };
    (drone, end_reason, recorder)
}

/// An unhealed link partition latches the RTL failsafe and ends the
/// flight `LinkLost`; the recorder must freeze a black box whose
/// window actually covers the failure.
#[test]
fn black_box_freezes_on_link_lost() {
    let (_, end_reason, recorder) =
        recorded_flight(FaultPlan::single(FaultKind::LinkPartition, 5, 1_000));
    assert_eq!(end_reason, EndReason::LinkLost);

    let snap = recorder.snapshot().expect("abnormal end freezes a black box");
    assert_eq!(snap.end_reason, "LinkLost");
    assert_eq!(snap.window_ns, WINDOW_S * 1_000_000_000);
    assert!(!snap.records.is_empty(), "black box carries trace records");

    // Every record sits inside the window, oldest first.
    let cutoff = snap.ended_at_ns.saturating_sub(snap.window_ns);
    let mut last = 0;
    for r in &snap.records {
        assert!(r.record.t_ns >= cutoff, "record before window start");
        assert!(r.record.t_ns <= snap.ended_at_ns, "record after end of flight");
        assert!(r.record.t_ns >= last, "records out of order");
        last = r.record.t_ns;
    }

    // The window must contain the story of the failure: the fault
    // edge arming the partition fired at t=5 s — outside the final
    // 30 s window — but the failsafe ladder and the flight-end marker
    // are recent enough to be frozen.
    assert!(
        snap.records
            .iter()
            .any(|r| matches!(r.record.event, TraceEvent::LinkFailsafe { .. })),
        "failsafe transitions inside the window"
    );
    assert!(
        snap.records.iter().any(|r| matches!(
            &r.record.event,
            TraceEvent::FlightPhase { phase, .. } if *phase == "flight-end"
        )),
        "flight-end marker inside the window"
    );
}

/// A healthy flight completes — the recorder must stay empty.
#[test]
fn black_box_stays_empty_on_completed_flight() {
    let (drone, end_reason, recorder) = recorded_flight(FaultPlan::empty());
    assert_eq!(end_reason, EndReason::Completed);
    assert!(recorder.snapshot().is_none(), "no black box on a clean flight");
    // The trace itself still exists — the recorder is a freeze
    // policy, not the only consumer of the bus.
    assert!(!drone.obs.with(|o| o.trace.is_empty()).unwrap_or(true));
}

/// The snapshot's JSON form carries the keys offline tooling greps
/// for (scripts/trace.sh smoke-checks the same contract).
#[test]
fn black_box_serializes_to_json() {
    let (drone, _, recorder) =
        recorded_flight(FaultPlan::single(FaultKind::LinkPartition, 5, 1_000));
    let snap = recorder.into_snapshot().expect("black box");
    let json = snap.to_json_pretty();
    for key in ["end_reason", "LinkLost", "ended_at_ns", "window_ns", "records", "subsystem"] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
    let metrics = drone
        .obs
        .with(|o| serde_json::to_string_pretty(&metrics_to_json(&o.metrics)))
        .expect("attached")
        .expect("render");
    for key in ["counters", "gauges", "digest", "mav.failsafe.rtl"] {
        assert!(metrics.contains(key), "metrics JSON missing {key}");
    }
}

/// Metrics survive the flight on the drone handle and record the
/// failure-mode counters the EXPERIMENTS tables are built from.
#[test]
fn flight_metrics_expose_failsafe_counters() {
    let (drone, _, _) = recorded_flight(FaultPlan::single(FaultKind::LinkPartition, 5, 1_000));
    let rtl = drone.obs.with(|o| o.metrics.counter("mav.failsafe.rtl")).unwrap_or(0);
    let loiter = drone.obs.with(|o| o.metrics.counter("mav.failsafe.loiter")).unwrap_or(0);
    assert_eq!(rtl, 1, "one RTL transition");
    assert_eq!(loiter, 1, "one loiter transition");
    let txns = drone.obs.with(|o| o.metrics.counter("binder.txn")).unwrap_or(0);
    assert!(txns > 0, "binder transactions counted");
    let dur = drone.obs.with(|o| o.metrics.gauge("flight.duration_s")).flatten();
    assert!(dur.is_some_and(|d| d > 0.0), "flight duration gauge set");
}
