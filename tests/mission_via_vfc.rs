//! A tenant with the full whitelist uploads a survey mission through
//! its VFC and flies it in Auto mode — all inside its geofence, with
//! the VFC screening every message.

use androne::flight::{CommandWhitelist, Geofence, Vfc, VfcState};
use androne::hal::GeoPoint;
use androne::mavlink::{deg_to_e7, FlightMode, MavCmd, Message};
use androne::simkern::SimDuration;
use androne::Drone;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

#[test]
fn tenant_uploads_and_flies_a_mission_through_its_vfc() {
    let mut drone = Drone::boot(BASE, 93).unwrap();
    let waypoint = BASE.offset_m(50.0, 0.0, 15.0);
    // Position the drone at the tenant's waypoint and hand over with
    // the FULL whitelist (mission upload requires it).
    assert!(drone.sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
    assert!(drone.sitl.goto(waypoint, 5.0, 2.0, SimDuration::from_secs(60)));
    drone.proxy.add_vfc_client(Vfc::new(
        "vd-pro",
        CommandWhitelist::full(),
        Geofence::new(waypoint, 45.0),
        false,
    ));
    drone.proxy.activate_vfc("vd-pro");

    // Upload a 3-leg survey sweep inside the 45 m fence via the
    // MISSION protocol, through the VFC.
    let legs = [
        waypoint.offset_m(20.0, 0.0, 0.0),
        waypoint.offset_m(20.0, 20.0, 0.0),
        waypoint.offset_m(-10.0, 20.0, 0.0),
    ];
    drone.proxy.client_send(
        "vd-pro",
        Message::MissionCount {
            count: legs.len() as u16,
        },
        &mut drone.sitl,
    );
    // Service MISSION_REQUESTs until the ACK.
    let mut accepted = false;
    for _ in 0..10 {
        let replies = drone.proxy.client_recv("vd-pro");
        for msg in replies {
            match msg {
                Message::MissionRequestInt { seq } => {
                    let wp = legs[seq as usize];
                    drone.proxy.client_send(
                        "vd-pro",
                        Message::MissionItemInt {
                            seq,
                            lat: deg_to_e7(wp.latitude),
                            lon: deg_to_e7(wp.longitude),
                            alt: wp.altitude as f32,
                        },
                        &mut drone.sitl,
                    );
                }
                Message::MissionAck { result: 0 } => accepted = true,
                _ => {}
            }
        }
        if accepted {
            break;
        }
    }
    assert!(accepted, "mission upload acknowledged");
    assert_eq!(drone.sitl.fc.mission().len(), 3);

    // Fly it in Auto (full whitelist permits the mode change).
    drone.proxy.client_send(
        "vd-pro",
        Message::SetMode {
            mode: FlightMode::Auto,
        },
        &mut drone.sitl,
    );
    for _ in 0..(120.0 * 400.0) as u64 {
        drone.proxy.step(&mut drone.sitl);
        if drone.sitl.position().distance_m(&legs[2]) < 3.0 {
            break;
        }
    }
    assert!(
        drone.sitl.position().distance_m(&legs[2]) < 3.0,
        "mission flown to its last leg"
    );
    assert_eq!(
        drone.proxy.breaches_handled, 0,
        "the whole sweep stayed inside the fence"
    );
    assert_eq!(
        drone.proxy.vfc("vd-pro").unwrap().state(),
        VfcState::Active
    );
}

#[test]
fn standard_whitelist_refuses_mission_upload() {
    let mut drone = Drone::boot(BASE, 94).unwrap();
    let waypoint = BASE.offset_m(40.0, 0.0, 15.0);
    drone.proxy.add_vfc_client(Vfc::new(
        "vd-std",
        CommandWhitelist::standard(),
        Geofence::new(waypoint, 45.0),
        false,
    ));
    drone.proxy.activate_vfc("vd-std");
    drone.proxy.client_send(
        "vd-std",
        Message::MissionCount { count: 2 },
        &mut drone.sitl,
    );
    let replies = drone.proxy.client_recv("vd-std");
    assert!(
        replies
            .iter()
            .any(|m| matches!(m, Message::StatusText { text, .. } if text.contains("whitelist"))),
        "{replies:?}"
    );
    assert!(drone.sitl.fc.mission().is_empty());
    // Arm/disarm stays denied too.
    drone.proxy.client_send(
        "vd-std",
        Message::CommandLong {
            command: MavCmd::ComponentArmDisarm,
            params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        },
        &mut drone.sitl,
    );
    assert!(drone.proxy.commands_denied >= 2);
}
