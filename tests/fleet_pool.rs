//! The parallel wave executor's contract tests:
//!
//! - **Legacy pin** — `threads = 1` must reproduce the exact
//!   pre-parallelism fleet digests on the chaos gate's 8 generated
//!   plans (faulted and no-fault baseline), byte for byte. The
//!   literals below were captured from the sequential executor
//!   immediately before the worker pool landed.
//! - **Merge determinism** — the pool returns results in input order
//!   no matter which worker finishes first (scrambled with real
//!   sleeps, and property-tested across widths).
//! - **Panic containment** — a panicking island scraps its flight
//!   and defers its tenants; the run completes and every other
//!   tenant resolves normally, at every thread count.

use androne::fleet::{FleetConfig, FleetSpec, FleetTenant, TenantResolution};
#[allow(deprecated)]
use androne::fleet::{execute_fleet, execute_fleet_with_worker_chaos};
use androne::hal::GeoPoint;
use androne::pool::{WorkerError, WorkerPool};
use androne::simkern::FleetFaultPlan;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use proptest::prelude::*;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const MAX_SIM_S: f64 = 240.0;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

/// The chaos gate's tenant set, bit-for-bit (see `fleet_chaos.rs`).
fn fleet_tenants(n: usize) -> Vec<FleetTenant> {
    (0..n)
        .map(|i| {
            let k = i as f64;
            FleetTenant {
                vd_name: format!("vd{}", i + 1),
                user: format!("user{}", i + 1),
                spec: VirtualDroneSpec {
                    waypoints: vec![
                        wp(40.0 + 9.0 * k, -30.0 + 14.0 * k, 40.0),
                        wp(62.0 - 6.0 * k, 25.0 + 11.0 * k, 40.0),
                    ],
                    max_duration: 8.0,
                    energy_allotted: 60_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: vec!["camera".into(), "flight-control".into()],
                    apps: vec![],
                    app_args: Default::default(),
                },
            }
        })
        .collect()
}

fn gate_config(seed: u64, n_tenants: usize, threads: usize) -> FleetConfig {
    FleetConfig {
        base: BASE,
        seed,
        fleet_size: 2,
        tenants: fleet_tenants(n_tenants),
        max_waves: 6,
        max_sim_seconds: MAX_SIM_S,
        watchdog: None,
        threads,
    }
}

/// Pre-parallelism fleet digests of the chaos gate's 8 generated
/// plans: (gate index, faulted-run digest, no-fault-baseline digest),
/// captured from the sequential executor at the commit before the
/// worker pool landed.
const LEGACY_PINS: [(u64, u64, u64); 8] = [
    (0, 0x55256b580ab33dae, 0x55256b580ab33dae),
    (1, 0xffa510291712c3c8, 0xf2c346a324f667b9),
    (2, 0x126c270b75e46595, 0x1a761eb94d422d10),
    (3, 0x82e33ae3b8826cf8, 0xcb2a03634a4cd4db),
    (4, 0x5bd955a7dc3af1f9, 0x8ceb048fa80fd9ae),
    (5, 0x765fba9544523ded, 0x1b80b188ac4966dc),
    (6, 0x5f218061d2caeeb6, 0xa4d91d348aa8de4a),
    (7, 0x0695ec7662239f3c, 0xb8a836ab6edd6b66),
];

/// `threads = 1` reproduces the sequential executor's output on the
/// full chaos gate matrix, byte for byte. This is the refactor's
/// ground truth: the partition/speculate/merge driver with a
/// one-wide pool IS the legacy executor.
#[test]
fn single_thread_reproduces_the_pre_pool_digests() {
    for (i, faulted_pin, baseline_pin) in LEGACY_PINS {
        let seed = 0xF1EE_5EED ^ (i.wrapping_mul(0x9E37_79B9));
        let cfg = gate_config(seed, 3 + (i as usize % 2), 1);
        let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.vd_name.clone()).collect();
        let faults = FleetFaultPlan::generate(seed, 3, &tenant_names, 150);

        let faulted = FleetSpec::new(cfg.clone()).faults(faults).run().expect("faulted run");
        assert_eq!(
            faulted.fleet_digest(),
            faulted_pin,
            "gate {i}: threads=1 faulted digest drifted from the sequential pin"
        );
        let baseline = FleetSpec::new(cfg).run().expect("baseline run");
        assert_eq!(
            baseline.fleet_digest(),
            baseline_pin,
            "gate {i}: threads=1 baseline digest drifted from the sequential pin"
        );
    }
}

/// A worker panic at a flight index scraps that flight, defers its
/// tenants, and lets the run complete: no tenant is silently lost,
/// and the cloud log records the containment. Holds on both the
/// inline (threads = 1) and threaded paths — panic semantics are
/// uniform.
#[test]
fn worker_panic_is_contained_at_every_width() {
    for threads in [1usize, 4] {
        let cfg = gate_config(0xF1EE_5EED, 3, threads);
        let run = FleetSpec::new(cfg)
            .chaos_panic_at(0)
            .run()
            .expect("run must survive a panicking island");
        // Flight index 0 never settles (every island assigned index
        // 0 panics), so no flight ever flies and every wave scraps.
        assert!(
            run.flights.is_empty(),
            "threads={threads}: a flight flew despite the index-0 panic"
        );
        assert!(
            run.cloud_log.iter().any(|l| l.contains("worker panicked")),
            "threads={threads}: containment left no log line"
        );
        for (name, t) in &run.tenants {
            assert_eq!(
                t.resolution,
                TenantResolution::Refunded,
                "threads={threads}: {name} not terminally resolved"
            );
            assert_eq!(
                t.refunded_energy_j, t.energy_allotted_j,
                "threads={threads}: {name} refund does not cover the unserved allotment"
            );
        }
    }
}

/// With the panic injected past the first flight, the healthy flight
/// still completes and only the panicked flight's tenants defer —
/// per-flight containment, not just run survival.
#[test]
fn panic_past_the_first_flight_spares_the_flown_tenants() {
    let cfg = gate_config(0xF1EE_5EED, 3, 4);
    let spec = FleetSpec::new(cfg);
    let clean = spec.run().expect("clean run");
    assert!(clean.flights.len() >= 2, "scenario must plan multiple flights");
    let chaos = spec.clone().chaos_panic_at(1).run().expect("run must survive");
    // Flight 0 flies in both runs with identical bits (same seed,
    // same index — the panic at index 1 cannot reach back).
    assert!(!chaos.flights.is_empty(), "flight 0 should still fly");
    assert_eq!(chaos.flights[0].trace_digest, clean.flights[0].trace_digest);
    assert!(chaos.cloud_log.iter().any(|l| l.contains("worker panicked")));
    // Every tenant still resolves terminally.
    for (name, t) in &chaos.tenants {
        assert!(
            matches!(
                t.resolution,
                TenantResolution::Completed | TenantResolution::Refunded
            ),
            "{name} left unresolved"
        );
    }
}

/// The deprecated doors are the plain executor: `execute_fleet`,
/// the chaos hook with no panic index, and a riderless `FleetSpec`
/// all produce identical bits.
#[test]
#[allow(deprecated)]
fn chaos_hook_with_no_panic_is_the_plain_executor() {
    let cfg = gate_config(0xF1EE_5EED, 3, 2);
    let a = execute_fleet(&cfg, &FleetFaultPlan::empty()).expect("plain");
    let b = execute_fleet_with_worker_chaos(&cfg, &FleetFaultPlan::empty(), None).expect("hook");
    let c = FleetSpec::new(cfg).run().expect("spec");
    assert_eq!(a.fleet_digest(), b.fleet_digest());
    assert_eq!(a.metrics_digest(), b.metrics_digest());
    assert_eq!(a.fleet_digest(), c.fleet_digest());
    assert_eq!(a.metrics_digest(), c.metrics_digest());
}

/// Completion order is deliberately scrambled with real sleeps:
/// earlier items sleep longest, so later items finish first. The
/// pool must still return results in input order — the merge step's
/// entire correctness argument rests on this.
#[test]
fn scrambled_completion_order_cannot_reorder_results() {
    let pool = WorkerPool::new(4);
    let n: u64 = 12;
    let out = pool.run((0..n).collect(), |i: u64| {
        std::thread::sleep(std::time::Duration::from_millis((n - i) * 3));
        i * 100
    });
    let values: Vec<u64> = out
        .into_iter()
        .map(|r| r.expect("no panics in this workload"))
        .collect();
    assert_eq!(values, (0..n).map(|i| i * 100).collect::<Vec<_>>());
}

// Property: for any item vector and any pool width, the pool is
// observationally identical to a sequential map — same values, same
// order, panics contained to their own slot.
proptest! {
    #[test]
    fn pool_is_a_deterministic_map(
        items in proptest::collection::vec(any::<u32>(), 0..48),
        threads in 1usize..9,
    ) {
        let work = |v: u32| {
            assert!(v % 97 != 13, "injected panic lane");
            u64::from(v).wrapping_mul(0x9E37_79B9)
        };
        let expected: Vec<Result<u64, WorkerError>> = items
            .iter()
            .map(|&v| {
                if v % 97 == 13 {
                    Err(WorkerError::Panicked("injected panic lane".to_string()))
                } else {
                    Ok(u64::from(v).wrapping_mul(0x9E37_79B9))
                }
            })
            .collect();
        let got = WorkerPool::new(threads).run(items, work);
        // Panic messages from assert! carry the full formatted text;
        // compare variants and values, not exact strings.
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            match (g, e) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(WorkerError::Panicked(msg)), Err(_)) => {
                    prop_assert!(msg.contains("injected panic lane"));
                }
                other => prop_assert!(false, "slot mismatch: {:?}", other),
            }
        }
    }
}
