//! Real-time guarantees on the booted drone: the same kernel that
//! hosts three virtual drones running hostile workloads still meets
//! ArduPilot's fast-loop deadline — the paper's core safety claim
//! for its default PREEMPT_RT configuration.

use androne::hal::GeoPoint;
use androne::simkern::{ContainerId, KernelConfig};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::workloads::{run_cyclictest, start_stress, StressConfig, ARDUPILOT_DEADLINE_US};
use androne::Drone;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

fn spec() -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints: vec![WaypointSpec {
            latitude: BASE.latitude,
            longitude: BASE.longitude,
            altitude: 15.0,
            max_radius: 30.0,
        }],
        max_duration: 600.0,
        energy_allotted: 45_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into()],
        apps: vec![],
        app_args: Default::default(),
    }
}

#[test]
fn stressed_androne_drone_meets_the_fast_loop_deadline() {
    // AnDrone's default kernel, fully loaded: three virtual drones
    // plus a native stress workload.
    let mut drone = Drone::boot(BASE, 61).unwrap();
    for i in 1..=3 {
        drone.deploy_vdrone(&format!("vd{i}"), spec(), &[]).unwrap();
    }
    let flight_ctr = drone.runtime.get("flight").unwrap().id;
    let mut kernel = drone.kernel.borrow_mut();
    start_stress(&mut kernel, StressConfig::paper());
    let result = run_cyclictest(&mut kernel, flight_ctr, 200_000);
    assert!(
        result.max_us() < ARDUPILOT_DEADLINE_US,
        "PREEMPT_RT under stress: max {} µs",
        result.max_us()
    );
    assert_eq!(result.deadline_misses, 0);
}

#[test]
fn navio2_default_kernel_occasionally_misses_under_stress() {
    let drone = Drone::boot_with_config(BASE, 62, KernelConfig::NAVIO2_DEFAULT).unwrap();
    let flight_ctr = drone.runtime.get("flight").unwrap().id;
    let mut kernel = drone.kernel.borrow_mut();
    start_stress(&mut kernel, StressConfig::paper());
    let result = run_cyclictest(&mut kernel, flight_ctr, 200_000);
    assert!(
        result.deadline_misses > 0,
        "CONFIG_PREEMPT misses under stress (max {} µs)",
        result.max_us()
    );
    // But infrequently (the paper judges it "likely sufficient").
    assert!((result.deadline_misses as f64) / 200_000.0 < 0.02);
}

#[test]
fn flight_controller_task_runs_at_top_rt_priority() {
    // The boot sequence must configure ArduPilot the way the paper's
    // cyclictest mirrors it: SCHED_FIFO 99 with memory locked.
    let drone = Drone::boot(BASE, 63).unwrap();
    let k = drone.kernel.borrow();
    let ap = k
        .tasks
        .live()
        .find(|t| t.name == "arducopter")
        .expect("flight controller task");
    assert_eq!(ap.policy.rt_priority(), 99);
    assert!(ap.policy.is_realtime());
    assert!(ap.mlocked, "mlockall applied");
}

#[test]
fn cyclictest_deadline_misses_are_counted() {
    let result = {
        let mut kernel = androne::simkern::Kernel::boot(KernelConfig::NAVIO2_DEFAULT, 99);
        kernel.add_interference(androne::simkern::latency::profiles::stress_load());
        run_cyclictest(&mut kernel, ContainerId(2), 300_000)
    };
    let over: u64 = result
        .histogram
        .buckets()
        .filter(|(bound, _)| *bound > ARDUPILOT_DEADLINE_US * 1.26)
        .map(|(_, c)| c)
        .sum();
    // Histogram tail and the miss counter must agree in magnitude.
    assert!(result.deadline_misses >= over, "counter covers the tail");
}
