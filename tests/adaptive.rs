//! The adaptive-adversary gate: closed-loop attacker brains driven
//! against full fleet runs, holding four invariants:
//!
//! (a) **RT envelope under adaptation** — with the hardened posture
//!     ([`AttackDefense::hardened`]: aggregate admission cap, ladder
//!     hysteresis, refill-boundary jitter) armed, no adaptively
//!     attacked flight's 400 Hz fast loop ever misses ArduPilot's
//!     2500 µs deadline, across every generated strategy mix.
//! (b) **Breach without hardening** — the pinned synchronized
//!     collusion campaign demonstrably blows the deadline under the
//!     *pre-hardening* defense ([`AttackDefense::default`]): every
//!     colluder stays inside its own per-tenant bucket, so only the
//!     aggregate cap stops the group. The identical plan under
//!     [`AttackDefense::hardened`] is contained to zero misses.
//! (c) **Determinism** — adaptive runs replay bit-identically (fleet
//!     digest AND merged metrics digest) at threads 1/4/8; brains
//!     draw only from the dedicated adversary feedback stream.
//! (d) **Zero-work when empty** — an empty adaptive plan is
//!     bit-identical to the legacy executor path.
//!
//! Breadth is controlled by `ADAPTIVE_SEEDS` (default 4; the release
//! gate in `scripts/attack.sh --adaptive` runs the same count) and
//! the thread matrix by `ADAPTIVE_THREADS` (default "1 4 8").

use std::collections::BTreeMap;

use androne::fleet::{
    FleetAttackPlan, FleetConfig, FleetOutcome, FleetSpec,
    FleetTenant, TenantResolution,
};
use androne::hal::GeoPoint;
use androne::simkern::FleetFaultPlan;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::workloads::{AdaptivePlan, ARDUPILOT_DEADLINE_US};
use androne::AttackDefense;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const MAX_SIM_S: f64 = 240.0;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

/// Tenants clustered tightly enough that the VRP co-deploys all of
/// them on one physical flight (the board fits three virtual
/// drones) — the co-residency collusion needs.
fn clustered_tenants(n: usize) -> Vec<FleetTenant> {
    (0..n)
        .map(|i| {
            let k = i as f64;
            FleetTenant {
                vd_name: format!("vd{}", i + 1),
                user: format!("user{}", i + 1),
                spec: VirtualDroneSpec {
                    waypoints: vec![wp(40.0 + 3.0 * k, -20.0 + 4.0 * k, 40.0)],
                    max_duration: 8.0,
                    energy_allotted: 60_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: vec!["camera".into(), "flight-control".into()],
                    apps: vec![],
                    app_args: Default::default(),
                },
            }
        })
        .collect()
}

/// Tenants matching the adversarial gate's spread geometry so the
/// VRP splits waves across at least two physical flights.
fn spread_tenants(n: usize) -> Vec<FleetTenant> {
    (0..n)
        .map(|i| {
            let k = i as f64;
            FleetTenant {
                vd_name: format!("vd{}", i + 1),
                user: format!("user{}", i + 1),
                spec: VirtualDroneSpec {
                    waypoints: vec![
                        wp(40.0 + 9.0 * k, -30.0 + 14.0 * k, 40.0),
                        wp(62.0 - 6.0 * k, 25.0 + 11.0 * k, 40.0),
                    ],
                    max_duration: 8.0,
                    energy_allotted: 60_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: vec!["camera".into(), "flight-control".into()],
                    apps: vec![],
                    app_args: Default::default(),
                },
            }
        })
        .collect()
}

fn assert_terminal_outcomes(run: &FleetOutcome, label: &str) {
    for (name, t) in &run.tenants {
        assert!(
            (t.ledger_energy_j - t.billed_energy_j).abs() < 1e-6,
            "{label}: {name} ledger billed {:.3} J but VDC records say {:.3} J",
            t.ledger_energy_j,
            t.billed_energy_j
        );
        assert!(
            (t.ledger_refund_j - t.refunded_energy_j).abs() < 1e-6,
            "{label}: {name} ledger refund disagrees"
        );
        assert!(
            matches!(
                t.resolution,
                TenantResolution::Completed | TenantResolution::Refunded
            ),
            "{label}: {name} did not resolve terminally: {t:?}"
        );
    }
}

fn env_count(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_threads(name: &str) -> Vec<usize> {
    std::env::var(name)
        .unwrap_or_else(|_| "1 4 8".into())
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect()
}

/// Invariants (a) and (c): generated adaptive campaigns — whatever
/// mix of refill probing, rung-edge riding and collusion the seed
/// draws — never push a hardened flight past the fast-loop deadline,
/// and the whole run replays bit-identically across the thread
/// matrix.
#[test]
fn adaptive_fleet_holds_deadline_and_determinism() {
    let n = env_count("ADAPTIVE_SEEDS", 4);
    let threads = env_threads("ADAPTIVE_THREADS");
    for i in 0..n {
        let seed = 0xADA7_71FE ^ (i.wrapping_mul(0x9E37_79B9));
        let cfg = FleetConfig {
            base: BASE,
            seed,
            fleet_size: 2,
            tenants: spread_tenants(3 + (i as usize % 2)),
            max_waves: 6,
            max_sim_seconds: MAX_SIM_S,
            watchdog: None,
            threads: 1,
        };
        let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.vd_name.clone()).collect();
        let mut adaptive = BTreeMap::new();
        adaptive.insert(0usize, AdaptivePlan::generate(seed, 120, &tenant_names));
        adaptive.insert(1usize, AdaptivePlan::generate(seed ^ 0xBEEF, 120, &tenant_names));
        let attacks = FleetAttackPlan {
            adaptive,
            defense: Some(AttackDefense::hardened()),
            ..FleetAttackPlan::none()
        };
        let label = format!("adaptive seed {seed:#x} ({} tenants)", cfg.tenants.len());

        let a = FleetSpec::new(cfg.clone()).attacks(attacks.clone()).run().expect("run");
        let b = FleetSpec::new(cfg.clone()).attacks(attacks.clone()).run().expect("rerun");
        assert_eq!(a.fleet_digest(), b.fleet_digest(), "{label}: dual-run divergence");
        assert_eq!(
            a.metrics_digest(),
            b.metrics_digest(),
            "{label}: dual-run metrics divergence"
        );
        for f in a.flights.iter() {
            if let Some((samples, misses, max_us)) = f.rt_deadline {
                assert!(samples > 0, "{label}: monitor sampled nothing");
                assert_eq!(
                    misses, 0,
                    "{label}: hardened flight missed {misses}/{samples} deadlines \
                     (max {max_us:.1} µs)"
                );
                assert!(
                    max_us < ARDUPILOT_DEADLINE_US,
                    "{label}: hardened max {max_us:.1} µs"
                );
            }
        }
        assert_terminal_outcomes(&a, &label);
        for &t in &threads {
            let cfg_t = FleetConfig { threads: t, ..cfg.clone() };
            let run =
                FleetSpec::new(cfg_t.clone()).attacks(attacks.clone()).run().expect("run");
            assert_eq!(
                a.fleet_digest(),
                run.fleet_digest(),
                "{label}: threads {t} fleet digest diverged"
            );
            assert_eq!(
                a.metrics_digest(),
                run.metrics_digest(),
                "{label}: threads {t} metrics digest diverged"
            );
        }
    }
}

/// Invariant (b), pinned: synchronized collusion — three co-resident
/// tenants cycling save → burst → glide on the same phase — breaches
/// the fast loop under the pre-hardening per-tenant-only defense
/// (every colluder stays inside its own bucket; the *aggregate*
/// admitted burst is what does the damage), and the identical plan
/// under the hardened posture is contained to zero misses.
#[test]
fn synchronized_collusion_breaches_per_tenant_defense_and_hardening_contains_it() {
    let cfg = FleetConfig {
        base: BASE,
        seed: 0xC011_0DE5,
        fleet_size: 1,
        tenants: clustered_tenants(3),
        max_waves: 6,
        max_sim_seconds: MAX_SIM_S,
        watchdog: None,
        threads: 1,
    };
    let roster: Vec<String> = cfg.tenants.iter().map(|t| t.vd_name.clone()).collect();
    let mut adaptive = BTreeMap::new();
    adaptive.insert(0usize, AdaptivePlan::colluding(&roster, 2, 44));

    // Pre-hardening posture: per-tenant budgets and the ladder, but
    // no aggregate cap, no decay, no refill jitter.
    let per_tenant_only = FleetAttackPlan {
        adaptive: adaptive.clone(),
        defense: Some(AttackDefense::default()),
        ..FleetAttackPlan::none()
    };
    let run = FleetSpec::new(cfg.clone()).attacks(per_tenant_only.clone()).run()
        .expect("run");
    let (samples, misses, max_us) = run.flights[0]
        .rt_deadline
        .expect("the adaptive flight carries the monitor");
    assert!(samples > 0);
    assert!(
        misses > 0,
        "synchronized collusion should breach per-tenant-only defense \
         (max {max_us:.1} µs over {samples} samples)"
    );
    assert!(
        max_us > ARDUPILOT_DEADLINE_US,
        "collusion worst case {max_us:.1} µs should exceed 2500 µs"
    );
    // The whole point: no individual colluder ever climbed the
    // ladder — per-tenant discipline was immaculate.
    let ladder: Vec<&String> = run.flights[0]
        .injected
        .iter()
        .filter(|l| l.contains("ladder"))
        .collect();
    assert!(
        ladder.is_empty(),
        "colluders should stay under every per-tenant threshold: {ladder:?}"
    );
    assert_terminal_outcomes(&run, "collusion (per-tenant only)");
    eprintln!(
        "collusion vs per-tenant-only defense: {misses}/{samples} deadline \
         misses, max {max_us:.1} µs, ladder silent"
    );

    // The identical campaign under the hardened posture.
    let hardened = FleetAttackPlan {
        adaptive,
        defense: Some(AttackDefense::hardened()),
        ..FleetAttackPlan::none()
    };
    let run = FleetSpec::new(cfg.clone()).attacks(hardened.clone()).run().expect("run");
    let (samples, misses, max_us) = run.flights[0].rt_deadline.expect("monitor rode the flight");
    assert!(samples > 0);
    assert_eq!(
        misses, 0,
        "hardened collusion missed {misses}/{samples} deadlines (max {max_us:.1} µs)"
    );
    assert!(max_us < ARDUPILOT_DEADLINE_US, "hardened max {max_us:.1} µs");
    // The aggregate cap converts the group's burst overflow into
    // per-tenant throttles, so enforcement visibly engaged.
    let ladder: Vec<&String> = run.flights[0]
        .injected
        .iter()
        .filter(|l| l.contains("ladder"))
        .collect();
    assert!(
        !ladder.is_empty(),
        "the aggregate cap should have engaged the ladder on the colluders"
    );
    assert_terminal_outcomes(&run, "collusion (hardened)");
    eprintln!(
        "collusion vs hardened defense: {misses}/{samples} deadline misses, \
         max {max_us:.1} µs, ladder steps: {}",
        ladder.len()
    );
}

/// Invariant (d): an adaptive entry with an empty plan is provably
/// zero-work — bit-identical to the legacy executor.
#[test]
fn empty_adaptive_plan_is_zero_work() {
    let cfg = FleetConfig {
        base: BASE,
        seed: 0xF1EE_ADAF,
        fleet_size: 2,
        tenants: spread_tenants(3),
        max_waves: 6,
        max_sim_seconds: MAX_SIM_S,
        watchdog: None,
        threads: 1,
    };
    let faults = FleetFaultPlan::empty();
    let legacy = FleetSpec::new(cfg.clone()).faults(faults.clone()).run().expect("legacy run");

    let mut adaptive = BTreeMap::new();
    adaptive.insert(0usize, AdaptivePlan::empty());
    let armed_but_empty = FleetAttackPlan {
        adaptive,
        defense: Some(AttackDefense::hardened()),
        ..FleetAttackPlan::none()
    };
    assert!(armed_but_empty.is_empty());
    let run = FleetSpec::new(cfg.clone()).faults(faults.clone()).attacks(armed_but_empty.clone()).run().expect("run");
    assert_eq!(legacy.fleet_digest(), run.fleet_digest());
    assert_eq!(legacy.metrics_digest(), run.metrics_digest());
    assert!(run.flights.iter().all(|f| f.rt_deadline.is_none()));
}
