//! Live camera streaming through a Binder fd: the feed flows while
//! the virtual drone holds its waypoint and stops — stream closed by
//! the device container — the moment camera access is revoked.

use androne::android::{svc_codes, svc_names, AndroneManifest};
use androne::android::read_stream_frames;
use androne::binder::{get_service, Parcel};
use androne::container::DeviceNamespaceId;
use androne::hal::GeoPoint;
use androne::simkern::SchedPolicy;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

const MANIFEST: &str = r#"<androne-manifest package="com.example.stream">
    <uses-permission name="camera" type="waypoint"/>
</androne-manifest>"#;

#[test]
fn stream_flows_at_waypoint_and_is_cut_on_revocation() {
    let mut drone = Drone::boot(BASE, 91).unwrap();
    let manifest = AndroneManifest::parse(MANIFEST).unwrap();
    drone
        .deploy_vdrone(
            "vd1",
            VirtualDroneSpec {
                waypoints: vec![WaypointSpec {
                    latitude: BASE.latitude,
                    longitude: BASE.longitude,
                    altitude: 15.0,
                    max_radius: 30.0,
                }],
                max_duration: 120.0,
                energy_allotted: 40_000.0,
                continuous_devices: vec![],
                waypoint_devices: vec!["camera".into()],
                apps: vec![],
                app_args: Default::default(),
            },
            &[manifest],
        )
        .unwrap();
    let vd = drone.vdrones.get("vd1").unwrap();
    let container = vd.container;
    let euid = vd.apps.get("com.example.stream").unwrap().euid;
    let app = {
        let mut k = drone.kernel.borrow_mut();
        k.tasks
            .spawn("stream-app", euid, container, SchedPolicy::DEFAULT)
            .unwrap()
    };
    drone
        .driver
        .open(app, euid, container, DeviceNamespaceId(container.0));

    // At the waypoint: open a stream fd.
    drone.vdc.borrow_mut().on_waypoint_arrived("vd1", 0);
    let cam = get_service(&mut drone.driver, app, svc_names::CAMERA).unwrap();
    let reply = drone
        .driver
        .transact(app, cam, svc_codes::OP2, Parcel::new())
        .unwrap();
    let fd = reply.fd_at(0).unwrap();

    // The device container pumps frames (1 per pump) while access
    // holds.
    for _ in 0..5 {
        drone.pump_camera_streams();
    }
    let frames = read_stream_frames(&drone.driver, app, fd).unwrap();
    assert_eq!(frames.len(), 6, "1 priming + 5 pumped frames");
    assert_eq!(
        drone
            .device_instance
            .camera_service
            .as_ref()
            .unwrap()
            .borrow()
            .open_stream_count(),
        1
    );

    // Departure revokes camera access: the stream is closed and no
    // more frames arrive.
    drone.vdc.borrow_mut().on_waypoint_departed("vd1", 0);
    for _ in 0..5 {
        drone.pump_camera_streams();
    }
    let frames = read_stream_frames(&drone.driver, app, fd).unwrap();
    assert!(frames.is_empty(), "feed cut after revocation: {frames:?}");
    assert_eq!(
        drone
            .device_instance
            .camera_service
            .as_ref()
            .unwrap()
            .borrow()
            .open_stream_count(),
        0,
        "stream closed by the device container"
    );
}

#[test]
fn streams_of_different_tenants_are_independent() {
    let mut drone = Drone::boot(BASE, 92).unwrap();
    let manifest = AndroneManifest::parse(MANIFEST).unwrap();
    for name in ["vd-a", "vd-b"] {
        drone
            .deploy_vdrone(
                name,
                VirtualDroneSpec {
                    waypoints: vec![WaypointSpec {
                        latitude: BASE.latitude,
                        longitude: BASE.longitude,
                        altitude: 15.0,
                        max_radius: 30.0,
                    }],
                    max_duration: 120.0,
                    energy_allotted: 40_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: vec!["camera".into()],
                    apps: vec![],
                    app_args: Default::default(),
                },
                std::slice::from_ref(&manifest),
            )
            .unwrap();
    }
    let open_stream = |drone: &mut Drone, name: &str| -> (androne::simkern::Pid, u32) {
        let vd = drone.vdrones.get(name).unwrap();
        let container = vd.container;
        let euid = vd.apps.get("com.example.stream").unwrap().euid;
        let app = {
            let mut k = drone.kernel.borrow_mut();
            k.tasks
                .spawn("app", euid, container, SchedPolicy::DEFAULT)
                .unwrap()
        };
        drone
            .driver
            .open(app, euid, container, DeviceNamespaceId(container.0));
        drone.vdc.borrow_mut().on_waypoint_arrived(name, 0);
        let cam = get_service(&mut drone.driver, app, svc_names::CAMERA).unwrap();
        let reply = drone
            .driver
            .transact(app, cam, svc_codes::OP2, Parcel::new())
            .unwrap();
        (app, reply.fd_at(0).unwrap())
    };
    let (app_a, fd_a) = open_stream(&mut drone, "vd-a");
    let (app_b, fd_b) = open_stream(&mut drone, "vd-b");

    drone.pump_camera_streams();
    // Revoke only vd-a.
    drone.vdc.borrow_mut().on_waypoint_departed("vd-a", 0);
    drone.pump_camera_streams();

    let a = read_stream_frames(&drone.driver, app_a, fd_a).unwrap();
    let b = read_stream_frames(&drone.driver, app_b, fd_b).unwrap();
    assert_eq!(a.len(), 2, "priming + one pump before revocation");
    assert_eq!(b.len(), 3, "vd-b keeps streaming");
}
