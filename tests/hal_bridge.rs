//! The flight container's HAL bridge (paper Section 4.3): the flight
//! controller reads GPS and sensors through the device container
//! "just like any other virtual drone", gated by the VDC policy —
//! which allows it exactly GPS and sensors, never the camera.

use androne::android::{svc_codes, svc_names};
use androne::binder::{get_service, BinderError, Parcel};
use androne::hal::GeoPoint;
use androne::simkern::SimDuration;
use androne::Drone;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

#[test]
fn flight_container_reads_gps_through_device_container() {
    let mut drone = Drone::boot(BASE, 51).unwrap();
    let Drone {
        ref mut hal_bridge,
        ref mut driver,
        ..
    } = drone;
    let fix = hal_bridge.gps_fix(driver).unwrap();
    assert!((fix.latitude - BASE.latitude).abs() < 0.001, "{}", fix.latitude);
    assert!((fix.longitude - BASE.longitude).abs() < 0.001);
    assert!(fix.ground_speed.abs() < 0.1, "at rest");
}

#[test]
fn bridge_gps_tracks_the_flying_vehicle() {
    let mut drone = Drone::boot(BASE, 52).unwrap();
    assert!(drone.sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
    let away = BASE.offset_m(60.0, 30.0, 15.0);
    assert!(drone.sitl.goto(away, 5.0, 2.0, SimDuration::from_secs(60)));
    let Drone {
        ref mut hal_bridge,
        ref mut driver,
        ..
    } = drone;
    let fix = hal_bridge.gps_fix(driver).unwrap();
    let seen = GeoPoint::new(fix.latitude, fix.longitude, fix.altitude);
    assert!(
        seen.ground_distance_m(&away) < 10.0,
        "bridge GPS follows the flight: {} m off",
        seen.ground_distance_m(&away)
    );
    assert!((10.0..20.0).contains(&fix.altitude), "alt {}", fix.altitude);
}

#[test]
fn bridge_reads_baro_imu_and_heading() {
    let mut drone = Drone::boot(BASE, 53).unwrap();
    let Drone {
        ref mut hal_bridge,
        ref mut driver,
        ..
    } = drone;
    let p = hal_bridge.baro_pressure_pa(driver).unwrap();
    assert!((95_000.0..103_000.0).contains(&p), "sea-level-ish: {p}");
    let imu = hal_bridge.imu_sample(driver).unwrap();
    assert!((imu.accel[2] + 9.8).abs() < 1.0, "gravity on body z");
    let h = hal_bridge.heading(driver).unwrap();
    assert!(h.abs() < 0.2, "level vehicle points north: {h}");
}

#[test]
fn flight_container_is_denied_the_camera() {
    // The VDC policy allows the flight container GPS and sensors
    // only; a compromised flight stack cannot spy through the camera.
    let mut drone = Drone::boot(BASE, 54).unwrap();
    let bridge_pid = {
        let k = drone.kernel.borrow();
        let pid = k
            .tasks
            .live()
            .find(|t| t.name == "hal-bridge")
            .map(|t| t.pid);
        pid.expect("bridge task exists")
    };
    let cam = get_service(&mut drone.driver, bridge_pid, svc_names::CAMERA).unwrap();
    let err = drone
        .driver
        .transact(bridge_pid, cam, svc_codes::OP, Parcel::new())
        .unwrap_err();
    assert!(matches!(err, BinderError::PermissionDenied(_)), "{err}");
}
