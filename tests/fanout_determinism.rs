//! Telemetry fan-out determinism.
//!
//! The proxy distributes each `Sitl::step` batch as shared
//! `Rc<Message>` values, transforming once per VFC client. These
//! tests pin down the two properties that sharing must not break:
//!
//! 1. under a fixed SITL seed, repeated runs deliver byte-identical
//!    message sequences to every client;
//! 2. the shared distribution is observably equal — message for
//!    message, byte for byte — to the owned per-message
//!    `transform_telemetry` reference it replaced.

use std::collections::BTreeMap;
use std::rc::Rc;

use androne::flight::{CommandWhitelist, Geofence, MavProxy, Sitl, Vfc};
use androne::hal::GeoPoint;
use androne::mavlink::{FlightMode, Message};

/// Wire image of a message: id byte plus encoded payload.
fn wire(msg: &Message) -> Vec<u8> {
    let mut out = vec![msg.msg_id()];
    out.extend(msg.encode_payload());
    out
}

fn home() -> GeoPoint {
    GeoPoint::new(37.42, -122.08, 0.0)
}

const CLIENTS: [&str; 5] = ["gcs", "vd-active", "vd-approach", "vd-finished", "vd-pending"];

/// One client in every telemetry presentation state: pass-through
/// (unrestricted and active), synthetic climb (approaching),
/// synthetic descent (finished), and grounded idle (pending).
fn build_proxy() -> MavProxy {
    let mut proxy = MavProxy::new();
    proxy.add_unrestricted_client("gcs");

    let mut active = Vfc::new(
        "vd-active",
        CommandWhitelist::standard(),
        Geofence::new(home(), 250.0),
        false,
    );
    active.begin_approach();
    active.activate();
    proxy.add_vfc_client(active);

    let far = GeoPoint::new(37.43, -122.07, 30.0);
    let mut approaching = Vfc::new(
        "vd-approach",
        CommandWhitelist::guided_only(),
        Geofence::new(far, 100.0),
        false,
    );
    approaching.begin_approach();
    proxy.add_vfc_client(approaching);

    let mut finished = Vfc::new(
        "vd-finished",
        CommandWhitelist::standard(),
        Geofence::new(far, 100.0),
        false,
    );
    finished.finish(GeoPoint::new(37.421, -122.081, 12.0));
    proxy.add_vfc_client(finished);

    proxy.add_vfc_client(Vfc::new(
        "vd-pending",
        CommandWhitelist::standard(),
        Geofence::new(far, 100.0),
        false,
    ));
    proxy
}

fn run(seed: u64, steps: usize) -> BTreeMap<String, Vec<u8>> {
    let mut sitl = Sitl::new(home(), seed);
    let mut proxy = build_proxy();
    let mut sequences: BTreeMap<String, Vec<u8>> = CLIENTS
        .iter()
        .map(|name| (name.to_string(), Vec::new()))
        .collect();
    for _ in 0..steps {
        proxy.step(&mut sitl);
        for name in CLIENTS {
            let seq = sequences.get_mut(name).unwrap();
            for msg in proxy.client_recv(name) {
                seq.extend(wire(&msg));
            }
        }
    }
    sequences
}

#[test]
fn fanout_is_byte_identical_under_fixed_seed() {
    let first = run(42, 2_000);
    let second = run(42, 2_000);
    assert_eq!(first, second);
    for (name, bytes) in &first {
        assert!(!bytes.is_empty(), "client {name} saw telemetry");
    }
}

#[test]
fn shared_fanout_matches_owned_per_message_transform() {
    let pos = home();
    let batch = vec![
        Message::Heartbeat {
            mode: FlightMode::Guided,
            armed: true,
            system_status: 4,
        },
        Message::SysStatus {
            voltage_mv: 12_400,
            current_ca: 1_800,
            battery_remaining: 87,
        },
        Message::Attitude {
            time_boot_ms: 400,
            roll: 0.02,
            pitch: -0.01,
            yaw: 1.57,
        },
        Message::GlobalPositionInt {
            time_boot_ms: 400,
            lat: 374_200_000,
            lon: -1_220_800_000,
            relative_alt: 30_000,
            vx: 120,
            vy: -40,
            vz: 0,
        },
        Message::StatusText {
            severity: 6,
            text: "EKF2 IMU0 is using GPS".to_string(),
        },
    ];
    let batch_rc: Vec<Rc<Message>> = batch.iter().cloned().map(Rc::new).collect();

    let mut proxy = build_proxy();
    // Reference VFC state captured before distribution mutates the
    // synthetic-altitude animation.
    let mut reference: BTreeMap<&str, Option<Vfc>> = CLIENTS
        .iter()
        .map(|&name| (name, proxy.vfc(name).cloned()))
        .collect();

    // Several rounds, so stateful transforms (climb/descent) are
    // compared across steps, not just on the first batch.
    for round in 0..10 {
        proxy.distribute_telemetry(&batch_rc, &pos);
        for name in CLIENTS {
            let delivered = proxy.client_recv(name);
            let expected: Vec<Message> = match reference.get_mut(name).unwrap() {
                None => batch.clone(),
                Some(vfc) => batch
                    .iter()
                    .map(|msg| vfc.transform_telemetry(msg, &pos))
                    .collect(),
            };
            assert_eq!(delivered, expected, "client {name}, round {round}");
            let delivered_bytes: Vec<u8> = delivered.iter().flat_map(wire).collect();
            let expected_bytes: Vec<u8> = expected.iter().flat_map(wire).collect();
            assert_eq!(delivered_bytes, expected_bytes, "client {name}, round {round}");
        }
    }
}
