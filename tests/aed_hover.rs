//! The paper's Section 6.2 hover-stability check: "we operated our
//! drone prototype at a hover and compared its performance while
//! running the idle and PassMark scenarios ... analyzed logs of each
//! flight using DroneKit's Log Analyzer ... Both scenarios were
//! within normal divergence."

use androne::hal::GeoPoint;
use androne::simkern::SimDuration;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::workloads::run_concurrent;
use androne::Drone;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

fn spec() -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints: vec![WaypointSpec {
            latitude: BASE.latitude,
            longitude: BASE.longitude,
            altitude: 15.0,
            max_radius: 30.0,
        }],
        max_duration: 600.0,
        energy_allotted: 45_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into()],
        apps: vec![],
        app_args: Default::default(),
    }
}

fn hover_aed(seed: u64, run_passmark: bool) -> androne::flight::AedReport {
    let mut drone = Drone::boot(BASE, seed).unwrap();
    for i in 1..=3 {
        drone.deploy_vdrone(&format!("vd{i}"), spec(), &[]).unwrap();
    }
    assert!(drone.sitl.arm_and_takeoff(10.0, SimDuration::from_secs(30)));
    if run_passmark {
        // Three virtual drones run PassMark while the drone hovers
        // (the kernel-side load is what could disturb the fast loop).
        let mut k = drone.kernel.borrow_mut();
        let _scores = run_concurrent(&mut k, 3, true);
        k.add_interference(androne::simkern::latency::profiles::passmark_load());
    }
    drone.sitl.run_for(SimDuration::from_secs(60));
    drone.sitl.recorder.aed_analysis()
}

#[test]
fn idle_hover_is_within_normal_divergence() {
    let report = hover_aed(621, false);
    assert!(report.passes(), "violations: {:?}", report.violations);
    assert!(report.samples > 500, "a full minute of ATT records");
    assert!(
        report.peak_rad < androne::flight::AED_THRESHOLD_RAD,
        "peak {:.2} deg",
        report.peak_rad.to_degrees()
    );
}

#[test]
fn passmark_hover_is_within_normal_divergence() {
    let report = hover_aed(622, true);
    assert!(report.passes(), "violations: {:?}", report.violations);
}
