//! Failure injection: inclement-weather aborts with VDR resume,
//! revocation enforcement against misbehaving apps, energy
//! exhaustion mid-task, and lossy-link control.

use androne::android::{svc_codes, svc_names};
use androne::binder::{get_service, Parcel};
use androne::cloud::SaveReason;
use androne::container::DeviceNamespaceId;
use androne::flight_exec::{execute_flight, EndReason, FlightLog};
use androne::hal::GeoPoint;
use androne::planner::{FlightPlan, Leg};
use androne::simkern::{LinkModel, SchedPolicy, SimTime, TaskState};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::{Androne, Drone};

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn spec(waypoints: Vec<WaypointSpec>, energy: f64, duration: f64) -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints,
        max_duration: duration,
        energy_allotted: energy,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec![],
        app_args: Default::default(),
    }
}

fn one_leg_plan(owner: &str, north: f64, east: f64, time_s: f64) -> FlightPlan {
    FlightPlan {
        base: BASE,
        legs: vec![Leg {
            owner: owner.into(),
            position: BASE.offset_m(north, east, 15.0),
            max_radius_m: 40.0,
            service_energy_j: 50_000.0,
            service_time_s: time_s,
            eta_s: 15.0,
        }],
        estimated_duration_s: 200.0,
        estimated_energy_j: 60_000.0,
    }
}

#[test]
fn weather_abort_interrupts_and_flight_returns() {
    let mut drone = Drone::boot(BASE, 31).unwrap();
    drone
        .deploy_vdrone("vd1", spec(vec![wp(80.0, 0.0, 40.0)], 50_000.0, 600.0), &[])
        .unwrap();
    // Weather turns at t=40s, well before the 120 s service window
    // would expire.
    let outcome = execute_flight(
        &mut drone,
        one_leg_plan("vd1", 80.0, 0.0, 120.0),
        400.0,
        Some(Box::new(|t| t >= 40.0)),
    );
    assert!(!outcome.completed, "aborted flights do not complete");
    assert!(outcome.log.contains(&FlightLog::Aborted));
    assert!(
        outcome.log.iter().any(|e| matches!(
            e,
            FlightLog::WaypointEnd { reason: EndReason::Aborted, .. }
        )),
        "{:?}",
        outcome.log
    );
    assert!(matches!(outcome.log.last(), Some(FlightLog::Landed)));
    assert!(drone.sitl.on_ground(), "returned to base despite the abort");
}

#[test]
fn interrupted_vdrone_resumes_on_a_later_flight() {
    let mut androne = Androne::new(BASE, 1, 77);
    const MANIFEST: &str = r#"<androne-manifest package="com.example.survey">
        <uses-permission name="camera" type="waypoint"/>
        <uses-permission name="flight-control" type="waypoint"/>
    </androne-manifest>"#;
    androne.cloud.app_store.publish(MANIFEST, "survey").unwrap();
    let order = androne
        .cloud
        .portal
        .place_order(
            &androne.cloud.app_store,
            androne::cloud::OrderRequest {
                user: "alice".into(),
                waypoints: vec![wp(60.0, 0.0, 30.0)],
                drone_type: "video".into(),
                apps: vec![androne::cloud::AppSelection {
                    package: "com.example.survey".into(),
                    args: Default::default(),
                }],
                extra_waypoint_devices: vec![],
                extra_continuous_devices: vec![],
                max_charge_cents: 200.0,
                max_duration_s: 30.0,
                flexible_schedule: true,
            },
        )
        .unwrap();

    // First flight: aborted by weather before reaching the waypoint.
    let plans = androne.cloud.plan_flights(std::slice::from_ref(&order), BASE, 1);
    let outcome = androne
        .execute_one_flight(
            std::slice::from_ref(&order),
            plans[0].clone(),
            400.0,
            Some(Box::new(|t| t >= 5.0)),
        )
        .unwrap();
    assert!(!outcome.completed);
    let saved = androne.cloud.vdr.get(&order.vd_name).unwrap();
    assert_eq!(saved.reason, SaveReason::Interrupted, "saved for resumption");

    // Second flight: the same virtual drone is pulled from the VDR
    // and completes.
    let plans = androne.cloud.plan_flights(std::slice::from_ref(&order), BASE, 1);
    let outcome = androne
        .execute_one_flight(std::slice::from_ref(&order), plans[0].clone(), 400.0, None)
        .unwrap();
    assert!(outcome.completed, "log: {:?}", outcome.log);
    assert_eq!(
        androne.cloud.vdr.get(&order.vd_name).unwrap().reason,
        SaveReason::Completed
    );
}

#[test]
fn app_ignoring_revocation_is_terminated() {
    let mut drone = Drone::boot(BASE, 33).unwrap();
    const MANIFEST: &str = r#"<androne-manifest package="com.example.hog">
        <uses-permission name="camera" type="waypoint"/>
    </androne-manifest>"#;
    let manifest = androne::android::AndroneManifest::parse(MANIFEST).unwrap();
    drone
        .deploy_vdrone(
            "vd1",
            spec(vec![wp(40.0, 0.0, 30.0)], 50_000.0, 600.0),
            &[manifest],
        )
        .unwrap();
    let vd = drone.vdrones.get("vd1").unwrap();
    let container = vd.container;
    let euid = vd.apps.get("com.example.hog").unwrap().euid;

    // The app opens a camera session at the waypoint...
    let app_pid = {
        let mut k = drone.kernel.borrow_mut();
        k.tasks
            .spawn("hog", euid, container, SchedPolicy::DEFAULT)
            .unwrap()
    };
    drone
        .driver
        .open(app_pid, euid, container, DeviceNamespaceId(container.0));
    drone.vdc.borrow_mut().on_waypoint_arrived("vd1", 0);
    let cam = get_service(&mut drone.driver, app_pid, svc_names::CAMERA).unwrap();
    drone
        .driver
        .transact(app_pid, cam, svc_codes::CONNECT, Parcel::new())
        .unwrap();

    // ...and ignores the revocation notification at departure.
    drone.vdc.borrow_mut().on_waypoint_departed("vd1", 0);
    let killed = drone.enforce_revocation("vd1");
    assert_eq!(killed, vec![app_pid], "the holdout process is terminated");
    let k = drone.kernel.borrow();
    assert_eq!(k.tasks.get(app_pid).unwrap().state, TaskState::Dead);
}

#[test]
fn energy_exhaustion_ends_the_waypoint_window() {
    let mut drone = Drone::boot(BASE, 34).unwrap();
    // Tiny energy allotment: a few seconds of hover burns it.
    drone
        .deploy_vdrone("vd1", spec(vec![wp(60.0, 0.0, 40.0)], 900.0, 600.0), &[])
        .unwrap();
    let outcome = execute_flight(&mut drone, one_leg_plan("vd1", 60.0, 0.0, 300.0), 400.0, None);
    assert!(outcome.completed);
    assert!(
        outcome.log.iter().any(|e| matches!(
            e,
            FlightLog::WaypointEnd { reason: EndReason::EnergyExhausted, .. }
        )),
        "{:?}",
        outcome.log
    );
}

#[test]
fn cellular_loss_does_not_wedge_the_command_stream() {
    // Drive MAVLink traffic through a deliberately lossy cellular
    // link: lost packets vanish but every delivered frame decodes.
    use androne::mavlink::{channel, FlightMode, Message};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let lossy = LinkModel {
        loss_prob: 0.2,
        ..LinkModel::cellular_lte()
    };
    let (mut ground, mut drone_end) = channel(lossy, 255, 1);
    let mut rng = SmallRng::seed_from_u64(9);
    let mut t = SimTime::ZERO;
    let mut delivered = 0;
    for _ in 0..2_000 {
        ground.send(
            Message::Heartbeat {
                mode: FlightMode::Guided,
                armed: true,
                system_status: 4,
            },
            t,
            &mut rng,
        );
        t += androne::simkern::SimDuration::from_millis(100);
        delivered += drone_end.recv(t).len();
    }
    // Drain stragglers.
    t += androne::simkern::SimDuration::from_secs(2);
    delivered += drone_end.recv(t).len();
    let lost = ground.packets_lost() as usize;
    assert!(lost > 200, "loss model active: {lost}");
    assert_eq!(delivered + lost, 2_000, "no frame corrupted or duplicated");
    assert_eq!(drone_end.frames_dropped(), 0);
}

#[test]
fn kernel_crash_on_shared_hardware_cuts_the_motors() {
    // Paper Section 4.3: "when sharing hardware with the flight
    // controller, a bug or intentional kernel crash can result in
    // loss of control of the drone".
    let mut drone = Drone::boot(BASE, 35).unwrap();
    assert!(drone
        .sitl
        .arm_and_takeoff(20.0, androne::simkern::SimDuration::from_secs(30)));
    drone.inject_kernel_panic();
    assert!(drone.host_crashed());
    // Binder is dead: device services are unreachable.
    let Drone {
        ref mut hal_bridge,
        ref mut driver,
        ..
    } = drone;
    assert!(hal_bridge.gps_fix(driver).is_err(), "Binder died with the kernel");
    // The unpowered airframe comes down.
    drone.sitl.run_for(androne::simkern::SimDuration::from_secs(30));
    assert!(drone.sitl.on_ground(), "uncontrolled descent to ground");
    assert!(!drone.sitl.fc.armed());
}

#[test]
fn separate_flight_hardware_survives_a_kernel_crash() {
    // The paper's mitigation: "this risk can be removed by running
    // the flight controller on separate hardware if desired."
    let mut drone = Drone::boot(BASE, 36).unwrap();
    drone.flight_on_separate_hardware = true;
    assert!(drone
        .sitl
        .arm_and_takeoff(20.0, androne::simkern::SimDuration::from_secs(30)));
    drone.inject_kernel_panic();
    // Virtual drones and device services are gone...
    let Drone {
        ref mut hal_bridge,
        ref mut driver,
        ..
    } = drone;
    assert!(hal_bridge.gps_fix(driver).is_err());
    // ...but the flight controller keeps flying and returns home.
    assert!(drone.sitl.fc.armed(), "fast loop unaffected");
    drone.sitl.handle_message(&androne::mavlink::Message::CommandLong {
        command: androne::mavlink::MavCmd::NavReturnToLaunch,
        params: [0.0; 7],
    });
    drone.sitl.run_for(androne::simkern::SimDuration::from_secs(60));
    assert!(drone.sitl.on_ground());
    assert!(drone.sitl.position().ground_distance_m(&BASE) < 5.0, "landed at base");
}
