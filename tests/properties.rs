//! Property-based tests over the core data structures and
//! invariants (proptest).

use androne::binder::{Parcel, PValue};
use androne::container::{FileChange, Image, Layer};
use androne::energy::DorlingModel;
use androne::flight::Geofence;
use androne::hal::GeoPoint;
use androne::mavlink::{deg_to_e7, Frame, Message, Parser};
use androne::planner::{VrpProblem, WaypointTask};
use androne::simkern::{MemoryLedger, Summary};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_pvalue() -> impl Strategy<Value = PValue> {
    prop_oneof![
        any::<i32>().prop_map(PValue::I32),
        any::<i64>().prop_map(PValue::I64),
        any::<f64>().prop_filter("finite", |v| v.is_finite()).prop_map(PValue::F64),
        "[a-z0-9./]{0,24}".prop_map(PValue::Str),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|b| PValue::Blob(Bytes::from(b))),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), any::<bool>(), 0u8..6).prop_map(|(_, armed, st)| Message::Heartbeat {
            mode: androne::mavlink::FlightMode::Guided,
            armed,
            system_status: st,
        }),
        (any::<u32>(), -1.5f32..1.5, -1.5f32..1.5, -3.2f32..3.2).prop_map(
            |(t, roll, pitch, yaw)| Message::Attitude {
                time_boot_ms: t,
                roll,
                pitch,
                yaw,
            }
        ),
        (-90.0f64..90.0, -180.0f64..180.0, 0f32..120.0, 0.1f32..15.0).prop_map(
            |(lat, lon, alt, speed)| Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(lat),
                lon: deg_to_e7(lon),
                alt,
                speed,
            }
        ),
        (0u8..7, "[ -~]{0,60}").prop_map(|(severity, text)| Message::StatusText {
            severity,
            text,
        }),
    ]
}

/// Independent wire-size accounting, mirroring the parcel's own.
fn wire_len(v: &PValue) -> usize {
    match v {
        PValue::I32(_) => 4,
        PValue::I64(_) | PValue::F64(_) => 8,
        PValue::Str(s) => 4 + s.len(),
        PValue::Blob(b) => 4 + b.len(),
        PValue::Binder(_) | PValue::Fd(_) => 16,
    }
}

fn push_value(p: &mut Parcel, v: &PValue) {
    match v {
        PValue::I32(x) => {
            p.push_i32(*x);
        }
        PValue::I64(x) => {
            p.push_i64(*x);
        }
        PValue::F64(x) => {
            p.push_f64(*x);
        }
        PValue::Str(s) => {
            p.push_str(s.clone());
        }
        PValue::Blob(b) => {
            p.push_blob(b.clone());
        }
        _ => unreachable!(),
    }
}

proptest! {
    #[test]
    fn parcel_values_round_trip(values in proptest::collection::vec(arb_pvalue(), 0..16)) {
        let mut p = Parcel::new();
        for v in &values {
            push_value(&mut p, v);
        }
        prop_assert_eq!(p.values(), values.as_slice());
        prop_assert_eq!(p.len(), values.len());
    }

    #[test]
    fn parcel_cow_clone_then_mutate_never_aliases(
        values in proptest::collection::vec(arb_pvalue(), 0..16),
        extra in arb_pvalue(),
        mutate_original in any::<bool>(),
    ) {
        let mut original = Parcel::new();
        for v in &values {
            push_value(&mut original, v);
        }
        let mut clone = original.clone();
        // Clones share storage until a write...
        prop_assert!(original.shares_storage_with(&clone));
        let snapshot = original.values().to_vec();

        // ...and a write to either side unshares; the other side
        // observes the pre-write contents, never the mutation.
        if mutate_original {
            push_value(&mut original, &extra);
            prop_assert_eq!(clone.values(), snapshot.as_slice());
            prop_assert_eq!(original.len(), snapshot.len() + 1);
        } else {
            push_value(&mut clone, &extra);
            prop_assert_eq!(original.values(), snapshot.as_slice());
            prop_assert_eq!(clone.len(), snapshot.len() + 1);
        }
        prop_assert!(!original.shares_storage_with(&clone));
        prop_assert_eq!(original.wire_size(), original.values().iter().map(wire_len).sum::<usize>());
        prop_assert_eq!(clone.wire_size(), clone.values().iter().map(wire_len).sum::<usize>());
    }

    #[test]
    fn mavlink_frames_round_trip(msg in arb_message(), seq in any::<u8>(), sysid in any::<u8>()) {
        let frame = Frame { seq, sysid, compid: 1, msg };
        let mut parser = Parser::new();
        let decoded = parser.push(&frame.encode());
        // StatusText truncates >50-byte bodies; everything else is
        // exact.
        prop_assert_eq!(decoded.len(), 1);
        if let Message::StatusText { text, .. } = &frame.msg {
            if text.len() <= 50 {
                prop_assert_eq!(&decoded[0], &frame);
            }
        } else {
            prop_assert_eq!(&decoded[0], &frame);
        }
    }

    #[test]
    fn corrupted_frames_never_decode_wrong(
        msg in arb_message(),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let frame = Frame { seq: 1, sysid: 1, compid: 1, msg };
        let mut bytes = frame.encode();
        // Corrupt anywhere except the STX byte (parser resync is a
        // separate concern).
        let i = 1 + flip_at.index(bytes.len() - 1);
        bytes[i] ^= flip_bits;
        let mut parser = Parser::new();
        let decoded = parser.push(&bytes);
        // Either rejected, or (if the flip hit e.g. seq/sysid and the
        // checksum flip compensated — essentially impossible) equal.
        for f in decoded {
            // Any accepted frame must carry an internally consistent
            // checksum; re-encoding must reproduce accepted bytes.
            let reencoded = Frame { ..f.clone() }.encode();
            let mut p2 = Parser::new();
            prop_assert_eq!(p2.push(&reencoded).len(), 1);
        }
    }

    #[test]
    fn image_flatten_equals_resolution(
        ops in proptest::collection::vec(
            ("[a-c]", "[a-z]{0,8}", any::<bool>()),
            1..24
        )
    ) {
        // Build a random 3-layer stack of writes and whiteouts.
        let mut layers = vec![Layer::new(), Layer::new(), Layer::new()];
        for (i, (path, contents, whiteout)) in ops.iter().enumerate() {
            let layer = &mut layers[i % 3];
            if *whiteout {
                layer.whiteout(format!("/{path}"));
            } else {
                layer.write(format!("/{path}"), contents.clone());
            }
        }
        let mut image = Image::new();
        for l in layers {
            image.push_layer(Arc::new(l));
        }
        let flat = image.flatten();
        for path in image.paths() {
            let direct = image.resolve(&path);
            let flattened = flat.get(&path).and_then(|c| match c {
                FileChange::Write(b) => Some(b.clone()),
                FileChange::Whiteout => None,
            });
            prop_assert_eq!(direct, flattened);
        }
    }

    #[test]
    fn geofence_recovery_point_is_always_inside(
        north in -500.0f64..500.0,
        east in -500.0f64..500.0,
        up in 0.0f64..120.0,
        radius in 5.0f64..200.0,
    ) {
        let center = GeoPoint::new(43.6084298, -85.8110359, 15.0);
        let fence = Geofence::new(center, radius);
        let pos = center.offset_m(north, east, up);
        let rp = fence.recovery_point(&pos);
        prop_assert!(fence.contains(&rp), "recovery point escaped the fence");
        prop_assert!(rp.altitude >= 2.0);
    }

    #[test]
    fn dorling_power_is_monotone_in_payload(
        a in 0.0f64..2.0,
        b in 0.0f64..2.0,
    ) {
        let m = DorlingModel::f450_prototype();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.hover_power_w(lo) <= m.hover_power_w(hi) + 1e-9);
        prop_assert!(m.leg_energy_j(100.0, lo) <= m.leg_energy_j(100.0, hi) + 1e-9);
    }

    #[test]
    fn vrp_solutions_are_always_valid(
        coords in proptest::collection::vec((-800.0f64..800.0, -800.0f64..800.0), 1..10),
        fleet in 1usize..4,
        seed in any::<u64>(),
    ) {
        // A battery generous enough that every generated instance is
        // feasible: the solver's job here is structural validity
        // (coverage, fleet, no spurious violations); infeasibility
        // reporting has its own unit test in androne-planner.
        let depot = GeoPoint::new(43.6084298, -85.8110359, 0.0);
        let tasks: Vec<WaypointTask> = coords
            .iter()
            .enumerate()
            .map(|(i, (n, e))| WaypointTask {
                owner: format!("vd{i}"),
                position: depot.offset_m(*n, *e, 15.0),
                service_energy_j: 2_000.0,
                service_time_s: 30.0,
            })
            .collect();
        let problem = VrpProblem {
            depot,
            tasks,
            fleet_size: fleet,
            battery_budget_j: 2_000_000.0,
            model: DorlingModel::f450_prototype(),
        };
        let sol = problem.solve(2_000, seed);
        prop_assert!(problem.validate(&sol).is_ok());
    }

    #[test]
    fn memory_ledger_never_overcommits(
        ops in proptest::collection::vec((0u8..3, 0u64..200), 1..60)
    ) {
        let mut ledger = MemoryLedger::new(1_000);
        for (op, amount) in ops {
            match op {
                0 => { let _ = ledger.allocate("a", amount); }
                1 => { let _ = ledger.allocate("b", amount); }
                _ => ledger.free_bytes(&"a".into(), amount),
            }
            prop_assert!(ledger.used() <= ledger.capacity());
            prop_assert_eq!(ledger.used() + ledger.free(), ledger.capacity());
        }
    }

    #[test]
    fn summary_matches_naive_computation(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100)
    ) {
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(s.max(), max);
        prop_assert_eq!(s.min(), min);
    }

    #[test]
    fn geo_offset_round_trips(
        north in -2_000.0f64..2_000.0,
        east in -2_000.0f64..2_000.0,
        up in -50.0f64..200.0,
    ) {
        let origin = GeoPoint::new(43.6084298, -85.8110359, 30.0);
        let p = origin.offset_m(north, east, up);
        let ned = p.ned_from(&origin);
        prop_assert!((ned.x - north).abs() < 0.5, "north {} vs {}", ned.x, north);
        prop_assert!((ned.y - east).abs() < 0.5, "east {} vs {}", ned.y, east);
        prop_assert!((ned.z + up).abs() < 1e-6);
    }
}

proptest! {
    #[test]
    fn vfc_never_forwards_outside_active_state(
        transitions in proptest::collection::vec(0u8..5, 0..12),
        cmds in proptest::collection::vec(0u8..3, 1..8),
    ) {
        // Safety property: whatever sequence of lifecycle transitions
        // a VFC goes through, client commands are only ever forwarded
        // while it is Active (and in-whitelist, in-fence).
        use androne::flight::{CommandWhitelist, Vfc, VfcDecision, VfcState};
        let center = GeoPoint::new(43.6084298, -85.8110359, 15.0);
        let fence = Geofence::new(center, 30.0);
        let mut vfc = Vfc::new("vd", CommandWhitelist::full(), fence, false);
        for t in transitions {
            match t {
                0 => vfc.begin_approach(),
                1 => vfc.activate(),
                2 => vfc.finish(center),
                3 => {
                    let _ = vfc.begin_breach_recovery();
                }
                _ => {
                    let _ = vfc.end_breach_recovery();
                }
            }
        }
        for c in cmds {
            let msg = match c {
                0 => Message::CommandLong {
                    command: androne::mavlink::MavCmd::NavTakeoff,
                    params: [0.0; 7],
                },
                1 => Message::SetPositionTargetGlobalInt {
                    lat: deg_to_e7(center.latitude),
                    lon: deg_to_e7(center.longitude),
                    alt: 15.0,
                    speed: 4.0,
                },
                _ => Message::SetMode {
                    mode: androne::mavlink::FlightMode::Loiter,
                },
            };
            let decision = vfc.on_client_message(&msg);
            if matches!(decision, VfcDecision::Forward(_)) {
                prop_assert_eq!(vfc.state(), VfcState::Active);
            }
        }
    }

    #[test]
    fn access_table_never_grants_unrequested_devices(
        phase_moves in proptest::collection::vec(0u8..4, 0..10),
    ) {
        use androne::android::{DeviceClass, DevicePolicy};
        use androne::vdc::{AccessTable, FlightPhase};
        use androne::simkern::ContainerId;
        let mut t = AccessTable::new();
        let vd = ContainerId(10);
        t.register(vd, vec![DeviceClass::Camera], vec![DeviceClass::Gps]);
        for m in phase_moves {
            match m {
                0 => t.set_phase(vd, FlightPhase::AtWaypoint(0)),
                1 => t.set_phase(vd, FlightPhase::Transit),
                2 => t.suspend_continuous(vd),
                _ => t.resume_continuous(vd),
            }
            // Never-requested devices stay denied in every state.
            prop_assert!(!t.allows(vd, DeviceClass::Microphone));
            prop_assert!(!t.allows(vd, DeviceClass::FlightControl));
        }
    }
}

proptest! {
    #[test]
    fn manifest_parser_never_panics(input in "[ -~\\n]{0,300}") {
        // Arbitrary printable garbage: the parser may reject, never
        // panic.
        let _ = androne::android::AndroneManifest::parse(&input);
    }

    #[test]
    fn mavlink_parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut parser = Parser::new();
        let _ = parser.push(&bytes);
        // Feeding the same garbage twice keeps the parser sane.
        let _ = parser.push(&bytes);
    }

    #[test]
    fn spec_json_round_trips(
        n_waypoints in 1usize..4,
        duration in 1.0f64..10_000.0,
        energy in 1.0f64..1e6,
    ) {
        use androne::vdc::{VirtualDroneSpec, WaypointSpec};
        let spec = VirtualDroneSpec {
            waypoints: (0..n_waypoints)
                .map(|i| WaypointSpec {
                    latitude: 43.0 + i as f64 * 0.001,
                    longitude: -85.0 - i as f64 * 0.001,
                    altitude: 15.0,
                    max_radius: 30.0,
                })
                .collect(),
            max_duration: duration,
            energy_allotted: energy,
            continuous_devices: vec!["gps".into()],
            waypoint_devices: vec!["camera".into(), "flight-control".into()],
            apps: vec!["com.example.app.apk".into()],
            app_args: Default::default(),
        };
        spec.validate().unwrap();
        let back = VirtualDroneSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(spec, back);
    }
}
