//! Full-system integration tests: boot, deployment, device-access
//! windows, memory ceiling, and the VDR save/resume cycle.

use androne::android::{AndroneManifest, DeviceClass};
use androne::cloud::{AppSelection, OrderRequest};
use androne::flight_exec::execute_flight;
use androne::hal::GeoPoint;
use androne::simkern::MIB;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Androne;
use androne::{Drone, DroneError, FlightLog};

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

const SURVEY_MANIFEST: &str = r#"<androne-manifest package="com.example.survey">
    <uses-permission name="camera" type="waypoint"/>
    <uses-permission name="flight-control" type="waypoint"/>
    <argument name="survey-areas" type="geo-list" required="true"/>
</androne-manifest>"#;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn spec(waypoints: Vec<WaypointSpec>) -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints,
        max_duration: 120.0,
        energy_allotted: 40_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec!["com.example.survey.apk".into()],
        app_args: Default::default(),
    }
}

fn manifest() -> AndroneManifest {
    AndroneManifest::parse(SURVEY_MANIFEST).unwrap()
}

#[test]
fn drone_boots_with_device_and_flight_containers() {
    let drone = Drone::boot(BASE, 1).unwrap();
    // Base + device + flight memory matches Figure 12's shape.
    let used = drone.memory_used();
    assert_eq!(used, (95 + 110 + 40) * MIB);
    // The device container holds every hardware claim.
    assert_eq!(
        drone
            .board
            .borrow()
            .claims
            .holder(androne::hal::DeviceKind::Camera),
        Some("device-container")
    );
}

#[test]
fn three_vdrones_fit_a_fourth_ooms() {
    let mut drone = Drone::boot(BASE, 2).unwrap();
    for i in 1..=3 {
        drone
            .deploy_vdrone(&format!("vd{i}"), spec(vec![wp(50.0, 0.0, 30.0)]), &[])
            .unwrap();
    }
    assert_eq!(drone.memory_used(), (95 + 110 + 40 + 3 * 185) * MIB);
    let err = drone
        .deploy_vdrone("vd4", spec(vec![wp(50.0, 0.0, 30.0)]), &[])
        .unwrap_err();
    assert!(matches!(err, DroneError::Container(_)), "{err}");
    // The three running virtual drones are untouched.
    assert_eq!(drone.vdrones.len(), 3);
}

#[test]
fn device_access_follows_the_flight() {
    let mut drone = Drone::boot(BASE, 3).unwrap();
    let vd_spec = spec(vec![wp(60.0, 0.0, 40.0)]);
    drone.deploy_vdrone("vd1", vd_spec, &[manifest()]).unwrap();

    assert!(
        !drone.allows("vd1", DeviceClass::Camera),
        "no access pre-flight"
    );

    let plan = androne::planner::FlightPlan {
        base: BASE,
        legs: vec![androne::planner::Leg {
            owner: "vd1".into(),
            position: BASE.offset_m(60.0, 0.0, 15.0),
            max_radius_m: 40.0,
            service_energy_j: 10_000.0,
            service_time_s: 8.0,
            eta_s: 20.0,
        }],
        estimated_duration_s: 120.0,
        estimated_energy_j: 40_000.0,
    };
    let outcome = execute_flight(&mut drone, plan, 240.0, None);
    assert!(outcome.completed, "log: {:?}", outcome.log);

    // Handover happened with flight control, then the service window
    // ended (time allotment expiry at the waypoint).
    assert!(outcome.log.iter().any(|e| matches!(
        e,
        FlightLog::WaypointHandover { owner, flight_control: true, .. } if owner == "vd1"
    )));
    assert!(outcome.log.iter().any(|e| matches!(
        e,
        FlightLog::WaypointEnd { owner, .. } if owner == "vd1"
    )));
    assert!(
        !drone.allows("vd1", DeviceClass::Camera),
        "revoked after the waypoint"
    );
    // Energy was charged to the virtual drone while it held the
    // waypoint.
    assert!(*outcome.vdrone_energy_j.get("vd1").unwrap() > 500.0);
}

#[test]
fn full_order_to_flight_workflow() {
    let mut androne = Androne::new(BASE, 1, 42);
    androne
        .cloud
        .app_store
        .publish(SURVEY_MANIFEST, "Construction surveys")
        .unwrap();

    let order = androne
        .cloud
        .portal
        .place_order(
            &androne.cloud.app_store,
            OrderRequest {
                user: "alice".into(),
                waypoints: vec![wp(60.0, 20.0, 30.0)],
                drone_type: "video".into(),
                apps: vec![AppSelection {
                    package: "com.example.survey".into(),
                    args: [(
                        "survey-areas".to_string(),
                        serde_json::json!([[43.6087, -85.8104]]),
                    )]
                    .into_iter()
                    .collect(),
                }],
                extra_waypoint_devices: vec![],
                extra_continuous_devices: vec![],
                max_charge_cents: 100.0,
                max_duration_s: 10.0,
                flexible_schedule: true,
            },
        )
        .unwrap();

    let outcomes = androne.execute_orders(std::slice::from_ref(&order), 300.0).unwrap();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].completed);

    // Billing, VDR, and notifications all reflect the flight.
    assert!(androne.cloud.billing.bill("alice").energy_j > 0.0);
    assert!(androne.cloud.vdr.get(&order.vd_name).is_some());
    assert!(androne
        .cloud
        .notifications
        .iter()
        .any(|n| n.message.contains("complete")));
}

#[test]
fn vdr_save_resume_preserves_app_state() {
    let mut drone = Drone::boot(BASE, 7).unwrap();
    drone
        .deploy_vdrone("vd1", spec(vec![wp(50.0, 0.0, 30.0)]), &[manifest()])
        .unwrap();

    // The app saves lifecycle state (e.g. interrupted mid-mission).
    {
        let vd = drone.vdrones.get_mut("vd1").unwrap();
        let mut bundle = androne::android::Bundle::new();
        bundle.insert("frames-captured".into(), "117".into());
        vd.apps.save_instance_state("com.example.survey", bundle);
    }
    // Also write container-private data.
    drone
        .runtime
        .get_mut("vd1")
        .unwrap()
        .fs
        .write("/data/media/video0.mp4", "frames");

    let (archive, app_state) = drone.save_vdrone("vd1").unwrap();
    assert!(!drone.vdrones.contains_key("vd1"));
    assert!(archive.stored_bytes() > 0);

    // Resume on a *different* physical drone.
    let mut other = Drone::boot(BASE, 8).unwrap();
    other
        .deploy_from_archive(
            &archive,
            spec(vec![wp(50.0, 0.0, 30.0)]),
            &[manifest()],
            &app_state,
        )
        .unwrap();
    let vd = other.vdrones.get("vd1").unwrap();
    assert_eq!(
        vd.apps.restore_bundle("com.example.survey")["frames-captured"],
        "117"
    );
    assert_eq!(
        other
            .runtime
            .get("vd1")
            .unwrap()
            .fs
            .read("/data/media/video0.mp4")
            .unwrap(),
        bytes::Bytes::from("frames")
    );
}

#[test]
fn vdrone_app_reaches_camera_only_at_waypoint() {
    // The full stack check: Binder + device container + VDC policy.
    use androne::android::{svc_codes, svc_names};
    use androne::binder::{get_service, Parcel};
    use androne::container::DeviceNamespaceId;
    use androne::simkern::SchedPolicy;

    let mut drone = Drone::boot(BASE, 9).unwrap();
    drone
        .deploy_vdrone("vd1", spec(vec![wp(40.0, 0.0, 30.0)]), &[manifest()])
        .unwrap();
    let vd = drone.vdrones.get("vd1").unwrap();
    let container = vd.container;
    let euid = vd.apps.get("com.example.survey").unwrap().euid;

    // Spawn the app's process.
    let app_pid = {
        let mut k = drone.kernel.borrow_mut();
        k.tasks
            .spawn("survey-app", euid, container, SchedPolicy::DEFAULT)
            .unwrap()
    };
    drone
        .driver
        .open(app_pid, euid, container, DeviceNamespaceId(container.0));

    let cam = get_service(&mut drone.driver, app_pid, svc_names::CAMERA).unwrap();
    // Before the waypoint: denied by the VDC.
    assert!(drone
        .driver
        .transact(app_pid, cam, svc_codes::OP, Parcel::new())
        .is_err());

    // Simulate arrival.
    drone.vdc.borrow_mut().on_waypoint_arrived("vd1", 0);
    let frame = drone
        .driver
        .transact(app_pid, cam, svc_codes::OP, Parcel::new())
        .unwrap();
    assert!(frame.blob_at(4).is_ok(), "camera frame delivered");

    // Departure revokes again.
    drone.vdc.borrow_mut().on_waypoint_departed("vd1", 0);
    assert!(drone
        .driver
        .transact(app_pid, cam, svc_codes::OP, Parcel::new())
        .is_err());
}

#[test]
fn vdr_storage_scales_with_diffs_not_images() {
    // Paper Section 3: "each virtual drone container image consists
    // only of its differences from a base virtual drone image,
    // allowing for minimal storage requirements when running multiple
    // virtual drones and storing them offline."
    let mut drone = Drone::boot(BASE, 11).unwrap();
    let mut androne = Androne::new(BASE, 1, 11);
    let mut total_diffs = 0u64;
    for i in 1..=3 {
        let name = format!("vd{i}");
        drone
            .deploy_vdrone(&name, spec(vec![wp(40.0, 0.0, 30.0)]), &[])
            .unwrap();
        // Each virtual drone writes a differently sized private blob.
        drone
            .runtime
            .get_mut(&name)
            .unwrap()
            .fs
            .write("/data/out.bin", vec![0u8; i * 1000]);
        let (archive, app_state) = drone.save_vdrone(&name).unwrap();
        total_diffs += archive.stored_bytes();
        let stored_spec = spec(vec![wp(40.0, 0.0, 30.0)]);
        androne.cloud.vdr.store(androne::cloud::SavedVirtualDrone {
            name: name.clone(),
            owner: "user".into(),
            remaining_energy_j: stored_spec.energy_allotted,
            remaining_time_s: stored_spec.max_duration,
            waypoints_completed: 1,
            flights_flown: 1,
            spec: stored_spec,
            archive,
            app_state,
            reason: androne::cloud::SaveReason::Completed,
        });
    }
    assert_eq!(androne.cloud.vdr.stored_bytes(), total_diffs);
    // The diffs are small: far below even one 185 MB container image.
    assert!(androne.cloud.vdr.stored_bytes() < MIB);
}
