//! End-to-end SDK event delivery: an app's `WaypointListener`
//! receives the paper's Figure 8 callbacks as the flight progresses,
//! without the app polling the VDC itself.

use std::cell::RefCell;
use std::rc::Rc;

use androne::flight_exec::execute_flight;
use androne::hal::GeoPoint;
use androne::planner::{FlightPlan, Leg};
use androne::sdk::WaypointListener;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

/// A listener backed by shared state so the test can inspect it
/// after the boxed listener is registered.
#[derive(Default)]
struct SharedLog(Rc<RefCell<Vec<String>>>);

impl WaypointListener for SharedLog {
    fn waypoint_active(&mut self, _waypoint: WaypointSpec, index: usize) {
        self.0.borrow_mut().push(format!("active({index})"));
    }
    fn waypoint_inactive(&mut self, index: usize) {
        self.0.borrow_mut().push(format!("inactive({index})"));
    }
    fn low_energy_warning(&mut self, _remaining_j: f64) {
        self.0.borrow_mut().push("lowEnergy".into());
    }
    fn low_time_warning(&mut self, _remaining_s: f64) {
        self.0.borrow_mut().push("lowTime".into());
    }
    fn suspend_continuous_devices(&mut self) {
        self.0.borrow_mut().push("suspend".into());
    }
    fn resume_continuous_devices(&mut self) {
        self.0.borrow_mut().push("resume".into());
    }
}

fn spec(waypoints: Vec<WaypointSpec>, continuous: Vec<&str>) -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints,
        // Tight enough that the low-time warning fires within the
        // first waypoint's service window.
        max_duration: 7.0,
        energy_allotted: 40_000.0,
        continuous_devices: continuous.into_iter().map(String::from).collect(),
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec![],
        app_args: Default::default(),
    }
}

fn wp(north: f64, east: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: 35.0,
    }
}

#[test]
fn listener_receives_waypoint_cycle_during_flight() {
    let mut drone = Drone::boot(BASE, 81).unwrap();
    drone
        .deploy_vdrone("vd1", spec(vec![wp(60.0, 0.0)], vec![]), &[])
        .unwrap();
    let log = Rc::new(RefCell::new(Vec::new()));
    drone
        .vdrones
        .get_mut("vd1")
        .unwrap()
        .sdk
        .register_waypoint_listener(Box::new(SharedLog(log.clone())));

    let plan = FlightPlan {
        base: BASE,
        legs: vec![Leg {
            owner: "vd1".into(),
            position: BASE.offset_m(60.0, 0.0, 15.0),
            max_radius_m: 35.0,
            service_energy_j: 40_000.0,
            service_time_s: 6.0,
            eta_s: 0.0,
        }],
        estimated_duration_s: 120.0,
        estimated_energy_j: 50_000.0,
    };
    let outcome = execute_flight(&mut drone, plan, 240.0, None);
    assert!(outcome.completed);

    let log = log.borrow();
    assert!(
        log.contains(&"active(0)".to_string()),
        "waypointActive delivered: {log:?}"
    );
    assert!(
        log.contains(&"inactive(0)".to_string()),
        "waypointInactive delivered: {log:?}"
    );
    // The 7 s time allotment drains during the 6 s service window;
    // the low-time warning fires before the window closes.
    assert!(
        log.contains(&"lowTime".to_string()),
        "lowTimeWarning delivered: {log:?}"
    );
    let active_at = log.iter().position(|e| e == "active(0)").unwrap();
    let inactive_at = log.iter().position(|e| e == "inactive(0)").unwrap();
    assert!(active_at < inactive_at, "callbacks arrive in order");
}

#[test]
fn continuous_tenant_sees_suspend_resume_around_foreign_waypoint() {
    let mut drone = Drone::boot(BASE, 82).unwrap();
    // vd-cont holds continuous GPS across two waypoints; vd-other's
    // waypoint is visited in between.
    drone
        .deploy_vdrone(
            "vd-cont",
            spec(vec![wp(50.0, 0.0), wp(50.0, 80.0)], vec!["gps"]),
            &[],
        )
        .unwrap();
    drone
        .deploy_vdrone("vd-other", spec(vec![wp(50.0, 40.0)], vec![]), &[])
        .unwrap();
    let log = Rc::new(RefCell::new(Vec::new()));
    drone
        .vdrones
        .get_mut("vd-cont")
        .unwrap()
        .sdk
        .register_waypoint_listener(Box::new(SharedLog(log.clone())));

    let mk_leg = |owner: &str, north: f64, east: f64| Leg {
        owner: owner.into(),
        position: BASE.offset_m(north, east, 15.0),
        max_radius_m: 35.0,
        service_energy_j: 40_000.0,
        service_time_s: 4.0,
        eta_s: 0.0,
    };
    let plan = FlightPlan {
        base: BASE,
        legs: vec![
            mk_leg("vd-cont", 50.0, 0.0),
            mk_leg("vd-other", 50.0, 40.0),
            mk_leg("vd-cont", 50.0, 80.0),
        ],
        estimated_duration_s: 200.0,
        estimated_energy_j: 100_000.0,
    };
    let outcome = execute_flight(&mut drone, plan, 300.0, None);
    assert!(outcome.completed, "{:?}", outcome.log);

    let log = log.borrow();
    let suspend = log.iter().position(|e| e == "suspend");
    let resume = log.iter().position(|e| e == "resume");
    assert!(suspend.is_some(), "suspend delivered: {log:?}");
    assert!(resume.is_some(), "resume delivered: {log:?}");
    assert!(suspend < resume, "suspend precedes resume: {log:?}");
    // And both of vd-cont's own waypoints cycled.
    assert!(log.contains(&"active(0)".to_string()));
    assert!(log.contains(&"active(1)".to_string()));
}
