//! The seeded chaos gate.
//!
//! Runs whole flights under generated fault plans and holds four
//! invariants on every one:
//!
//! 1. **Containment** — the vehicle never strays outside a hard
//!    bound around the base, faults or not.
//! 2. **Accounting** — energy billed to virtual drones never exceeds
//!    energy drawn from the battery, and the VDC's allotment records
//!    agree with the flight loop's billing.
//! 3. **Defined end** — every flight terminates in a defined
//!    [`EndReason`] within the safety cap.
//! 4. **Determinism** — the same seed and fault plan replayed twice
//!    produce bit-identical outcomes and state-hash traces.
//!
//! The gate's breadth is controlled by `CHAOS_SEEDS` (default 4 for
//! fast debug runs; `scripts/chaos.sh` runs 24 in release). The
//! `empty_fault_plan_is_bit_identical_to_baseline` test pins the
//! whole injector plumbing to the pre-fault-kernel baseline: a flight
//! observed by an injector with an empty plan must reproduce the
//! exact bits captured before the fault kernel existed.

use androne::hal::GeoPoint;
use androne::planner::{FlightPlan, Leg};
use androne::sanitizer::{first_divergence, TickHashes, Trace};
use androne::simkern::{BurstLoss, FaultKind, FaultPlan, SensorChannel};
use androne::vdc::{VirtualDroneSpec, WatchdogConfig, WaypointSpec};
use androne::{execute_flight_probed, Drone, EndReason, FaultInjector, FlightLog, FnProbe, ProbeStack};
use rand::RngCore;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const SEED: u64 = 1337;
/// Hard containment bound for invariant 1, meters from base. The
/// plan's farthest leg is 60 m out; no injected fault may carry the
/// vehicle anywhere near this.
const HARD_FENCE_M: f64 = 500.0;
const MAX_SIM_S: f64 = 240.0;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn spec(waypoints: Vec<WaypointSpec>) -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints,
        max_duration: 120.0,
        energy_allotted: 40_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into(), "flight-control".into()],
        apps: vec!["com.example.survey.apk".into()],
        app_args: Default::default(),
    }
}

fn plan() -> FlightPlan {
    FlightPlan {
        base: BASE,
        legs: vec![Leg {
            owner: "vd1".into(),
            position: BASE.offset_m(60.0, 0.0, 15.0),
            max_radius_m: 40.0,
            service_energy_j: 10_000.0,
            service_time_s: 8.0,
            eta_s: 20.0,
        }],
        estimated_duration_s: 120.0,
        estimated_energy_j: 40_000.0,
    }
}

/// Everything one chaos flight produces that the invariants inspect.
struct ChaosRun {
    completed: bool,
    end_reason: EndReason,
    duration_s: f64,
    total_energy_j: f64,
    vd1_energy_j: f64,
    log: Vec<FlightLog>,
    trace: Trace,
    actions: Vec<String>,
    max_base_distance_m: f64,
    /// `allotment - remaining` from the VDC record after flight.
    vd1_billed_j: f64,
    final_container: u32,
    pending_restarts: usize,
}

/// Boots a drone at `seed`, deploys `vd1`, and flies the standard
/// plan under `faults`, recording the sanitizer trace and invariant
/// inputs along the way.
fn run_with_faults(seed: u64, faults: FaultPlan) -> ChaosRun {
    run_with_faults_configured(seed, faults, None)
}

fn run_with_faults_configured(
    seed: u64,
    faults: FaultPlan,
    watchdog: Option<WatchdogConfig>,
) -> ChaosRun {
    let mut drone = Drone::boot(BASE, seed).expect("boot");
    drone
        .deploy_vdrone("vd1", spec(vec![wp(60.0, 0.0, 40.0)]), &[])
        .expect("deploy");
    drone.vdc.borrow_mut().set_watchdog(watchdog);
    let mut injector = FaultInjector::new(faults);
    let mut trace = Trace::default();
    let mut max_base_distance_m: f64 = 0.0;
    let outcome = {
        let mut recorder = FnProbe::new(|tick, drone: &mut Drone| {
            trace.ticks.push(TickHashes {
                tick,
                components: drone.component_hashes(),
            });
            let d = drone.sitl.position().distance_m(&BASE);
            if d > max_base_distance_m {
                max_base_distance_m = d;
            }
        });
        let mut probes = ProbeStack::new();
        probes.push(&mut injector);
        probes.push(&mut recorder);
        execute_flight_probed(&mut drone, plan(), MAX_SIM_S, None, &mut probes)
    };
    let (vd1_billed_j, final_container) = {
        let vdc = drone.vdc.borrow();
        let rec = vdc.record("vd1").expect("record survives the flight");
        (
            rec.spec.energy_allotted - rec.energy_remaining_j(),
            rec.container.0,
        )
    };
    ChaosRun {
        completed: outcome.completed,
        end_reason: outcome.end_reason,
        duration_s: outcome.duration_s,
        total_energy_j: outcome.total_energy_j,
        vd1_energy_j: outcome.vdrone_energy_j.get("vd1").copied().unwrap_or(0.0),
        log: outcome.log,
        trace,
        actions: injector.actions().to_vec(),
        max_base_distance_m,
        vd1_billed_j,
        final_container,
        pending_restarts: drone.pending_restarts.len(),
    }
}

/// Invariants 1–3 on a single run.
fn assert_invariants(run: &ChaosRun, label: &str) {
    // 1. Containment.
    assert!(
        run.max_base_distance_m <= HARD_FENCE_M,
        "{label}: vehicle strayed {:.1} m from base (bound {HARD_FENCE_M} m); actions: {:?}",
        run.max_base_distance_m,
        run.actions
    );
    // 2. Accounting: billed energy never exceeds energy drawn, and
    // the VDC allotment record agrees with the flight loop's billing
    // (up to the record's clamp at exhaustion).
    assert!(
        run.vd1_energy_j <= run.total_energy_j + 1e-6,
        "{label}: billed {:.1} J > drawn {:.1} J",
        run.vd1_energy_j,
        run.total_energy_j
    );
    let expected_billed = run.vd1_energy_j.min(40_000.0);
    assert!(
        (run.vd1_billed_j - expected_billed).abs() < 1e-6,
        "{label}: VDC record billed {:.3} J, flight loop billed {:.3} J",
        run.vd1_billed_j,
        expected_billed
    );
    assert!(run.total_energy_j >= 0.0, "{label}: negative energy");
    // 3. Defined end.
    assert!(
        run.duration_s <= MAX_SIM_S,
        "{label}: overran the safety cap"
    );
    if run.completed {
        assert_eq!(
            run.end_reason,
            EndReason::Completed,
            "{label}: completed flight must end Completed"
        );
    } else {
        assert_ne!(
            run.end_reason,
            EndReason::Completed,
            "{label}: incomplete flight may not claim Completed"
        );
    }
    if run.end_reason != EndReason::TimeExhausted {
        assert!(
            run.log.iter().any(|l| matches!(l, FlightLog::Landed)),
            "{label}: flight ended ({:?}) without landing; log: {:?}",
            run.end_reason,
            run.log
        );
    }
}

/// Invariant 4 on a pair of same-seed runs.
fn assert_dual_run_identity(a: &ChaosRun, b: &ChaosRun, label: &str) {
    if let Some(d) = first_divergence(&a.trace, &b.trace) {
        panic!("{label}: dual-run divergence:\n{d}\nactions: {:?}", a.actions);
    }
    assert_eq!(
        a.duration_s.to_bits(),
        b.duration_s.to_bits(),
        "{label}: duration drift"
    );
    assert_eq!(
        a.total_energy_j.to_bits(),
        b.total_energy_j.to_bits(),
        "{label}: energy drift"
    );
    assert_eq!(
        a.vd1_energy_j.to_bits(),
        b.vd1_energy_j.to_bits(),
        "{label}: billing drift"
    );
    assert_eq!(a.log, b.log, "{label}: log drift");
    assert_eq!(a.end_reason, b.end_reason, "{label}: end-reason drift");
    assert_eq!(a.actions, b.actions, "{label}: injector action drift");
}

/// An injector with an empty plan must be a perfect no-op: the flight
/// reproduces, bit for bit, the baseline captured before the fault
/// kernel existed (same seed, same plan, pre-PR code).
#[test]
fn empty_fault_plan_is_bit_identical_to_baseline() {
    let mut drone = Drone::boot(BASE, SEED).expect("boot");
    drone
        .deploy_vdrone("vd1", spec(vec![wp(60.0, 0.0, 40.0)]), &[])
        .expect("deploy");
    let mut injector = FaultInjector::new(FaultPlan::empty());
    let mut trace = Trace::default();
    let outcome = {
        let mut recorder = FnProbe::new(|tick, drone: &mut Drone| {
            trace.ticks.push(TickHashes {
                tick,
                components: drone.component_hashes(),
            });
        });
        let mut probes = ProbeStack::new();
        probes.push(&mut injector);
        probes.push(&mut recorder);
        execute_flight_probed(&mut drone, plan(), MAX_SIM_S, None, &mut probes)
    };
    // Captured from the seed revision (pre-fault-kernel) at SEED=1337.
    assert!(outcome.completed);
    assert_eq!(outcome.end_reason, EndReason::Completed);
    assert_eq!(outcome.duration_s.to_bits(), 0x4051fb3333333333);
    assert_eq!(outcome.total_energy_j.to_bits(), 0x40c711038eb086ac);
    assert_eq!(outcome.vdrone_energy_j["vd1"].to_bits(), 0x40959f2c0ceda0e8);
    assert_eq!(outcome.log.len(), 4);
    assert_eq!(trace.ticks.len(), 72);
    let pos = drone.sitl.position();
    assert_eq!(pos.latitude.to_bits(), 0x4045cde1757bbf80);
    assert_eq!(pos.longitude.to_bits(), 0xc05573e7e60be039);
    assert_eq!(pos.altitude.to_bits(), 0x0);
    // The RNG streams drew exactly what they drew pre-PR: the fault
    // kernel consumed nothing.
    assert_eq!(
        drone.board.borrow_mut().rng.next_u64(),
        10880446920844866505
    );
    assert_eq!(drone.kernel.borrow_mut().rng().next_u64(), 8156589452691600790);
    assert!(injector.actions().is_empty());
}

/// The gate proper: generated fault plans, every invariant, dual-run.
#[test]
fn chaos_gate_holds_invariants_across_seeded_plans() {
    let n: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    for i in 0..n {
        let seed = 0xC4A0_5EED ^ (i * 0x9E37_79B9);
        let faults = FaultPlan::generate(seed, 60);
        let label = format!("chaos seed {seed:#x} ({} faults)", faults.events.len());
        let a = run_with_faults(seed, faults.clone());
        assert_invariants(&a, &label);
        let b = run_with_faults(seed, faults);
        assert_dual_run_identity(&a, &b, &label);
    }
}

#[test]
fn sensor_dropout_imu_is_survivable() {
    let run = run_with_faults(
        SEED,
        FaultPlan::single(
            FaultKind::SensorDropout {
                channel: SensorChannel::Imu,
            },
            6,
            10,
        ),
    );
    assert_invariants(&run, "imu dropout");
    assert!(run.actions.iter().any(|a| a.contains("arm dropout imu")));
    assert!(run.actions.iter().any(|a| a.contains("disarm dropout imu")));
}

#[test]
fn sensor_stuck_baro_is_survivable() {
    let run = run_with_faults(
        SEED,
        FaultPlan::single(
            FaultKind::SensorStuck {
                channel: SensorChannel::Baro,
            },
            6,
            14,
        ),
    );
    assert_invariants(&run, "baro stuck");
    assert!(run.actions.iter().any(|a| a.contains("arm stuck baro")));
}

#[test]
fn sensor_bias_gps_is_survivable() {
    let run = run_with_faults(
        SEED,
        FaultPlan::single(
            FaultKind::SensorBias {
                channel: SensorChannel::Gps,
                bias: 1.5,
            },
            6,
            16,
        ),
    );
    assert_invariants(&run, "gps bias");
    assert!(run.actions.iter().any(|a| a.contains("bias(1.500) gps")));
}

#[test]
fn gps_loss_dead_reckons_through_the_outage() {
    let run = run_with_faults(SEED, FaultPlan::single(FaultKind::GpsLoss, 6, 14));
    assert_invariants(&run, "gps loss");
    // Dead reckoning on IMU + baro carries the estimator through an
    // 8 s outage well enough to finish the mission.
    assert!(
        run.completed,
        "flight should complete despite the outage; log: {:?}",
        run.log
    );
}

#[test]
fn link_partition_walks_the_failsafe_ladder_home() {
    // Partition from t=5 s past the end of any plausible flight: the
    // ladder must loiter, give up, return to launch, and land.
    let run = run_with_faults(SEED, FaultPlan::single(FaultKind::LinkPartition, 5, 1_000));
    assert_invariants(&run, "link partition");
    assert_eq!(run.end_reason, EndReason::LinkLost);
    assert!(!run.completed);
    assert!(
        run.duration_s < MAX_SIM_S,
        "failsafe landed well before the cap"
    );
}

#[test]
fn link_partition_that_heals_lets_the_flight_finish() {
    // A 4 s partition ends before the RTL rung: the ladder loiters,
    // the link returns, the pilot resumes and completes the plan.
    let run = run_with_faults(SEED, FaultPlan::single(FaultKind::LinkPartition, 5, 9));
    assert_invariants(&run, "healing partition");
    assert!(
        run.completed,
        "flight resumes after a short partition; log: {:?}",
        run.log
    );
}

#[test]
fn link_burst_loss_is_survivable() {
    let run = run_with_faults(
        SEED,
        FaultPlan::single(
            FaultKind::LinkBurstLoss {
                burst: BurstLoss::cellular_fade(),
            },
            4,
            40,
        ),
    );
    assert_invariants(&run, "burst loss");
    assert!(run.actions.iter().any(|a| a.contains("arm link-burst-loss")));
}

#[test]
fn binder_transaction_failures_are_survivable() {
    let run = run_with_faults(
        SEED,
        FaultPlan::single(FaultKind::BinderFailure { period: 3 }, 5, 40),
    );
    assert_invariants(&run, "binder failure");
    assert!(run.actions.iter().any(|a| a.contains("arm binder-failure/3")));
}

#[test]
fn binder_timeouts_are_survivable() {
    let run = run_with_faults(
        SEED,
        FaultPlan::single(FaultKind::BinderTimeout { period: 4 }, 5, 40),
    );
    assert_invariants(&run, "binder timeout");
    assert!(run.actions.iter().any(|a| a.contains("arm binder-timeout/4")));
}

#[test]
fn container_crash_and_supervised_restart_preserve_the_allotment() {
    let baseline = run_with_faults(SEED, FaultPlan::empty());
    let run = run_with_faults(SEED, FaultPlan::single(FaultKind::ContainerCrash { target: None }, 6, 12));
    assert_invariants(&run, "container crash");
    assert!(run.actions.iter().any(|a| a.contains("arm container-crash vd1")));
    assert!(
        run.actions
            .iter()
            .any(|a| a.contains("disarm container-crash vd1")),
        "supervised restart ran: {:?}",
        run.actions
    );
    assert_eq!(run.pending_restarts, 0, "no orphaned checkpoints");
    assert_ne!(
        run.final_container, baseline.final_container,
        "restored container has a fresh id"
    );
    assert!(
        run.completed,
        "the restarted virtual drone's flight still completes; log: {:?}",
        run.log
    );
}

#[test]
fn battery_degradation_draws_more_energy_for_the_same_flight() {
    let nominal = run_with_faults(SEED, FaultPlan::empty());
    let degraded = run_with_faults(
        SEED,
        FaultPlan::single(FaultKind::BatteryDegradation { health: 0.7 }, 4, 1_000),
    );
    assert_invariants(&degraded, "battery degradation");
    assert!(
        degraded.total_energy_j > nominal.total_energy_j * 1.1,
        "a 70%-health pack draws visibly more: {:.0} J vs {:.0} J",
        degraded.total_energy_j,
        nominal.total_energy_j
    );
}

#[test]
fn watchdog_revokes_a_stalled_virtual_drone() {
    // vd1 has no app aboard, so its VFC forwards nothing at the
    // waypoint: with a 3 s stall timeout the watchdog revokes it
    // before the pilot's 8 s service budget would have released it.
    let run = run_with_faults_configured(
        SEED,
        FaultPlan::empty(),
        Some(WatchdogConfig {
            stall_timeout_s: 3,
            max_denials: 50,
            progress_timeout_s: None,
        }),
    );
    assert_invariants(&run, "watchdog");
    assert!(
        run.log.iter().any(|l| matches!(
            l,
            FlightLog::WaypointEnd {
                reason: EndReason::WatchdogRevoked,
                ..
            }
        )),
        "watchdog revocation shows in the log: {:?}",
        run.log
    );
}
