//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this stand-in routes all
//! (de)serialization through a single JSON-like [`Value`] tree, which
//! is all the workspace needs. There is no derive macro: the two
//! types that previously derived `Serialize`/`Deserialize` implement
//! the traits by hand (see `androne-vdc`'s spec module).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; integers up to 2^53 are
    /// exact, matching the `float_roundtrip` behavior we need).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the object field `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// A (de)serialization error message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes self into a value tree.
    fn serialize_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes self from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
