//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real crate's API that this workspace
//! uses: [`Bytes`], an immutable, cheaply cloneable (reference
//! counted) byte buffer. Cloning shares the underlying allocation,
//! which is what the Binder parcel and container image layers rely on
//! for zero-copy blob passing.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. `clone()` is O(1)
/// and shares storage.
#[derive(Clone, Default, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static slice.
    ///
    /// The stand-in copies once into shared storage instead of
    /// borrowing (`'static` data is small in this workspace); clones
    /// still share.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Returns a sub-buffer covering `range` (copies the range).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes {
            data: Arc::from(&self.data[range]),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: Arc::from(s.into_bytes()),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes {
            data: Arc::from(s.as_bytes()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes { data: Arc::from(b) }
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(b: &'static [u8; N]) -> Self {
        Bytes {
            data: Arc::from(&b[..]),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn constructors_and_eq() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(vec![97, 98, 99]));
        assert_eq!(Bytes::from("abc").len(), 3);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xyz"), b"xyz"[..].to_vec());
    }

    #[test]
    fn debug_is_readable() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x00")), "b\"a\\x00\"");
    }
}
