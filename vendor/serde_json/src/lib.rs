//! Offline stand-in for `serde_json`.
//!
//! Parses and prints JSON against the [`serde::Value`] tree, and
//! provides the [`json!`] constructor macro. Number printing uses
//! Rust's shortest-round-trip float formatting, so `from_str(&
//! to_string(v))` reproduces every f64 exactly (the behavior the
//! real crate's `float_roundtrip` feature guarantees).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize_value(&value)
}

/// Converts any [`Serialize`] type into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports `null`, object literals with string-literal keys, array
/// literals whose elements are expressions or nested objects, and
/// arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_object!(map, $($body)*);
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).expect("json! element") ),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value")
    };
}

/// Internal: fills an object map for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ($map:ident, ) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_object!($map, $($($rest)*)?);
    };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(map) => {
            let entries: Vec<_> = map.iter().collect();
            write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's Display for f64 is shortest-round-trip; integral
        // values print without a fraction, which is still valid JSON.
        out.push_str(&n.to_string());
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct ParserState<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = ParserState {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl ParserState<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_literal("null", Value::Null),
            b't' => self.eat_literal("true", Value::Bool(true)),
            b'f' => self.eat_literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character '{}' at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' but found '{}' at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' but found '{}' at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let bytes = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8 sequence"))?;
                    let s =
                        std::str::from_utf8(bytes).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_nested_structures() {
        let v = json!({
            "name": "vd1",
            "radius": 30.5,
            "tags": ["a", "b"],
            "nested": { "ok": true, "n": null }
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let compact: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, compact);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [43.6084298, -85.8110359, 0.1, 1e300, -2.5e-8] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x, back, "{text}");
        }
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!("s"), Value::String("s".into()));
        assert_eq!(
            json!([[1.0, 2.0]]),
            Value::Array(vec![Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.0)
            ])])
        );
        let m: BTreeMap<String, Value> = [("k".to_string(), json!(3.0))].into_iter().collect();
        assert_eq!(json!({ "k": 3.0 }), Value::Object(m));
    }

    #[test]
    fn bad_json_is_rejected() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("{} extra").is_err());
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let v = Value::String("a\"b\\c\nd\tß\u{1F680}".to_string());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
