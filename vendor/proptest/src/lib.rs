//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] macros, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_filter`, `any::<T>()`, numeric-range and regex-like string
//! strategies, `collection::vec`, and `sample::Index`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (reproducible across runs), there is
//! **no shrinking** (failures report the exact generated inputs
//! instead), and regex strategies support only character classes
//! with `{m,n}` counts — the only forms used here.

/// A failed property case: the failure message.
pub type TestCaseError = String;

/// Number of cases per property, `PROPTEST_CASES` or 64.
pub fn default_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Runs `f` for [`default_cases`] deterministic seeds, panicking on
/// the first failure with the generated inputs in the message.
pub fn run_proptest(
    name: &str,
    f: impl Fn(&mut test_runner::TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name.as_bytes());
    for case in 0..default_cases() {
        let seed = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = test_runner::TestRng::new(seed);
        if let Err(e) = f(&mut rng) {
            panic!("proptest '{name}' failed at case {case} (seed {seed:#x}):\n    {e}");
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic random source handed to strategies.
pub mod test_runner {
    /// SplitMix64-based generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, bound).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// The strategy abstraction: how to generate one input value.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Generates values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, retrying (bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }

        /// Type-erases the strategy for heterogeneous unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Object-safe strategy view used by [`BoxedStrategy`].
    trait ErasedStrategy<T> {
        fn erased_new_value(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn ErasedStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.erased_new_value(rng)
        }
    }

    /// Uniform choice among type-erased strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `variants` (must be non-empty).
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len());
            self.variants[i].new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// Regex-like string strategy: a sequence of literal chars,
    /// escapes, and `[...]` classes, each optionally repeated by
    /// `{m,n}` / `{n}`.
    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class, an escape, or a literal.
            let choices: Vec<(char, char)> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed character class")
                        + i;
                    let class = parse_class(&chars[i + 1..close]);
                    i = close + 1;
                    class
                }
                '\\' => {
                    let c = unescape(chars[i + 1]);
                    i += 2;
                    vec![(c, c)]
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            // Optional quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("bad quantifier"),
                        n.parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(sample_class(&choices, rng));
            }
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    fn parse_class(body: &[char]) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let lo = if body[i] == '\\' {
                i += 1;
                unescape(body[i])
            } else {
                body[i]
            };
            if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
                let hi = body[i + 2];
                ranges.push((lo, hi));
                i += 3;
            } else {
                ranges.push((lo, lo));
                i += 1;
            }
        }
        ranges
    }

    fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
        let mut pick = (rng.next_u64() % u64::from(total)) as u32;
        for &(lo, hi) in ranges {
            let size = hi as u32 - lo as u32 + 1;
            if pick < size {
                return char::from_u32(lo as u32 + pick).expect("class char");
            }
            pick -= size;
        }
        unreachable!("sample_class exhausted ranges")
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Samples one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Raw bit patterns: exercises subnormals, infinities and
            // NaNs; filter with prop_filter where finiteness matters.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `prop::sample` support.
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A position drawn uniformly from `[0, 1)`, scaled on demand to
    /// index any non-empty slice.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(f64);

    impl Index {
        /// Maps this position into `0..len` (`len` must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.unit_f64())
        }
    }
}

/// The `proptest::prelude` glob import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `#[test] fn name(arg in strategy,
/// ...) { body }` runs [`default_cases`] times with fresh inputs.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                let strategies = ( $( $strat, )+ );
                $crate::run_proptest(
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        #[allow(non_snake_case)]
                        let ( $( ref $arg, )+ ) = strategies;
                        $(
                            let $arg = $crate::strategy::Strategy::new_value($arg, rng);
                        )+
                        let inputs = format!(
                            concat!($( stringify!($arg), " = {:?}; " ),+),
                            $( &$arg ),+
                        );
                        #[allow(unused_mut)]
                        let mut case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        };
                        case().map_err(|e| format!("{e}\n    inputs: {inputs}"))
                    },
                );
            }
        )+
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($variant:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($variant) ),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                    stringify!($left), stringify!($right)),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {}: {}\n  left: {l:?}\n right: {r:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+)),
            );
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(
                format!("assertion failed: {} != {}\n  both: {l:?}",
                    stringify!($left), stringify!($right)),
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            xs in prop::collection::vec(0u8..10, 1..20),
            f in -2.0f64..2.0,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn string_patterns_match_their_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_map_and_filter_compose(
            v in prop_oneof![
                (0u32..50).prop_map(|x| x * 2),
                (100u32..150).prop_filter("even", |x| x % 2 == 0),
            ]
        ) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 150);
        }

        #[test]
        fn sample_index_is_in_range(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        crate::run_proptest("always_fails", |_| Err("boom".to_string()));
    }
}
