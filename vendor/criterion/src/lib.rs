//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `Bencher` API surface and the
//! `criterion_group!` / `criterion_main!` macros used by this
//! workspace's benches. Measurement is simple wall-clock sampling:
//! each sample times a batch of iterations sized to run for roughly
//! a millisecond, and the median / min / max across samples is
//! reported. No plotting, no statistics beyond that — enough for
//! regression *trajectories*, not publication-grade confidence
//! intervals.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: names benches and collects samples.
pub struct Criterion {
    sample_size: usize,
    /// (name, median ns/iter) for every bench run so far.
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: grow the batch until one batch takes ~1 ms.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(1) || b.iters >= (1 << 24) {
                break;
            }
            b.iters *= 8;
        }

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                b.elapsed = Duration::ZERO;
                f(&mut b);
                b.elapsed.as_nanos() as f64 / b.iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        self.results.push((name.to_string(), median));
        self
    }

    /// Median ns/iter results collected so far.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// Times the closure handed to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` over the calibrated batch size.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a bench group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_sane_median() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        let (name, ns) = &c.results()[0];
        assert_eq!(name, "noop_sum");
        assert!(*ns > 0.0 && *ns < 1e7, "{ns}");
    }
}
