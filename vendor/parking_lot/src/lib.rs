//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The API difference this covers: `parking_lot` guards are returned
//! directly from `lock()` / `read()` / `write()` with no poisoning
//! `Result`. Poisoned std locks are recovered transparently (the
//! simulation kernel treats a panicked holder as a fatal test failure
//! anyway).

use std::sync;

/// A mutex whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// An RAII mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates an RwLock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
