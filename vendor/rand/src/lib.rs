//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset used by this workspace: `SmallRng` seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, statistically solid for simulation noise, and explicitly
//! *not* cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core uniform-bits generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible uniformly from raw random bits (`rng.gen()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's full domain
    /// (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0..4.0);
            assert!((-2.0..4.0).contains(&f));
            let u: u8 = rng.gen_range(1u8..=255);
            assert!(u >= 1);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
