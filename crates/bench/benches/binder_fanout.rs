//! Perf-regression harness for the zero-copy hot paths (ISSUE 1):
//! Binder fast-path transactions, shared telemetry fan-out, and the
//! streaming codec.
//!
//! The seed implementations these paths replaced (deep-clone
//! parcels, two-pass `BTreeMap` handle translation, `Vec::drain`
//! codec buffering, per-client per-message telemetry deep clones) no
//! longer exist in the tree, so each baseline is reconstructed here
//! from the seed's algorithm:
//!
//! - `echo_roundtrip/seed_replica` runs the *same* driver dispatch
//!   as the optimized bench and adds exactly the per-hop value-vector
//!   copies and object-reference scans the seed's `translate_parcel`
//!   performed, plus a service-side deep clone in place of the COW
//!   `Rc` bump. The ratio therefore isolates the copying the fast
//!   path removed (the seed's slower `BTreeMap` handle resolution is
//!   *not* charged to the baseline — the ratio is conservative).
//! - `codec_decode/drain` is a field-for-field replica of the seed
//!   parser whose consumed bytes were removed with `buf.drain(..)`,
//!   memmoving the whole tail once per frame (O(n²) per burst).
//! - `fanout/deep_n*` replicates the seed's `MavProxy::step` loop:
//!   every client gets `vfc.transform_telemetry(msg, pos)` (an owned
//!   deep clone per message) pushed into a per-client outbox held in
//!   the same `BTreeMap<String, _>` shape the proxy uses.
//!
//! Results are written to `BENCH_binder_fanout.json` (override with
//! `ANDRONE_BENCH_OUT`) including the speedup ratios the acceptance
//! criteria gate on: ≥2× on the Binder echo round-trip and ≥3× on
//! the 8-client fan-out.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use androne::binder::{
    add_service, get_service, BinderDriver, BinderError, BinderService, PValue, Parcel,
    ServiceManager, TransactionContext,
};
use androne::container::DeviceNamespaceId;
use androne::flight::{CommandWhitelist, Geofence, MavProxy, Vfc};
use androne::hal::GeoPoint;
use androne::mavlink::crc::{accumulate, CRC_INIT};
use androne::mavlink::{FlightMode, Frame, MavError, Message, Parser, STX};
use androne::simkern::{ContainerId, Euid, Pid};
use criterion::{black_box, Criterion};
use serde_json::Value;

// ---------------------------------------------------------------
// Binder: echo round-trip and parcel clone/translate
// ---------------------------------------------------------------

/// Optimized echo: `data.clone()` is an `Rc` bump under COW.
struct Echo;

impl BinderService for Echo {
    fn on_transact(
        &mut self,
        _code: u32,
        data: &Parcel,
        _ctx: &TransactionContext,
        _driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        Ok(data.clone())
    }
}

/// Seed-replica echo: rebuilds the reply value by value, which is
/// what `Parcel::clone` cost before the storage became shared.
struct DeepEcho;

impl BinderService for DeepEcho {
    fn on_transact(
        &mut self,
        _code: u32,
        data: &Parcel,
        _ctx: &TransactionContext,
        _driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        Ok(deep_copy(data))
    }
}

/// A sink for translate benches: the reply carries no payload, so
/// the measured work is request-side translation plus dispatch.
struct Sink;

impl BinderService for Sink {
    fn on_transact(
        &mut self,
        _code: u32,
        _data: &Parcel,
        _ctx: &TransactionContext,
        _driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        Ok(Parcel::new())
    }
}

/// Per-value parcel copy, as the seed's `Vec<PValue>` clone did it.
fn deep_copy(p: &Parcel) -> Parcel {
    let mut out = Parcel::new();
    for v in p.values() {
        match v {
            PValue::I32(x) => out.push_i32(*x),
            PValue::I64(x) => out.push_i64(*x),
            PValue::F64(x) => out.push_f64(*x),
            PValue::Str(s) => out.push_str(s.clone()),
            PValue::Blob(b) => out.push_blob(b.clone()),
            PValue::Binder(h) => out.push_binder(*h),
            PValue::Fd(fd) => out.push_fd(*fd),
        };
    }
    out
}

/// The seed's per-hop translation: copy the value vector, then scan
/// it for object references (two passes: collect, then rewrite).
fn seed_translate_hop(p: &Parcel) -> Parcel {
    let copied = deep_copy(p);
    let objrefs: Vec<(usize, u32)> = copied
        .values()
        .iter()
        .enumerate()
        .filter_map(|(i, v)| match v {
            PValue::Binder(h) | PValue::Fd(h) => Some((i, *h)),
            _ => None,
        })
        .collect();
    black_box(objrefs);
    copied
}

/// A realistic camera-service request: code, service name, capture
/// timestamp, and a small parameter blob.
fn make_request() -> Parcel {
    let mut p = Parcel::new();
    p.push_i32(7)
        .push_str("camera")
        .push_i64(1_234_567_890)
        .push_blob(vec![0u8; 64]);
    p
}

struct BinderFixture {
    driver: BinderDriver,
    client: Pid,
    echo: u32,
    deep_echo: u32,
    sink: u32,
    /// Handles the client may embed in parcels (objref translation).
    extra: [u32; 4],
}

fn binder_fixture() -> BinderFixture {
    let mut driver = BinderDriver::new();
    let server = Pid(1);
    let client = Pid(2);
    driver.open(server, Euid(1000), ContainerId(1), DeviceNamespaceId(1));
    driver.open(client, Euid(10_000), ContainerId(1), DeviceNamespaceId(1));
    let sm = ServiceManager::new(server);
    let sm_handle = driver
        .create_node(server, Rc::new(RefCell::new(sm)))
        .unwrap();
    driver.set_context_manager(server, sm_handle).unwrap();
    for (name, svc) in [
        ("echo", Rc::new(RefCell::new(Echo)) as Rc<RefCell<dyn BinderService>>),
        ("deep_echo", Rc::new(RefCell::new(DeepEcho))),
        ("sink", Rc::new(RefCell::new(Sink))),
    ] {
        let node = driver.create_node(server, svc).unwrap();
        add_service(&mut driver, server, name, node).unwrap();
    }
    let echo = get_service(&mut driver, client, "echo").unwrap();
    let deep_echo = get_service(&mut driver, client, "deep_echo").unwrap();
    let sink = get_service(&mut driver, client, "sink").unwrap();
    // Extra client-side handles so translate benches can embed
    // object references in parcels.
    let mut extra = [0u32; 4];
    for slot in &mut extra {
        let node = driver
            .create_node(server, Rc::new(RefCell::new(Sink)))
            .unwrap();
        let name = format!("extra{node:?}");
        add_service(&mut driver, server, &name, node).unwrap();
        *slot = get_service(&mut driver, client, &name).unwrap();
    }
    BinderFixture {
        driver,
        client,
        echo,
        deep_echo,
        sink,
        extra,
    }
}

fn bench_binder(c: &mut Criterion) {
    let mut fx = binder_fixture();
    let client = fx.client;
    let (echo, deep_echo, sink, extra) = (fx.echo, fx.deep_echo, fx.sink, fx.extra);

    // Optimized round-trip: scalar fast path skips translation; the
    // service reply is a COW Rc bump.
    c.bench_function("echo_roundtrip/optimized", |b| {
        b.iter(|| {
            let p = make_request();
            black_box(fx.driver.transact(client, echo, 1, p).unwrap())
        })
    });

    // Seed replica: same dispatch, plus the per-hop copies and scans
    // the seed's translate_parcel performed (request hop + reply
    // hop) and a deep clone in the service.
    c.bench_function("echo_roundtrip/seed_replica", |b| {
        b.iter(|| {
            let p = seed_translate_hop(&make_request());
            let reply = fx.driver.transact(client, deep_echo, 1, p).unwrap();
            black_box(seed_translate_hop(&reply))
        })
    });

    // Parcel clone: COW Rc bump vs the seed's per-value rebuild.
    let template = {
        let mut p = make_request();
        p.push_str("device-ns=vd1").push_f64(3.25);
        p
    };
    c.bench_function("parcel_clone/cow", |b| {
        b.iter(|| black_box(template.clone()))
    });
    c.bench_function("parcel_clone/deep", |b| {
        b.iter(|| black_box(deep_copy(&template)))
    });

    // Objref translation: the optimized driver memoizes (src, dst)
    // handle pairs, so repeat translations are one cache hit per
    // reference. The seed replica adds the per-hop copy + two-pass
    // scan it used to pay on top of the same dispatch.
    let objref_request = || {
        let mut p = Parcel::new();
        p.push_i32(42);
        for h in extra {
            p.push_binder(h);
        }
        p
    };
    // Warm the translation cache once before measuring.
    fx.driver
        .transact(client, sink, 1, objref_request())
        .unwrap();
    c.bench_function("parcel_translate/objref_cached", |b| {
        b.iter(|| {
            black_box(
                fx.driver
                    .transact(client, sink, 1, objref_request())
                    .unwrap(),
            )
        })
    });
    c.bench_function("parcel_translate/objref_seed_tables", |b| {
        // Seed handle tables: BTreeMap in both directions.
        let src: BTreeMap<u32, u64> = extra.iter().map(|&h| (h, u64::from(h) + 100)).collect();
        let dst: BTreeMap<u64, u32> = extra
            .iter()
            .map(|&h| (u64::from(h) + 100, h + 50))
            .collect();
        b.iter(|| {
            let mut p = seed_translate_hop(&objref_request());
            // Second pass of the seed's two-pass rewrite: resolve
            // each handle through both BTreeMaps.
            let rewritten: Vec<u32> = p
                .values()
                .iter()
                .filter_map(|v| match v {
                    PValue::Binder(h) => {
                        let node = src.get(h)?;
                        dst.get(node).copied()
                    }
                    _ => None,
                })
                .collect();
            black_box(&rewritten);
            p.push_i32(rewritten.len() as i32);
            black_box(fx.driver.transact(client, sink, 1, p).unwrap())
        })
    });
}

// ---------------------------------------------------------------
// Codec: cursor parser vs the seed's drain-based parser
// ---------------------------------------------------------------

/// Replica of the seed parser: consumed bytes are removed from the
/// front with `drain`, memmoving the entire tail once per frame.
#[derive(Default)]
struct DrainParser {
    buf: Vec<u8>,
    dropped: u64,
}

impl DrainParser {
    fn push(&mut self, bytes: &[u8]) -> Vec<Frame> {
        self.buf.extend_from_slice(bytes);
        let mut frames = Vec::new();
        loop {
            match self.buf.iter().position(|&b| b == STX) {
                Some(0) => {}
                Some(i) => {
                    self.buf.drain(..i);
                }
                None => {
                    self.buf.clear();
                    break;
                }
            }
            if self.buf.len() < 8 {
                break;
            }
            let len = self.buf[1] as usize;
            let total = 8 + len;
            if self.buf.len() < total {
                break;
            }
            match decode_frame_replica(&self.buf[..total]) {
                Ok(frame) => frames.push(frame),
                Err(_) => self.dropped += 1,
            }
            self.buf.drain(..total);
        }
        frames
    }
}

fn decode_frame_replica(b: &[u8]) -> Result<Frame, MavError> {
    let len = b[1] as usize;
    let (seq, sysid, compid, msg_id) = (b[2], b[3], b[4], b[5]);
    let payload = &b[6..6 + len];
    let received = u16::from(b[6 + len]) | (u16::from(b[7 + len]) << 8);
    let mut crc = CRC_INIT;
    for &x in &b[1..6 + len] {
        crc = accumulate(crc, x);
    }
    crc = accumulate(crc, Message::crc_extra(msg_id)?);
    if crc != received {
        return Err(MavError::BadChecksum {
            computed: crc,
            received,
        });
    }
    Ok(Frame {
        seq,
        sysid,
        compid,
        msg: Message::decode_payload(msg_id, payload)?,
    })
}

/// One simulated telemetry burst: 128 mixed frames delivered in a
/// single read, as a TCP segment carrying buffered telemetry would.
fn telemetry_burst() -> Vec<u8> {
    let mut bytes = Vec::new();
    for i in 0..128u32 {
        let msg = match i % 4 {
            0 => Message::Heartbeat {
                mode: FlightMode::Guided,
                armed: true,
                system_status: 4,
            },
            1 => Message::SysStatus {
                voltage_mv: 12_400,
                current_ca: 1_800,
                battery_remaining: 87,
            },
            2 => Message::Attitude {
                time_boot_ms: i * 25,
                roll: 0.02,
                pitch: -0.01,
                yaw: 1.57,
            },
            _ => Message::GlobalPositionInt {
                time_boot_ms: i * 25,
                lat: 374_200_000,
                lon: -1_220_800_000,
                relative_alt: 30_000,
                vx: 120,
                vy: -40,
                vz: 0,
            },
        };
        bytes.extend(
            Frame {
                seq: i as u8,
                sysid: 1,
                compid: 1,
                msg,
            }
            .encode(),
        );
    }
    bytes
}

fn bench_codec(c: &mut Criterion) {
    let burst = telemetry_burst();
    c.bench_function("codec_decode/cursor", |b| {
        let mut parser = Parser::new();
        b.iter(|| black_box(parser.push(&burst).len()))
    });
    c.bench_function("codec_decode/drain", |b| {
        let mut parser = DrainParser::default();
        b.iter(|| black_box(parser.push(&burst).len()))
    });
}

// ---------------------------------------------------------------
// Telemetry fan-out: Rc sharing vs per-client deep clones
// ---------------------------------------------------------------

const FANOUT_CLIENTS: [usize; 5] = [1, 2, 3, 8, 32];

/// Distribution steps per client drain. The proxy steps at 400 Hz
/// while clients drain at their own poll rate, so one drain covers
/// many steps; amortizing the recv bookkeeping (identical in both
/// implementations) keeps the ratio focused on the distribution
/// path under comparison.
const STEPS_PER_DRAIN: usize = 20;

/// One flight-loop tick's worth of telemetry at the 1 Hz boundary
/// (heartbeat + battery + attitude + position), plus the periodic
/// autopilot notification traffic real streams carry as STATUSTEXT.
fn telemetry_batch() -> Vec<Message> {
    vec![
        Message::Heartbeat {
            mode: FlightMode::Guided,
            armed: true,
            system_status: 4,
        },
        Message::SysStatus {
            voltage_mv: 12_400,
            current_ca: 1_800,
            battery_remaining: 87,
        },
        Message::Attitude {
            time_boot_ms: 400,
            roll: 0.02,
            pitch: -0.01,
            yaw: 1.57,
        },
        Message::GlobalPositionInt {
            time_boot_ms: 400,
            lat: 374_200_000,
            lon: -1_220_800_000,
            relative_alt: 30_000,
            vx: 120,
            vy: -40,
            vz: 0,
        },
        Message::StatusText {
            severity: 6,
            text: "EKF2 IMU0 is using GPS".to_string(),
        },
    ]
}

fn active_vfc(name: &str, center: GeoPoint) -> Vfc {
    let mut vfc = Vfc::new(
        name,
        CommandWhitelist::standard(),
        Geofence::new(center, 200.0),
        false,
    );
    vfc.begin_approach();
    vfc.activate();
    vfc
}

/// Replica of the seed's `MavProxy::step` distribution loop: the
/// same `BTreeMap` client shape, but every client receives an owned
/// message — `transform_telemetry` deep clones on every pass-through.
struct SeedProxy {
    clients: BTreeMap<String, (Option<Vfc>, Vec<Message>)>,
}

impl SeedProxy {
    fn distribute(&mut self, telemetry: &[Message], pos: &GeoPoint) {
        for (vfc, outbox) in self.clients.values_mut() {
            for msg in telemetry {
                match vfc.as_mut() {
                    None => outbox.push(msg.clone()),
                    Some(vfc) => outbox.push(vfc.transform_telemetry(msg, pos)),
                }
            }
        }
    }

    fn recv(&mut self, name: &str) -> Vec<Message> {
        std::mem::take(&mut self.clients.get_mut(name).unwrap().1)
    }
}

fn bench_fanout(c: &mut Criterion) {
    let center = GeoPoint::new(37.42, -122.08, 30.0);
    let batch = telemetry_batch();
    let batch_rc: Vec<Rc<Message>> = batch.iter().cloned().map(Rc::new).collect();

    for n in FANOUT_CLIENTS {
        let names: Vec<String> = (0..n).map(|i| format!("vd{i}")).collect();

        // Optimized: one Rc bump per client per message; the
        // active-VFC identity check is hoisted per client.
        let mut proxy = MavProxy::new();
        for name in &names {
            proxy.add_vfc_client(active_vfc(name, center));
        }
        c.bench_function(&format!("fanout/shared_n{n}"), |b| {
            b.iter(|| {
                for _ in 0..STEPS_PER_DRAIN {
                    proxy.distribute_telemetry(&batch_rc, &center);
                }
                for name in &names {
                    black_box(proxy.client_recv_shared(name).len());
                }
            })
        });

        // Seed replica: per-client per-message owned transform.
        let mut seed = SeedProxy {
            clients: names
                .iter()
                .map(|name| (name.clone(), (Some(active_vfc(name, center)), Vec::new())))
                .collect(),
        };
        c.bench_function(&format!("fanout/deep_n{n}"), |b| {
            b.iter(|| {
                for _ in 0..STEPS_PER_DRAIN {
                    seed.distribute(&batch, &center);
                }
                for name in &names {
                    black_box(seed.recv(name).len());
                }
            })
        });
    }
}

// ---------------------------------------------------------------
// Runner: collect medians, compute ratios, emit JSON
// ---------------------------------------------------------------

fn obj(entries: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    androne_bench::banner(
        "Binder/fan-out micro",
        "zero-copy hot paths vs reconstructed seed baselines",
    );
    let samples = usize::try_from((30 / androne_bench::scale()).max(3)).unwrap();
    let mut c = Criterion::default().sample_size(samples);
    bench_binder(&mut c);
    bench_codec(&mut c);
    bench_fanout(&mut c);

    let medians: BTreeMap<String, f64> = c
        .results()
        .iter()
        .map(|(name, ns)| (name.clone(), *ns))
        .collect();
    let ns = |name: &str| medians[name];
    let ratio = |slow: &str, fast: &str| ns(slow) / ns(fast);

    let echo_speedup = ratio("echo_roundtrip/seed_replica", "echo_roundtrip/optimized");
    let fanout8_speedup = ratio("fanout/deep_n8", "fanout/shared_n8");
    let translate_speedup = ratio(
        "parcel_translate/objref_seed_tables",
        "parcel_translate/objref_cached",
    );

    let mut ratios: Vec<(String, Value)> = vec![
        ("echo_roundtrip".to_string(), Value::Number(echo_speedup)),
        (
            "parcel_clone".to_string(),
            Value::Number(ratio("parcel_clone/deep", "parcel_clone/cow")),
        ),
        (
            "parcel_translate".to_string(),
            Value::Number(translate_speedup),
        ),
        (
            "codec_decode".to_string(),
            Value::Number(ratio("codec_decode/drain", "codec_decode/cursor")),
        ),
    ];
    for n in FANOUT_CLIENTS {
        ratios.push((
            format!("fanout_n{n}"),
            Value::Number(ratio(&format!("fanout/deep_n{n}"), &format!("fanout/shared_n{n}"))),
        ));
    }

    let report = obj([
        (
            "schema",
            Value::String("androne-bench/binder_fanout/v1".to_string()),
        ),
        (
            "command",
            Value::String("cargo bench --bench binder_fanout".to_string()),
        ),
        ("units", Value::String("ns_per_iter_median".to_string())),
        (
            "scale",
            Value::Number(androne_bench::scale() as f64),
        ),
        ("sample_size", Value::Number(samples as f64)),
        (
            "benches",
            Value::Object(
                medians
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Number(*v)))
                    .collect(),
            ),
        ),
        (
            "speedup_over_seed_replica",
            Value::Object(ratios.into_iter().collect()),
        ),
        (
            "acceptance",
            obj([
                ("echo_roundtrip_min", Value::Number(2.0)),
                ("echo_roundtrip_measured", Value::Number(echo_speedup)),
                ("fanout_n8_min", Value::Number(3.0)),
                ("fanout_n8_measured", Value::Number(fanout8_speedup)),
                ("parcel_translate_min", Value::Number(1.8)),
                ("parcel_translate_measured", Value::Number(translate_speedup)),
                (
                    "pass",
                    Value::Bool(
                        echo_speedup >= 2.0
                            && fanout8_speedup >= 3.0
                            && translate_speedup >= 1.8,
                    ),
                ),
            ]),
        ),
    ]);

    let out_path = std::env::var("ANDRONE_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_binder_fanout.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    println!("\nspeedups: echo {echo_speedup:.2}x (gate 2.0x), 8-client fan-out {fanout8_speedup:.2}x (gate 3.0x), parcel translate {translate_speedup:.2}x (gate 1.8x)");
    println!("report written to {out_path}");
}
