//! Ablation A5: virtual drone migration — the paper's activity-
//! lifecycle approach vs CRIU-style checkpoint/restore.
//!
//! The paper chooses the Android activity lifecycle for saving and
//! resuming virtual drones (Section 4.4) and notes checkpointing is
//! "likely feasible". This ablation quantifies the trade: storage and
//! cellular-transfer bytes (the lifecycle archive ships only the
//! image diff; the checkpoint ships the entire filesystem) against
//! app cooperation (the lifecycle path needs apps to implement
//! `onSaveInstanceState()`; the checkpoint needs nothing).

use androne::container::{ContainerKind, ContainerRuntime, Layer, ResourceLimits};
use androne::simkern::{Kernel, KernelConfig, MIB};
use androne_bench::banner;

fn main() {
    banner(
        "Ablation A5",
        "Migration: activity lifecycle (paper) vs checkpoint/restore",
    );
    // A realistically sized Android Things base image (the real one
    // is hundreds of MB; 64 MB keeps the bench snappy and the ratio
    // honest in shape).
    let kernel = Kernel::boot_shared(KernelConfig::ANDRONE_DEFAULT, 55);
    let mut rt = ContainerRuntime::new(kernel.clone()).expect("runtime");
    let mut base_layer = Layer::new();
    base_layer.write(
        "/system/framework/framework.jar",
        vec![0x5Au8; 48 * MIB as usize],
    );
    base_layer.write(
        "/system/lib/libandroid_runtime.so",
        vec![0x5Bu8; 16 * MIB as usize],
    );
    let base_id = rt.images_mut().put_layer(base_layer);
    rt.images_mut().tag("android-things", vec![base_id]).unwrap();
    rt.create(
        "vd1",
        ContainerKind::VirtualDrone,
        "android-things",
        ResourceLimits::UNLIMITED,
    )
    .unwrap();
    rt.start("vd1").unwrap();

    // The virtual drone accumulates some mission state: a modest app
    // save bundle plus captured media.
    let media = vec![0xABu8; 4 * MIB as usize];
    rt.get_mut("vd1")
        .unwrap()
        .fs
        .write("/data/media/video0.mp4", media);
    rt.get_mut("vd1")
        .unwrap()
        .fs
        .write("/data/system/androne_saved_state", "survey\tnext-wp\t2\n");

    // Checkpoint path (while running).
    let checkpoint = {
        let k = kernel.borrow();
        rt.checkpoint("vd1", &k).unwrap()
    };
    // Lifecycle path: the archive ships only the diff; the base
    // image is already present on every AnDrone drone.
    let archive = rt.export("vd1").unwrap();

    let archive_mb = archive.stored_bytes() as f64 / MIB as f64;
    let checkpoint_mb = checkpoint.stored_bytes() as f64 / MIB as f64;
    println!(
        "{:<28} {:>12} {:>18}",
        "path", "bytes to VDR", "app cooperation"
    );
    println!(
        "{:<28} {:>9.2} MB {:>18}",
        "activity lifecycle (paper)", archive_mb, "required"
    );
    println!(
        "{:<28} {:>9.2} MB {:>18}",
        "checkpoint/restore", checkpoint_mb, "none"
    );
    println!(
        "\ncheckpoint ships {:.1}x the bytes over the drone's cellular uplink",
        checkpoint.stored_bytes() as f64 / archive.stored_bytes() as f64
    );
    assert!(checkpoint.stored_bytes() > archive.stored_bytes());

    // Both restore correctly; the checkpoint even restores an app
    // that never saved state.
    let kernel2 = Kernel::boot_shared(KernelConfig::ANDRONE_DEFAULT, 56);
    let mut rt2 = ContainerRuntime::new(kernel2).expect("runtime");
    rt2.restore(&checkpoint, ResourceLimits::UNLIMITED).unwrap();
    assert!(rt2
        .get("vd1")
        .unwrap()
        .fs
        .read("/data/media/video0.mp4")
        .is_some());
    println!(
        "conclusion: the lifecycle path the paper chose is the cheap one for\n\
         well-behaved AnDrone apps; checkpointing buys app-independence at a\n\
         {:.0}x transfer cost.",
        checkpoint.stored_bytes() as f64 / archive.stored_bytes() as f64
    );
}
