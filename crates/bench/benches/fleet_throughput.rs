//! Fleet throughput: the parallel wave executor vs the sequential
//! pin, with a core-scaled acceptance gate.
//!
//! Runs the same multi-wave, multi-tenant service scenario at
//! `threads = 1` and `threads = 4`, asserts the two runs are
//! bit-identical (fleet digest and metrics digest), and gates the
//! wall-clock speedup. The full ≥2.0× floor only binds on hosts with
//! at least 4 cores; on smaller hosts the floor scales down (a
//! single hardware thread cannot speed anything up — there the gate
//! only bounds the pool's overhead). The report records both floors
//! and the host's core count so CI results stay comparable across
//! machines.
//!
//! Also reports service metrics from the 4-thread run: orders served
//! per wall-second and the p99 order→landing *simulated* latency
//! (waves are sequential in sim time; flights within a wave fly
//! concurrently, so a tenant's latency is the sim time of the waves
//! before its flight plus its own flight's duration).

use std::collections::BTreeMap;

use androne::fleet::{execute_fleet, FleetConfig, FleetTenant, FleetOutcome};
use androne::hal::GeoPoint;
use androne::simkern::FleetFaultPlan;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use criterion::{black_box, Criterion};
use serde_json::Value;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const SEED: u64 = 0xF1EE_7000;
const TENANTS: usize = 6;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

/// A service day big enough for the pool to matter: six tenants, two
/// waypoints each, a three-drone fleet flying multiple waves.
fn tenants() -> Vec<FleetTenant> {
    (0..TENANTS)
        .map(|i| {
            let k = i as f64;
            FleetTenant {
                vd_name: format!("vd{}", i + 1),
                user: format!("user{}", i + 1),
                spec: VirtualDroneSpec {
                    waypoints: vec![
                        wp(45.0 + 8.0 * k, -40.0 + 13.0 * k, 40.0),
                        wp(70.0 - 5.0 * k, 30.0 + 9.0 * k, 40.0),
                    ],
                    max_duration: 8.0,
                    energy_allotted: 60_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: vec!["camera".into(), "flight-control".into()],
                    apps: vec![],
                    app_args: Default::default(),
                },
            }
        })
        .collect()
}

fn config(threads: usize) -> FleetConfig {
    FleetConfig {
        base: BASE,
        seed: SEED,
        fleet_size: 3,
        tenants: tenants(),
        max_waves: 6,
        max_sim_seconds: 240.0,
        watchdog: None,
        threads,
    }
}

fn run(threads: usize) -> FleetOutcome {
    execute_fleet(&config(threads), &FleetFaultPlan::empty()).expect("fleet run")
}

/// Per-tenant order→landing latency in simulated seconds. Waves run
/// back to back in sim time; within a wave, flights are concurrent.
fn sim_latencies(out: &FleetOutcome) -> Vec<f64> {
    let mut wave_len: BTreeMap<u64, f64> = BTreeMap::new();
    for f in &out.flights {
        let e = wave_len.entry(f.wave).or_insert(0.0);
        if f.duration_s > *e {
            *e = f.duration_s;
        }
    }
    let mut latencies = Vec::new();
    for f in &out.flights {
        let before: f64 = wave_len
            .iter()
            .filter(|(w, _)| **w < f.wave)
            .map(|(_, d)| d)
            .sum();
        for _owner in &f.owners {
            latencies.push(before + f.duration_s);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    latencies
}

fn p99(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[idx.min(sorted.len()) - 1]
}

fn obj(entries: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    androne_bench::banner(
        "Fleet throughput",
        "parallel wave executor vs the sequential pin (core-scaled gate)",
    );

    // Determinism first: the measurement below is only meaningful if
    // every width computes the same run.
    let seq = run(1);
    let par = run(4);
    assert_eq!(
        seq.fleet_digest(),
        par.fleet_digest(),
        "threads=4 diverged from threads=1; the bench refuses to time a wrong answer"
    );
    assert_eq!(seq.metrics_digest(), par.metrics_digest());

    let samples = usize::try_from((10 / androne_bench::scale()).max(3)).unwrap();
    let mut c = Criterion::default().sample_size(samples);
    c.bench_function("fleet/threads1", |b| b.iter(|| black_box(run(1))));
    c.bench_function("fleet/threads4", |b| b.iter(|| black_box(run(4))));

    let medians: BTreeMap<String, f64> = c
        .results()
        .iter()
        .map(|(name, ns)| (name.clone(), *ns))
        .collect();
    let seq_ns = medians["fleet/threads1"];
    let par_ns = medians["fleet/threads4"];
    let speedup = seq_ns / par_ns;

    // Service metrics from the parallel run's shape + median time.
    let orders = seq
        .flights
        .iter()
        .map(|f| f.owners.len() as f64)
        .sum::<f64>();
    let orders_per_sec = orders / (par_ns / 1e9);
    let latencies = sim_latencies(&seq);
    let p99_sim_s = p99(&latencies);

    // Core-scaled floor: the full 2.0x gate needs >=4 hardware
    // threads. On 2-3 cores any real speedup passes (1.2x); on one
    // core the gate only bounds pool overhead (>=0.75x, i.e. at
    // worst a third slower than sequential).
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let floor_full = 2.0;
    let floor_active = if host_cores >= 4 {
        floor_full
    } else if host_cores >= 2 {
        1.2
    } else {
        0.75
    };
    let pass = speedup >= floor_active;

    let report = obj([
        (
            "schema",
            Value::String("androne-bench/fleet_throughput/v1".to_string()),
        ),
        (
            "command",
            Value::String("cargo bench --bench fleet_throughput".to_string()),
        ),
        ("units", Value::String("ns_per_iter_median".to_string())),
        ("scale", Value::Number(androne_bench::scale() as f64)),
        ("sample_size", Value::Number(samples as f64)),
        (
            "benches",
            Value::Object(
                medians
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Number(*v)))
                    .collect(),
            ),
        ),
        (
            "throughput",
            obj([
                ("orders_per_run", Value::Number(orders)),
                ("orders_per_sec_threads4", Value::Number(orders_per_sec)),
                ("p99_order_to_landing_sim_s", Value::Number(p99_sim_s)),
            ]),
        ),
        (
            "acceptance",
            obj([
                ("host_cores", Value::Number(host_cores as f64)),
                ("speedup_4v1_measured", Value::Number(speedup)),
                ("speedup_4v1_floor_full", Value::Number(floor_full)),
                ("speedup_4v1_floor_active", Value::Number(floor_active)),
                ("digests_identical", Value::Bool(true)),
                ("pass", Value::Bool(pass)),
            ]),
        ),
    ]);

    let out_path = std::env::var("ANDRONE_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_throughput.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    println!(
        "\nfleet speedup 4v1: {speedup:.2}x (floor {floor_active:.2}x on {host_cores} cores; full gate {floor_full:.2}x), \
         {orders_per_sec:.1} orders/s, p99 order->landing {p99_sim_s:.1} sim-s"
    );
    println!("report written to {out_path}");
    assert!(
        pass,
        "fleet throughput gate failed: {speedup:.2}x < {floor_active:.2}x floor"
    );
}
