//! Fleet throughput: the parallel wave executor vs the sequential
//! pin, with a core-scaled acceptance gate.
//!
//! Runs the same multi-wave, multi-tenant service scenario at
//! `threads = 1` and `threads = 4`, asserts the two runs are
//! bit-identical (fleet digest and metrics digest), and gates the
//! wall-clock speedup. The full ≥2.0× floor only binds on hosts with
//! at least 4 cores; on smaller hosts the floor scales down (a
//! single hardware thread cannot speed anything up — there the gate
//! only bounds the pool's overhead). The report records both floors
//! and the host's core count so CI results stay comparable across
//! machines.
//!
//! Also reports service metrics from the 4-thread run: orders served
//! per wall-second and the p99 order→landing *simulated* latency
//! (waves are sequential in sim time; flights within a wave fly
//! concurrently, so a tenant's latency is the sim time of the waves
//! before its flight plus its own flight's duration).

use std::collections::BTreeMap;

use androne::fleet::{FleetConfig, FleetOutcome, FleetSpec, FleetTenant};
use androne::hal::GeoPoint;
use androne::{execute_scale_fleet, ScaleConfig, ScaleOutcome};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use criterion::{black_box, Criterion};
use serde_json::Value;

const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);
const SEED: u64 = 0xF1EE_7000;
const TENANTS: usize = 6;

fn wp(north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = BASE.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

/// A service day big enough for the pool to matter: six tenants, two
/// waypoints each, a three-drone fleet flying multiple waves.
fn tenants() -> Vec<FleetTenant> {
    (0..TENANTS)
        .map(|i| {
            let k = i as f64;
            FleetTenant {
                vd_name: format!("vd{}", i + 1),
                user: format!("user{}", i + 1),
                spec: VirtualDroneSpec {
                    waypoints: vec![
                        wp(45.0 + 8.0 * k, -40.0 + 13.0 * k, 40.0),
                        wp(70.0 - 5.0 * k, 30.0 + 9.0 * k, 40.0),
                    ],
                    max_duration: 8.0,
                    energy_allotted: 60_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: vec!["camera".into(), "flight-control".into()],
                    apps: vec![],
                    app_args: Default::default(),
                },
            }
        })
        .collect()
}

fn config(threads: usize) -> FleetConfig {
    FleetConfig {
        base: BASE,
        seed: SEED,
        fleet_size: 3,
        tenants: tenants(),
        max_waves: 6,
        max_sim_seconds: 240.0,
        watchdog: None,
        threads,
    }
}

fn run(threads: usize) -> FleetOutcome {
    FleetSpec::new(config(threads)).run().expect("fleet run")
}

/// Per-tenant order→landing latency in simulated seconds. Waves run
/// back to back in sim time; within a wave, flights are concurrent.
fn sim_latencies(out: &FleetOutcome) -> Vec<f64> {
    let mut wave_len: BTreeMap<u64, f64> = BTreeMap::new();
    for f in &out.flights {
        let e = wave_len.entry(f.wave).or_insert(0.0);
        if f.duration_s > *e {
            *e = f.duration_s;
        }
    }
    let mut latencies = Vec::new();
    for f in &out.flights {
        let before: f64 = wave_len
            .iter()
            .filter(|(w, _)| **w < f.wave)
            .map(|(_, d)| d)
            .sum();
        for _owner in &f.owners {
            latencies.push(before + f.duration_s);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    latencies
}

fn p99(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[idx.min(sorted.len()) - 1]
}

/// One rung of the scaling ladder: `tenants` synthetic orders pushed
/// through the sharded control plane (batched admission, VDR,
/// bin-packed waves) to quiescence, timed wall-clock.
fn ladder_rung(tenants: usize, threads: usize) -> (ScaleOutcome, f64) {
    let t0 = std::time::Instant::now();
    let out = execute_scale_fleet(&ScaleConfig::rung(tenants).threads(threads));
    let wall_s = t0.elapsed().as_secs_f64();
    assert!(out.quiescent, "{tenants}-tenant rung did not reach quiescence");
    assert_eq!(
        out.completed() + out.exhausted(),
        tenants,
        "{tenants}-tenant rung left tenants unresolved"
    );
    (out, wall_s)
}

fn rung_report(tenants: usize, out: &ScaleOutcome, wall_s: f64) -> Value {
    obj([
        ("tenants", Value::Number(tenants as f64)),
        ("wall_s", Value::Number(wall_s)),
        ("orders_per_wall_sec", Value::Number(tenants as f64 / wall_s)),
        ("orders_per_sim_sec", Value::Number(out.orders_per_sim_s())),
        (
            "p99_order_to_landing_sim_s",
            Value::Number(out.p99_latency_s),
        ),
        ("peak_queue_depth", Value::Number(out.peak_queue_depth as f64)),
        (
            "backpressured_submissions",
            Value::Number(out.backpressured_submissions as f64),
        ),
        ("waves", Value::Number(out.waves_run as f64)),
        ("completed", Value::Number(out.completed() as f64)),
        ("exhausted", Value::Number(out.exhausted() as f64)),
    ])
}

fn obj(entries: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    androne_bench::banner(
        "Fleet throughput",
        "parallel wave executor vs the sequential pin (core-scaled gate)",
    );

    // Determinism first: the measurement below is only meaningful if
    // every width computes the same run.
    let seq = run(1);
    let par = run(4);
    assert_eq!(
        seq.fleet_digest(),
        par.fleet_digest(),
        "threads=4 diverged from threads=1; the bench refuses to time a wrong answer"
    );
    assert_eq!(seq.metrics_digest(), par.metrics_digest());

    let samples = usize::try_from((10 / androne_bench::scale()).max(3)).unwrap();
    let mut c = Criterion::default().sample_size(samples);
    c.bench_function("fleet/threads1", |b| b.iter(|| black_box(run(1))));
    c.bench_function("fleet/threads4", |b| b.iter(|| black_box(run(4))));

    let medians: BTreeMap<String, f64> = c
        .results()
        .iter()
        .map(|(name, ns)| (name.clone(), *ns))
        .collect();
    let seq_ns = medians["fleet/threads1"];
    let par_ns = medians["fleet/threads4"];
    let speedup = seq_ns / par_ns;

    // Service metrics from the parallel run's shape + median time.
    let orders = seq
        .flights
        .iter()
        .map(|f| f.owners.len() as f64)
        .sum::<f64>();
    let orders_per_sec = orders / (par_ns / 1e9);
    let latencies = sim_latencies(&seq);
    let p99_sim_s = p99(&latencies);

    // Core-scaled floor: the full 2.0x gate needs >=4 hardware
    // threads. On 2-3 cores any real speedup passes (1.2x); on one
    // core the gate only bounds pool overhead (>=0.75x, i.e. at
    // worst a third slower than sequential).
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let floor_full = 2.0;
    let floor_active = if host_cores >= 4 {
        floor_full
    } else if host_cores >= 2 {
        1.2
    } else {
        0.75
    };
    let pool_pass = speedup >= floor_active;

    // The scaling ladder: 1k / 10k / 100k tenants through the
    // sharded control plane, each timed wall-clock to quiescence.
    // The 10k rung is additionally run across the shard/thread
    // matrix and must be bit-identical at every point, and its
    // wall-clock order throughput carries an absolute floor —
    // comfortably below a 1-core release run so the gate binds on
    // regressions, not host speed.
    const ORDERS_PER_SEC_FLOOR_10K: f64 = 10_000.0;
    let ladder_threads = host_cores.min(4);
    let (rung_1k, wall_1k) = ladder_rung(1_000, ladder_threads);
    let (rung_10k, wall_10k) = ladder_rung(10_000, ladder_threads);
    let (rung_100k, wall_100k) = ladder_rung(100_000, ladder_threads);

    let reference = execute_scale_fleet(&ScaleConfig::rung(10_000));
    let mut ladder_identical = true;
    for (threads, shards) in [(4usize, 1usize), (1, 4), (4, 4)] {
        let run = execute_scale_fleet(&ScaleConfig::rung(10_000).threads(threads).shards(shards));
        if run.fleet_digest() != reference.fleet_digest()
            || run.metrics_digest() != reference.metrics_digest()
        {
            ladder_identical = false;
            eprintln!("ladder digest divergence at threads={threads} shards={shards}");
        }
    }
    let orders_per_wall_10k = 10_000.0 / wall_10k;
    let ladder_pass = ladder_identical && orders_per_wall_10k >= ORDERS_PER_SEC_FLOOR_10K;
    let pass = pool_pass && ladder_pass;

    let report = obj([
        (
            "schema",
            Value::String("androne-bench/fleet_throughput/v2".to_string()),
        ),
        (
            "command",
            Value::String("cargo bench --bench fleet_throughput".to_string()),
        ),
        ("units", Value::String("ns_per_iter_median".to_string())),
        ("scale", Value::Number(androne_bench::scale() as f64)),
        ("sample_size", Value::Number(samples as f64)),
        (
            "benches",
            Value::Object(
                medians
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Number(*v)))
                    .collect(),
            ),
        ),
        (
            "throughput",
            obj([
                ("orders_per_run", Value::Number(orders)),
                ("orders_per_sec_threads4", Value::Number(orders_per_sec)),
                ("p99_order_to_landing_sim_s", Value::Number(p99_sim_s)),
            ]),
        ),
        (
            "scaling_ladder",
            obj([
                ("ladder_threads", Value::Number(ladder_threads as f64)),
                ("rung_1k", rung_report(1_000, &rung_1k, wall_1k)),
                ("rung_10k", rung_report(10_000, &rung_10k, wall_10k)),
                ("rung_100k", rung_report(100_000, &rung_100k, wall_100k)),
            ]),
        ),
        (
            "acceptance",
            obj([
                ("host_cores", Value::Number(host_cores as f64)),
                ("speedup_4v1_measured", Value::Number(speedup)),
                ("speedup_4v1_floor_full", Value::Number(floor_full)),
                ("speedup_4v1_floor_active", Value::Number(floor_active)),
                ("digests_identical", Value::Bool(true)),
                (
                    "ladder_10k_digests_identical_shards14_threads14",
                    Value::Bool(ladder_identical),
                ),
                (
                    "ladder_10k_orders_per_sec_measured",
                    Value::Number(orders_per_wall_10k),
                ),
                (
                    "ladder_10k_orders_per_sec_floor",
                    Value::Number(ORDERS_PER_SEC_FLOOR_10K),
                ),
                ("pass", Value::Bool(pass)),
            ]),
        ),
    ]);

    let out_path = std::env::var("ANDRONE_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_throughput.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    println!(
        "\nfleet speedup 4v1: {speedup:.2}x (floor {floor_active:.2}x on {host_cores} cores; full gate {floor_full:.2}x), \
         {orders_per_sec:.1} orders/s, p99 order->landing {p99_sim_s:.1} sim-s"
    );
    println!(
        "scaling ladder ({ladder_threads} threads): \
         1k {:.0} orders/s | 10k {:.0} orders/s (floor {ORDERS_PER_SEC_FLOOR_10K:.0}) | 100k {:.0} orders/s; \
         10k digest matrix identical: {ladder_identical}",
        1_000.0 / wall_1k,
        orders_per_wall_10k,
        100_000.0 / wall_100k,
    );
    println!("report written to {out_path}");
    assert!(
        pool_pass,
        "fleet throughput gate failed: {speedup:.2}x < {floor_active:.2}x floor"
    );
    assert!(
        ladder_pass,
        "scaling ladder gate failed: 10k rung {orders_per_wall_10k:.0} orders/s \
         (floor {ORDERS_PER_SEC_FLOOR_10K:.0}) or digest matrix diverged"
    );
}
