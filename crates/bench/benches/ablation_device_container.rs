//! Ablation A1: Device container vs per-device namespaces (Cells).
//!
//! Cells multiplexes Android instances with *device namespaces*:
//! every device needs kernel-driver modifications with contextual
//! knowledge of how the device works, and opaque userspace-driven
//! peripherals (SPI/I2C) are hard to support at all. AnDrone's
//! device container moves multiplexing up to the Android service
//! level and needs *no per-device kernel support* — one namespace
//! mechanism for the Binder Context Manager covers everything.
//!
//! This ablation quantifies the engineering delta on our device
//! inventory and measures the runtime price: the extra Binder hop a
//! service-level operation pays.

use androne::binder::transaction_cost;
use androne::hal::DeviceKind;
use androne_bench::banner;

/// Would a Cells-style device namespace need bespoke kernel-driver
/// support for this device, and is the device's context even visible
/// to the kernel? (The Navio2's sensors hang off SPI/I2C with
/// userspace drivers: the kernel only sees raw bus reads/writes.)
fn cells_support(device: DeviceKind) -> (&'static str, bool) {
    match device {
        DeviceKind::Framebuffer => ("virtual per container (both designs)", false),
        DeviceKind::Camera => ("kernel driver namespace mods", true),
        DeviceKind::Microphone | DeviceKind::Speaker => ("ALSA driver namespace mods", true),
        DeviceKind::Gps
        | DeviceKind::Imu
        | DeviceKind::Barometer
        | DeviceKind::Magnetometer
        | DeviceKind::Motors
        | DeviceKind::Battery
        | DeviceKind::Gimbal => ("opaque SPI/I2C userspace device: context invisible to kernel", true),
    }
}

fn main() {
    banner(
        "Ablation A1",
        "Device container vs per-device namespaces (Cells)",
    );
    println!(
        "{:<14} {:<58} {:<10}",
        "device", "Cells (per-device namespace) requirement", "AnDrone"
    );
    let mut cells_mods = 0;
    for device in DeviceKind::ALL {
        let (requirement, needs_mod) = cells_support(device);
        if needs_mod {
            cells_mods += 1;
        }
        println!("{:<14} {:<58} none", device.to_string(), requirement);
    }
    println!(
        "\nper-device kernel modifications: Cells-style = {cells_mods}, \
         AnDrone device container = 0"
    );
    println!(
        "AnDrone kernel changes are device-independent: device namespaces for the\n\
         Context Manager + 2 ioctls (PUBLISH_TO_ALL_NS, PUBLISH_TO_DEV_CON) + the\n\
         container id in transaction data."
    );

    // Runtime price: the service-level indirection costs one extra
    // Binder transaction per device operation vs in-process access.
    let hop = transaction_cost(256);
    println!(
        "\nruntime price of service-level multiplexing: +{} us per device op",
        hop.as_micros()
    );
    // Against, say, a 30 fps camera: one transaction per frame.
    let per_frame_budget_us = 1_000_000.0 / 30.0;
    println!(
        "at 30 fps camera streaming that is {:.2}% of the frame budget",
        100.0 * hop.as_micros_f64() / per_frame_budget_us
    );
    assert!(hop.as_micros_f64() / per_frame_budget_us < 0.01);
    assert_eq!(
        DeviceKind::ALL.iter().filter(|d| !d.trivially_virtualizable()).count(),
        cells_mods,
        "every non-trivial device would need Cells-side work"
    );
    println!(
        "conclusion: the device container trades ~{} us per operation for zero\n\
         per-device kernel engineering — the paper's core design argument.",
        hop.as_micros()
    );
}
