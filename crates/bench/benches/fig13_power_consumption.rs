//! Figure 13: Power consumption.
//!
//! Board power at rest across AnDrone configurations, normalized to
//! stock Android Things idling on its launcher, plus the fully
//! stressed case. Paper: every configuration within 3% of stock,
//! ~1.7 W idle with three virtual drones, 3.4 W stressed regardless
//! of configuration — all insignificant next to >100 W flight power.

use androne::energy::PowerModel;
use androne_bench::banner;

fn main() {
    banner("Figure 13", "Power consumption at rest, normalized to stock");
    let model = PowerModel::rpi3();
    let stock = model.power_w(0.0, 0);

    // Configurations as in Figure 12: extra running containers
    // beyond the single stock instance.
    let configs = [
        ("Base", 0usize, 1.0),
        ("Dev+Flight Con", 2, 1.005),
        ("1 VDrone", 3, 1.01),
        ("2 VDrone", 4, 1.015),
        ("3 VDrone", 5, 1.03),
    ];
    println!(
        "{:<16} {:>9} {:>12} {:>14}",
        "config", "watts", "normalized", "paper bound"
    );
    for (name, extra, paper_norm_max) in configs {
        let w = model.power_w(0.0, extra);
        let norm = w / stock;
        println!(
            "{:<16} {:>8.2}W {:>12.3} {:>13.2}x",
            name, w, norm, paper_norm_max
        );
        assert!(
            norm <= 1.03 + 1e-9,
            "{name}: all configurations within 3% of stock"
        );
    }

    // Absolute checks from the paper's text.
    let idle_3vd = model.power_w(0.0, 5);
    assert!(
        (1.65..1.75).contains(&idle_3vd),
        "idle with 3 virtual drones ~1.7W: {idle_3vd}"
    );
    let stressed_stock = model.power_w(1.0, 0);
    let stressed_androne = model.power_w(1.0, 5);
    println!(
        "\nfully stressed: stock {stressed_stock:.1}W, AnDrone(3VD) {stressed_androne:.1}W \
         (paper: 3.4W for both)"
    );
    assert_eq!(stressed_stock, 3.4);
    assert_eq!(stressed_androne, 3.4);

    // Compare against flight power.
    let hover_w = androne::energy::DorlingModel::f450_prototype().hover_power_w(0.0);
    println!(
        "SBC worst case {:.1}W vs hover power {:.0}W -> {:.1}% of flight draw",
        stressed_androne,
        hover_w,
        100.0 * stressed_androne / hover_w
    );
    assert!(stressed_androne / hover_w < 0.03);
    println!("shape checks passed: within 3% of stock; negligible next to flight power");
}
