//! Table 1: Device container services.
//!
//! The listing of shared services and the devices they manage,
//! produced from the live device container rather than hardcoded: a
//! drone is booted, and each service is looked up through a virtual
//! drone's ServiceManager to prove it is actually published.

use androne::android::svc_names;
use androne::binder::get_service;
use androne::container::DeviceNamespaceId;
use androne::hal::GeoPoint;
use androne::simkern::{Euid, SchedPolicy};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;
use androne_bench::banner;

fn main() {
    banner("Table 1", "Device container services and their devices");

    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut drone = Drone::boot(base, 1).expect("boot");
    drone
        .deploy_vdrone(
            "probe",
            VirtualDroneSpec {
                waypoints: vec![WaypointSpec {
                    latitude: base.latitude,
                    longitude: base.longitude,
                    altitude: 15.0,
                    max_radius: 30.0,
                }],
                max_duration: 60.0,
                energy_allotted: 1_000.0,
                continuous_devices: vec![],
                waypoint_devices: vec![],
                apps: vec![],
                app_args: Default::default(),
            },
            &[],
        )
        .expect("deploy probe");
    let container = drone.vdrones.get("probe").unwrap().container;
    let pid = {
        let mut k = drone.kernel.borrow_mut();
        k.tasks
            .spawn("probe-app", Euid(10_000), container, SchedPolicy::DEFAULT)
            .unwrap()
    };
    drone
        .driver
        .open(pid, Euid(10_000), container, DeviceNamespaceId(container.0));

    let rows = [
        (svc_names::AUDIO, "AudioFlinger", "Microphone, Speakers"),
        (svc_names::CAMERA, "CameraService", "Camera"),
        (svc_names::LOCATION, "LocationManagerService", "GPS"),
        (
            svc_names::SENSORS,
            "SensorService",
            "Motion, Environmental Sensors",
        ),
    ];
    println!("{:<26} {:<32} published?", "Service", "Device(s)");
    for (name, service, devices) in rows {
        let published = get_service(&mut drone.driver, pid, name).is_ok();
        println!("{service:<26} {devices:<32} {published}");
        assert!(published, "{service} must be visible inside a virtual drone");
    }
    println!("\nall Table 1 services are published into virtual drone namespaces");
}
