//! Section 6.6: Multi-waypoint flight simulation.
//!
//! The paper's SITL demonstration: one physical flight serving three
//! virtual drones (autonomous survey, interactive, direct access),
//! with waypoint handovers, device-access windows, per-tenant energy
//! accounting, and a stability (attitude-estimate-divergence) check.

use androne::flight_exec::{execute_flight, FlightLog};
use androne::hal::GeoPoint;
use androne::planner::{FlightPlan, Leg};
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;
use androne_bench::banner;

fn wp(base: &GeoPoint, north: f64, east: f64, radius: f64) -> WaypointSpec {
    let p = base.offset_m(north, east, 15.0);
    WaypointSpec {
        latitude: p.latitude,
        longitude: p.longitude,
        altitude: 15.0,
        max_radius: radius,
    }
}

fn main() {
    banner("Section 6.6", "Three-tenant multi-waypoint SITL flight");
    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut drone = Drone::boot(base, 66).expect("boot");

    let tenants = [
        ("vd-survey", 80.0, 0.0, 40.0, vec!["camera", "gps", "flight-control"]),
        ("vd-interactive", 80.0, 90.0, 25.0, vec!["flight-control"]),
        ("vd-direct", 0.0, 100.0, 30.0, vec!["camera", "flight-control"]),
    ];
    for (name, north, east, radius, devices) in &tenants {
        drone
            .deploy_vdrone(
                name,
                VirtualDroneSpec {
                    waypoints: vec![wp(&base, *north, *east, *radius)],
                    max_duration: 60.0,
                    energy_allotted: 30_000.0,
                    continuous_devices: vec![],
                    waypoint_devices: devices.iter().map(|d| d.to_string()).collect(),
                    apps: vec![],
                    app_args: Default::default(),
                },
                &[],
            )
            .expect("deploy");
    }

    let plan = FlightPlan {
        base,
        legs: tenants
            .iter()
            .map(|(name, north, east, radius, _)| Leg {
                owner: name.to_string(),
                position: base.offset_m(*north, *east, 15.0),
                max_radius_m: *radius,
                service_energy_j: 50_000.0,
                service_time_s: 10.0,
                eta_s: 0.0,
            })
            .collect(),
        estimated_duration_s: 300.0,
        estimated_energy_j: 130_000.0,
    };

    let outcome = execute_flight(&mut drone, plan, 400.0, None);
    for entry in &outcome.log {
        println!("  {entry:?}");
    }
    println!("\nper-tenant energy charges:");
    for (vd, j) in &outcome.vdrone_energy_j {
        println!("  {vd:<16} {j:>8.0} J");
    }
    println!(
        "\nflight: {:.0} s, {:.0} J total; landed {:.1} m from base; peak AED {:.2} deg",
        outcome.duration_s,
        outcome.total_energy_j,
        drone.sitl.position().ground_distance_m(&base),
        drone.sitl.max_attitude_divergence.to_degrees()
    );

    // Shape checks (the paper's qualitative outcomes).
    assert!(outcome.completed, "the flight completes");
    let handovers = outcome
        .log
        .iter()
        .filter(|e| matches!(e, FlightLog::WaypointHandover { .. }))
        .count();
    assert_eq!(handovers, 3, "all three tenants served in one flight");
    assert!(drone.sitl.on_ground() && drone.sitl.position().ground_distance_m(&base) < 5.0);
    assert!(
        drone.sitl.max_attitude_divergence < 5f64.to_radians(),
        "within the AED analyzer's normal band"
    );
    println!("shape checks passed: 3 tenants, one flight, stable, returned to base");
}
