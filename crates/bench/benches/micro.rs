//! Criterion microbenchmarks of the hot paths: Binder transaction
//! routing, MAVLink encode/decode, the physics step, the latency
//! sampler, and the VRP solver.

use std::cell::RefCell;
use std::rc::Rc;

use androne::binder::{BinderDriver, BinderError, BinderService, Parcel, TransactionContext};
use androne::container::DeviceNamespaceId;
use androne::flight::{AirframeParams, QuadPhysics};
use androne::hal::{GeoPoint, VehicleTruth};
use androne::mavlink::{deg_to_e7, Frame, Message, Parser};
use androne::simkern::{ContainerId, Euid, Kernel, KernelConfig, Pid};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

struct Echo;

impl BinderService for Echo {
    fn on_transact(
        &mut self,
        _code: u32,
        data: &Parcel,
        _ctx: &TransactionContext,
        _driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        Ok(data.clone())
    }
}

fn bench_binder(c: &mut Criterion) {
    let mut driver = BinderDriver::new();
    let server = Pid(1);
    let client = Pid(2);
    driver.open(server, Euid(1000), ContainerId(1), DeviceNamespaceId(1));
    driver.open(client, Euid(10_000), ContainerId(1), DeviceNamespaceId(1));
    // Distribute the handle through a ServiceManager, as real
    // clients would.
    use androne::binder::{add_service, get_service, ServiceManager};
    let sm = ServiceManager::new(server);
    let sm_handle = driver
        .create_node(server, Rc::new(RefCell::new(sm)))
        .unwrap();
    driver.set_context_manager(server, sm_handle).unwrap();
    let echo_handle = driver
        .create_node(server, Rc::new(RefCell::new(Echo)))
        .unwrap();
    add_service(&mut driver, server, "echo", echo_handle).unwrap();
    let handle = get_service(&mut driver, client, "echo").unwrap();
    c.bench_function("binder_transaction_echo", |b| {
        b.iter(|| {
            let mut p = Parcel::new();
            p.push_i32(7).push_str("camera");
            black_box(driver.transact(client, handle, 1, p).unwrap())
        })
    });
}

fn bench_mavlink(c: &mut Criterion) {
    let frame = Frame {
        seq: 1,
        sysid: 255,
        compid: 1,
        msg: Message::GlobalPositionInt {
            time_boot_ms: 123_456,
            lat: deg_to_e7(43.6084298),
            lon: deg_to_e7(-85.8110359),
            relative_alt: 15_000,
            vx: 120,
            vy: -45,
            vz: 3,
        },
    };
    c.bench_function("mavlink_encode", |b| b.iter(|| black_box(frame.encode())));
    let bytes = frame.encode();
    c.bench_function("mavlink_decode", |b| {
        b.iter(|| {
            let mut parser = Parser::new();
            black_box(parser.push(&bytes))
        })
    });
}

fn bench_physics(c: &mut Criterion) {
    let home = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut physics = QuadPhysics::new(AirframeParams::f450_prototype(), home);
    let mut truth = VehicleTruth::at_rest(home);
    truth.motor_outputs = [0.5; 4];
    c.bench_function("physics_step_2_5ms", |b| {
        b.iter(|| {
            physics.step(&mut truth, 0.0025);
            black_box(truth.position)
        })
    });
}

fn bench_latency_sampler(c: &mut Criterion) {
    let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 1);
    kernel.add_interference(androne::simkern::latency::profiles::stress_load());
    c.bench_function("rt_latency_sample", |b| {
        b.iter(|| black_box(kernel.sample_rt_latency()))
    });
}

fn bench_vrp(c: &mut Criterion) {
    use androne::energy::DorlingModel;
    use androne::planner::{VrpProblem, WaypointTask};
    let depot = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let tasks: Vec<WaypointTask> = (0..8)
        .map(|i| WaypointTask {
            owner: format!("vd{i}"),
            position: depot.offset_m(100.0 * (i as f64 + 1.0), 60.0 * i as f64, 15.0),
            service_energy_j: 3_000.0,
            service_time_s: 45.0,
        })
        .collect();
    let problem = VrpProblem {
        depot,
        tasks,
        fleet_size: 2,
        battery_budget_j: 160_000.0,
        model: DorlingModel::f450_prototype(),
    };
    c.bench_function("vrp_solve_8_tasks_2k_iters", |b| {
        b.iter(|| black_box(problem.solve(2_000, 7)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_binder, bench_mavlink, bench_physics, bench_latency_sampler, bench_vrp
);
criterion_main!(benches);
