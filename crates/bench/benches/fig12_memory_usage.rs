//! Figure 12: Memory usage.
//!
//! Board RAM in use as the AnDrone stack comes up: base (host OS +
//! VDC), + device and flight containers, then one to three virtual
//! drones idling on their launchers. Paper: <100 MB base, ~150 MB
//! for device+flight, ~185 MB per virtual drone, and a fourth
//! virtual drone fails on the 880 MB board without disturbing the
//! others.

use androne::hal::GeoPoint;
use androne::simkern::MIB;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::{Drone, DroneError};
use androne_bench::banner;

fn spec() -> VirtualDroneSpec {
    VirtualDroneSpec {
        waypoints: vec![WaypointSpec {
            latitude: 43.6084298,
            longitude: -85.8110359,
            altitude: 15.0,
            max_radius: 30.0,
        }],
        max_duration: 600.0,
        energy_allotted: 45_000.0,
        continuous_devices: vec![],
        waypoint_devices: vec!["camera".into()],
        apps: vec![],
        app_args: Default::default(),
    }
}

fn main() {
    banner("Figure 12", "Memory usage (MB) by configuration");
    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut drone = Drone::boot(base, 12).expect("boot");

    let mb = |bytes: u64| bytes as f64 / MIB as f64;
    let paper = [95.0, 245.0, 430.0, 615.0, 800.0];
    let mut measured = Vec::new();

    // "Base" in the paper is host+VDC only; our boot charges the
    // device+flight containers too, so report both from components.
    let host_base = androne::container::HOST_BASE_MEMORY;
    measured.push(mb(host_base));
    measured.push(mb(drone.memory_used()));
    println!("{:<22} {:>8.0} MB (paper ~{:>3.0} MB)", "Base (host + VDC)", measured[0], paper[0]);
    println!(
        "{:<22} {:>8.0} MB (paper ~{:>3.0} MB)",
        "+ Dev+Flight Con",
        measured[1],
        paper[1]
    );

    for i in 1..=3 {
        drone
            .deploy_vdrone(&format!("vd{i}"), spec(), &[])
            .expect("virtual drone fits");
        measured.push(mb(drone.memory_used()));
        println!(
            "{:<22} {:>8.0} MB (paper ~{:>3.0} MB)",
            format!("+ {i} VDrone"),
            measured[1 + i],
            paper[1 + i]
        );
    }

    // The fourth fails with OOM, leaving the rest untouched.
    let err = drone.deploy_vdrone("vd4", spec(), &[]).unwrap_err();
    assert!(matches!(err, DroneError::Container(_)));
    println!("\n+ 4th VDrone          -> {err}");
    assert_eq!(drone.vdrones.len(), 3, "running virtual drones unaffected");
    assert!(
        drone.memory_used() <= 880 * MIB,
        "never exceeds the 880 MB usable budget"
    );
    println!(
        "shape checks passed: 3 virtual drones fit in 880 MB, the 4th OOMs harmlessly"
    );
}
