//! Figure 10: Runtime overhead.
//!
//! PassMark CPU/disk/memory running simultaneously in 1–3 virtual
//! drones on the PREEMPT and PREEMPT_RT kernels, normalized to a
//! single PassMark instance on stock Android Things (lower is
//! better). Paper: ≤1.5% overhead at one virtual drone; CPU scales
//! ~linearly; at three virtual drones disk is ~2.0×/2.2× and memory
//! ~1.8×/2.3× (PREEMPT/PREEMPT_RT).

use androne::simkern::{Kernel, KernelConfig};
use androne::workloads::{run_concurrent, stock_baseline};
use androne_bench::banner;

/// Paper values digitized from Figure 10 (normalized overhead,
/// lower is better): `[cpu, disk, memory]`.
fn paper_values(config: &str, vdrones: usize) -> [f64; 3] {
    match (config, vdrones) {
        ("PREEMPT", 1) => [1.01, 1.01, 1.015],
        ("PREEMPT", 2) => [2.0, 1.35, 1.25],
        ("PREEMPT", 3) => [3.0, 2.0, 1.8],
        ("PREEMPT_RT", 1) => [1.015, 1.015, 1.015],
        ("PREEMPT_RT", 2) => [2.05, 1.45, 1.45],
        ("PREEMPT_RT", 3) => [3.1, 2.2, 2.3],
        _ => unreachable!(),
    }
}

fn main() {
    banner(
        "Figure 10",
        "PassMark runtime overhead, normalized to stock (lower is better)",
    );
    let baseline = stock_baseline();
    println!(
        "{:<14} {:>3}  {:>24} {:>24} {:>24}",
        "kernel", "VDs", "CPU", "Disk", "Memory"
    );
    for (config, label) in [
        (KernelConfig::NAVIO2_DEFAULT, "PREEMPT"),
        (KernelConfig::ANDRONE_DEFAULT, "PREEMPT_RT"),
    ] {
        for vdrones in 1..=3usize {
            let mut kernel = Kernel::boot(config, 10);
            let scores = run_concurrent(&mut kernel, vdrones, true);
            let o = scores[0].overhead_vs(&baseline);
            let paper = paper_values(label, vdrones);
            println!(
                "{:<14} {:>3}  {:>9.3} (paper {:>5.2}) {:>9.3} (paper {:>5.2}) {:>9.3} (paper {:>5.2})",
                label, vdrones, o.cpu, paper[0], o.disk, paper[1], o.memory, paper[2]
            );
        }
    }

    // The headline claims, asserted so regressions fail the bench.
    let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 10);
    let one = run_concurrent(&mut kernel, 1, true)[0].overhead_vs(&baseline);
    assert!(
        one.cpu < 1.02 && one.disk < 1.02 && one.memory < 1.02,
        "single virtual drone overhead must stay under ~1.5-2%"
    );
    let mut kernel = Kernel::boot(KernelConfig::NAVIO2_DEFAULT, 10);
    let three = run_concurrent(&mut kernel, 3, true)[0].overhead_vs(&baseline);
    assert!((three.cpu / 3.0 - 1.0).abs() < 0.05, "CPU scales linearly");
    println!("\nshape checks passed: ≤1.5% @1VD, linear CPU, sublinear disk/memory");
}
