//! Section 6.5: Network performance.
//!
//! ~150,000 MAVLink commands sent to the flight controller over the
//! cellular (LTE) link model, measuring command delivery latency, as
//! in the paper's 12-hour testbed run. Paper: average 70 ms, maximum
//! 356 ms, standard deviation 7.2 ms, 6 packets lost; hobby RF links
//! run 8–85 ms for comparison.

use androne::mavlink::{channel, FlightMode, MavCmd, Message};
use androne::simkern::{LinkModel, SimDuration, SimTime, Summary};
use androne_bench::{banner, scale};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn measure(link: LinkModel, n: u64, seed: u64) -> (Summary, u64) {
    let (mut ground, mut drone) = channel(link, 255, 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = SimTime::ZERO;
    let mut latency = Summary::new();
    for i in 0..n {
        let sent_at = t;
        let msg = if i.is_multiple_of(2) {
            Message::CommandLong {
                command: MavCmd::ConditionYaw,
                params: [((i % 360) as f32), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            }
        } else {
            Message::Heartbeat {
                mode: FlightMode::Guided,
                armed: true,
                system_status: 4,
            }
        };
        if let Some(delivered_at) = ground.send(msg, t, &mut rng) {
            latency.record((delivered_at - sent_at).as_secs_f64() * 1e3);
        }
        // The paper's run spaced ~150k commands over 12 hours.
        t += SimDuration::from_millis(288);
        let _ = drone.recv(t);
    }
    (latency, ground.packets_lost())
}

fn main() {
    banner("Section 6.5", "MAVLink command latency over cellular (ms)");
    let n = 150_000 / scale();
    println!("commands: {n}\n");

    let (lte, lost) = measure(LinkModel::cellular_lte(), n, 65);
    println!(
        "LTE      avg {:>6.1}  max {:>6.1}  stddev {:>5.2}  lost {:>3}   \
         (paper: avg 70, max 356, stddev 7.2, lost 6/150k)",
        lte.mean(),
        lte.max(),
        lte.stddev(),
        lost
    );

    let (rf, rf_lost) = measure(LinkModel::rf_remote(), n, 66);
    println!(
        "RF       avg {:>6.1}  max {:>6.1}  stddev {:>5.2}  lost {:>3}   \
         (paper: typical hobby RF 8-85 ms)",
        rf.mean(),
        rf.max(),
        rf.stddev(),
        rf_lost
    );

    // Shape checks against the paper's measurements.
    assert!((60.0..80.0).contains(&lte.mean()), "LTE avg {}", lte.mean());
    assert!(lte.max() <= 356.0, "LTE max {}", lte.max());
    assert!((4.0..12.0).contains(&lte.stddev()), "LTE stddev {}", lte.stddev());
    assert!(lost <= 20 / scale().min(10), "LTE lost {lost}");
    assert!(rf.mean() < lte.mean(), "RF beats LTE on average latency");
    assert!(rf.max() <= 85.0, "RF stays within its hobby band");
    println!(
        "\nshape checks passed: LTE latency is workable for drone control \
         (as Qualcomm's trials found), RF remains lower"
    );
}
