//! Figure 11: Real-time latency.
//!
//! cyclictest (memory locked, top FIFO priority) under three load
//! scenarios — idle, PassMark in a virtual drone + iperf in another,
//! and stress+iperf natively — on the PREEMPT and PREEMPT_RT
//! kernels. The paper runs 100 million loops; set
//! `ANDRONE_BENCH_SCALE` to trade samples for runtime (default here:
//! 10 million loops, which preserves the tail shape).
//!
//! Paper: PREEMPT avg/max = 17/1,307, 44/14,513, 162/17,819 µs;
//! PREEMPT_RT avg/max = 10/103, 12/382, 16/340 µs. ArduPilot's fast
//! loop needs < 2,500 µs.

use androne::simkern::latency::profiles;
use androne::simkern::{ContainerId, InterferenceSource, Kernel, KernelConfig};
use androne::workloads::{run_cyclictest, ARDUPILOT_DEADLINE_US};
use androne_bench::{banner, scale};

struct Scenario {
    name: &'static str,
    loads: Vec<InterferenceSource>,
    paper_preempt: (f64, f64),
    paper_rt: (f64, f64),
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "Idle",
            loads: vec![],
            paper_preempt: (17.0, 1_307.0),
            paper_rt: (10.0, 103.0),
        },
        Scenario {
            name: "PassMark",
            loads: vec![profiles::passmark_load(), profiles::iperf_load()],
            paper_preempt: (44.0, 14_513.0),
            paper_rt: (12.0, 382.0),
        },
        Scenario {
            name: "Stress",
            loads: vec![profiles::stress_load()],
            paper_preempt: (162.0, 17_819.0),
            paper_rt: (16.0, 340.0),
        },
    ]
}

fn main() {
    banner("Figure 11", "cyclictest wakeup latency (µs)");
    let loops = 10_000_000 / scale();
    println!("loops per scenario: {loops}\n");
    println!(
        "{:<12} {:<10} {:>8} {:>8}   {:>8} {:>8}  {:>10}",
        "kernel", "scenario", "avg", "max", "p.avg", "p.max", "misses"
    );

    let mut rt_max_overall = 0.0f64;
    let mut preempt_missed = false;
    for (config, label) in [
        (KernelConfig::NAVIO2_DEFAULT, "PREEMPT"),
        (KernelConfig::ANDRONE_DEFAULT, "PREEMPT_RT"),
    ] {
        for sc in scenarios() {
            let mut kernel = Kernel::boot(config, 611);
            for load in &sc.loads {
                kernel.add_interference(load.clone());
            }
            let r = run_cyclictest(&mut kernel, ContainerId(2), loops);
            let (p_avg, p_max) = if label == "PREEMPT" {
                sc.paper_preempt
            } else {
                sc.paper_rt
            };
            println!(
                "{:<12} {:<10} {:>8.1} {:>8.0}   {:>8.1} {:>8.0}  {:>10}",
                label,
                sc.name,
                r.avg_us(),
                r.max_us(),
                p_avg,
                p_max,
                r.deadline_misses
            );
            if label == "PREEMPT_RT" {
                rt_max_overall = rt_max_overall.max(r.max_us());
            } else if r.deadline_misses > 0 {
                preempt_missed = true;
            }

            // Histogram (log buckets), the Figure 11 series.
            if std::env::var("ANDRONE_BENCH_HISTOGRAMS").is_ok() {
                for (bound, count) in r.histogram.buckets() {
                    if count > 0 {
                        println!("    <{bound:>9.1}us: {count}");
                    }
                }
            }
        }
    }

    assert!(
        rt_max_overall < ARDUPILOT_DEADLINE_US,
        "PREEMPT_RT must meet ArduPilot's 2500us fast loop everywhere"
    );
    assert!(
        preempt_missed,
        "PREEMPT should occasionally miss the deadline under load"
    );
    println!(
        "\nshape checks passed: PREEMPT_RT max {rt_max_overall:.0}us < 2500us budget; \
         PREEMPT misses under load (as in the paper)"
    );
}
