//! Ablation A2: Binder cross-container transaction overhead.
//!
//! The device-container design routes every device operation through
//! a cross-container Binder transaction. This ablation measures the
//! driver's routing cost for same-container vs cross-container
//! transactions (wall-clock of the simulation's routing path, plus
//! the calibrated on-device cost model), and the added cost of the
//! permission-check hop (`activity#ctrN` + VDC policy).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use androne::binder::{
    transaction_cost, BinderDriver, BinderError, BinderService, Parcel, TransactionContext,
};
use androne::container::DeviceNamespaceId;
use androne::simkern::{ContainerId, Euid, Pid};
use androne_bench::banner;

struct Null;

impl BinderService for Null {
    fn on_transact(
        &mut self,
        _code: u32,
        _data: &Parcel,
        _ctx: &TransactionContext,
        _driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        Ok(Parcel::new())
    }
}

fn bench(driver: &mut BinderDriver, caller: Pid, handle: u32, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        let mut p = Parcel::new();
        p.push_i32(7);
        driver.transact(caller, handle, 1, p).unwrap();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    banner("Ablation A2", "Binder transaction routing cost");
    let mut driver = BinderDriver::new();
    let server = Pid(1);
    let same = Pid(2);
    let cross = Pid(3);
    driver.open(server, Euid(1000), ContainerId(1), DeviceNamespaceId(1));
    driver.open(same, Euid(10_000), ContainerId(1), DeviceNamespaceId(1));
    driver.open(cross, Euid(10_000), ContainerId(2), DeviceNamespaceId(2));
    // Publish the service through the real mechanism: the device
    // container's ServiceManager + PUBLISH_TO_ALL_NS, exactly as the
    // Table 1 services are shared.
    use androne::binder::{add_service, get_service, ServiceManager};
    driver.set_device_container(ContainerId(1), DeviceNamespaceId(1));
    let sm1 = ServiceManager::new_device_container(server, ["null.service".to_string()]);
    let sm1_handle = driver
        .create_node(server, Rc::new(RefCell::new(sm1)))
        .unwrap();
    driver.set_context_manager(server, sm1_handle).unwrap();
    let sm2_pid = Pid(4);
    driver.open(sm2_pid, Euid(1000), ContainerId(2), DeviceNamespaceId(2));
    let sm2 = ServiceManager::new(sm2_pid);
    let sm2_handle = driver
        .create_node(sm2_pid, Rc::new(RefCell::new(sm2)))
        .unwrap();
    driver.set_context_manager(sm2_pid, sm2_handle).unwrap();

    let handle = driver
        .create_node(server, Rc::new(RefCell::new(Null)))
        .unwrap();
    add_service(&mut driver, server, "null.service", handle).unwrap();
    let same_handle = get_service(&mut driver, same, "null.service").unwrap();
    let cross_handle = get_service(&mut driver, cross, "null.service").unwrap();

    const ITERS: u32 = 200_000;
    let same_ns = bench(&mut driver, same, same_handle, ITERS);
    let cross_ns = bench(&mut driver, cross, cross_handle, ITERS);
    println!("simulation routing cost (host ns/transaction):");
    println!("  same container:  {same_ns:>8.0} ns");
    println!("  cross container: {cross_ns:>8.0} ns");
    println!(
        "  relative overhead: {:.1}%",
        100.0 * (cross_ns - same_ns) / same_ns
    );

    // The on-device (Cortex-A53) cost model used by the simulation.
    println!("\ncalibrated on-device cost model:");
    for size in [16usize, 256, 4096, 65_536] {
        println!(
            "  {size:>6}-byte parcel: {:>7} us",
            transaction_cost(size).as_micros()
        );
    }

    let stats = driver.stats();
    println!(
        "\ndriver stats: {} transactions, {} cross-container",
        stats.transactions, stats.cross_container
    );
    assert!(stats.cross_container > u64::from(ITERS) - 1);
    println!("conclusion: cross-container routing adds no structural overhead in the\n\
              driver (one handle-table lookup either way); the real cost on hardware\n\
              is the fixed ~32us transaction, which the device-container design pays\n\
              once per device operation.");
}
