//! Ablation A3: Geofence breach handling — AnDrone recovery vs the
//! stock failsafe landing.
//!
//! Stock flight controllers respond to a geofence breach with a
//! failsafe landing, which ends the flight: every other virtual
//! drone on board loses its waypoint. AnDrone's augmented handling
//! (notify → disable → guide back → loiter → return control) keeps
//! the flight alive. This ablation runs the same two-tenant flight
//! under both policies and compares how many tenants get served.

use androne::flight::VfcState;
use androne::hal::GeoPoint;
use androne::mavlink::{deg_to_e7, FlightMode, Message};
use androne::planner::PILOT_CLIENT;
use androne::simkern::SimDuration;
use androne::vdc::{VirtualDroneSpec, WaypointSpec};
use androne::Drone;
use androne_bench::banner;

fn deploy(drone: &mut Drone, name: &str, base: &GeoPoint, north: f64, east: f64, radius: f64) {
    let p = base.offset_m(north, east, 15.0);
    drone
        .deploy_vdrone(
            name,
            VirtualDroneSpec {
                waypoints: vec![WaypointSpec {
                    latitude: p.latitude,
                    longitude: p.longitude,
                    altitude: 15.0,
                    max_radius: radius,
                }],
                max_duration: 120.0,
                energy_allotted: 40_000.0,
                continuous_devices: vec![],
                waypoint_devices: vec!["flight-control".into()],
                apps: vec![],
                app_args: Default::default(),
            },
            &[],
        )
        .expect("deploy");
}

/// Runs the scenario; `androne_recovery` selects the breach policy.
/// Returns (tenants served, flight continued).
fn run(androne_recovery: bool, seed: u64) -> (usize, bool) {
    let base = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut drone = Drone::boot(base, seed).expect("boot");
    deploy(&mut drone, "vd-a", &base, 50.0, 0.0, 30.0);
    deploy(&mut drone, "vd-b", &base, 50.0, 80.0, 30.0);

    // Fly to tenant A's waypoint; hand over control.
    assert!(drone.sitl.arm_and_takeoff(15.0, SimDuration::from_secs(30)));
    let wp_a = base.offset_m(50.0, 0.0, 15.0);
    assert!(drone.sitl.goto(wp_a, 5.0, 2.0, SimDuration::from_secs(60)));
    drone.vdc.borrow_mut().on_waypoint_arrived("vd-a", 0);
    drone.proxy.activate_vfc("vd-a");
    let mut served = 0;

    // Tenant A breaches (pushed out through the planner path).
    let outside = base.offset_m(120.0, 0.0, 15.0);
    drone.proxy.client_send(
        PILOT_CLIENT,
        Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(outside.latitude),
            lon: deg_to_e7(outside.longitude),
            alt: 15.0,
            speed: 6.0,
        },
        &mut drone.sitl,
    );

    if androne_recovery {
        // AnDrone: the proxy handles the breach in-flight.
        for _ in 0..(50.0 * 400.0) as u64 {
            drone.proxy.step(&mut drone.sitl);
        }
        if drone.proxy.vfc("vd-a").map(|v| v.state()) == Some(VfcState::Active) {
            served += 1; // Tenant A got control back.
        }
        // The flight continues to tenant B.
        drone.vdc.borrow_mut().on_waypoint_departed("vd-a", 0);
        let pos = drone.sitl.position();
        drone.proxy.finish_vfc("vd-a", pos);
        drone.proxy.client_send(
            PILOT_CLIENT,
            Message::SetMode {
                mode: FlightMode::Guided,
            },
            &mut drone.sitl,
        );
        let wp_b = base.offset_m(50.0, 80.0, 15.0);
        drone.proxy.client_send(
            PILOT_CLIENT,
            Message::SetPositionTargetGlobalInt {
                lat: deg_to_e7(wp_b.latitude),
                lon: deg_to_e7(wp_b.longitude),
                alt: 15.0,
                speed: 5.0,
            },
            &mut drone.sitl,
        );
        for _ in 0..(40.0 * 400.0) as u64 {
            drone.proxy.step(&mut drone.sitl);
            if drone.sitl.position().distance_m(&wp_b) < 2.5 {
                served += 1; // Tenant B reached.
                break;
            }
        }
        (served, true)
    } else {
        // Stock policy: a breach triggers a failsafe landing where
        // the drone is; the flight ends for everyone.
        let fence = drone.proxy.vfc("vd-a").unwrap().geofence;
        for _ in 0..(60.0 * 400.0) as u64 {
            drone.sitl.step();
            if !fence.contains(&drone.sitl.position()) {
                drone.sitl.handle_message(&Message::CommandLong {
                    command: androne::mavlink::MavCmd::NavLand,
                    params: [0.0; 7],
                });
                break;
            }
        }
        drone.sitl.run_for(SimDuration::from_secs(40));
        // Nobody else gets served; tenant A's session is over too.
        (served, !drone.sitl.on_ground())
    }
}

fn main() {
    banner(
        "Ablation A3",
        "Geofence breach: AnDrone recovery vs stock failsafe landing",
    );
    let (served_androne, continued_androne) = run(true, 301);
    let (served_stock, continued_stock) = run(false, 302);
    println!("policy              tenants served   flight continues");
    println!("AnDrone recovery    {served_androne:>14}   {continued_androne}");
    println!("stock failsafe      {served_stock:>14}   {continued_stock}");
    assert_eq!(served_androne, 2, "both tenants served under AnDrone");
    assert!(continued_androne);
    assert_eq!(served_stock, 0, "failsafe strands every tenant");
    assert!(!continued_stock, "stock flight ends on the spot");
    println!(
        "\nconclusion: AnDrone's recovery preserves the multi-tenant flight; a\n\
         stock failsafe landing would end it at the first tenant's mistake."
    );
}
