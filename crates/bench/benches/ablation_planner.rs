//! Ablation A4: VRP (simulated annealing) vs naive nearest-neighbour
//! routing.
//!
//! The paper's flight planner uses the Dorling et al. VRP. This
//! ablation compares it against the obvious greedy baseline on
//! random waypoint sets, reporting makespan and energy.

use androne::energy::DorlingModel;
use androne::hal::GeoPoint;
use androne::planner::{VrpProblem, WaypointTask};
use androne_bench::banner;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_problem(n_tasks: usize, fleet: usize, seed: u64) -> VrpProblem {
    let depot = GeoPoint::new(43.6084298, -85.8110359, 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let tasks = (0..n_tasks)
        .map(|i| WaypointTask {
            owner: format!("vd{i}"),
            position: depot.offset_m(
                rng.gen_range(-900.0..900.0),
                rng.gen_range(-900.0..900.0),
                15.0,
            ),
            service_energy_j: rng.gen_range(1_000.0..8_000.0),
            service_time_s: rng.gen_range(20.0..90.0),
        })
        .collect();
    VrpProblem {
        depot,
        tasks,
        fleet_size: fleet,
        // A long-endurance pack so every random instance is fleet-
        // feasible (infeasibility reporting is tested elsewhere).
        battery_budget_j: 400_000.0,
        model: DorlingModel::f450_prototype(),
    }
}

fn makespan(p: &VrpProblem, sol: &androne::planner::VrpSolution) -> f64 {
    sol.routes
        .iter()
        .map(|r| p.route_time_s(r))
        .fold(0.0, f64::max)
}

fn total_energy(p: &VrpProblem, sol: &androne::planner::VrpSolution) -> f64 {
    sol.routes.iter().map(|r| p.route_energy_j(r)).sum()
}

fn main() {
    banner("Ablation A4", "VRP (simulated annealing) vs nearest-neighbour");
    println!(
        "{:>5} {:>5}  {:>12} {:>12} {:>8}  {:>12} {:>12}",
        "tasks", "fleet", "NN makespan", "SA makespan", "gain", "NN energy", "SA energy"
    );
    let mut sa_wins = 0;
    let mut cases = 0;
    for (n, fleet) in [(6, 1), (8, 2), (10, 2), (12, 3)] {
        for seed in 0..3u64 {
            let p = random_problem(n, fleet, 1000 + seed);
            let greedy = p.greedy();
            let solved = p.solve(30_000, 7 + seed);
            p.validate(&solved).expect("SA solution valid");
            let (g_mk, s_mk) = (makespan(&p, &greedy), makespan(&p, &solved));
            let (g_e, s_e) = (total_energy(&p, &greedy), total_energy(&p, &solved));
            cases += 1;
            if s_mk <= g_mk + 1e-6 {
                sa_wins += 1;
            }
            println!(
                "{n:>5} {fleet:>5}  {g_mk:>11.0}s {s_mk:>11.0}s {:>7.1}%  {g_e:>11.0}J {s_e:>11.0}J",
                100.0 * (g_mk - s_mk) / g_mk
            );
        }
    }
    println!("\nSA matched or beat nearest-neighbour makespan in {sa_wins}/{cases} cases");
    assert_eq!(sa_wins, cases, "annealing never loses to its own seed");
    println!(
        "conclusion: the Dorling-style SA planner consistently shortens the\n\
         longest route, which is flight time a battery has to survive."
    );
}
