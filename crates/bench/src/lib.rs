//! # androne-bench
//!
//! Experiment harnesses for the AnDrone reproduction. Each bench
//! target regenerates one table or figure from the paper's
//! evaluation (Section 6) and prints the measured series next to the
//! paper's published values, so the *shape* comparison — who wins,
//! by what factor, where crossovers fall — is immediate.
//!
//! Run all of them with `cargo bench`, or one with e.g.
//! `cargo bench --bench fig11_realtime_latency`.

/// Prints a banner for an experiment.
pub fn banner(id: &str, title: &str) {
    println!("\n==========================================================");
    println!("{id}: {title}");
    println!("==========================================================");
}

/// Formats a measured-vs-paper comparison cell.
pub fn cell(measured: f64, paper: f64) -> String {
    format!("{measured:>8.2} (paper {paper:>8.2})")
}

/// Sample count scale factor: set `ANDRONE_BENCH_SCALE=10` for
/// 10x faster (less precise) runs; the default is full fidelity.
pub fn scale() -> u64 {
    std::env::var("ANDRONE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}
