//! General cloud file storage.
//!
//! After a flight, files apps marked via `markFileForUser()` are
//! offloaded here; the user is emailed a link and retrieves them on
//! demand (paper Figure 4).

use std::collections::BTreeMap;

use bytes::Bytes;

/// A stored flight artifact.
#[derive(Debug, Clone)]
pub struct StoredFile {
    /// Path as the app named it on the drone.
    pub path: String,
    /// File contents.
    pub data: Bytes,
    /// Flight the file came from.
    pub flight_id: u64,
}

/// Per-user cloud storage.
#[derive(Debug, Default)]
pub struct CloudStorage {
    files: BTreeMap<String, Vec<StoredFile>>,
}

impl CloudStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        CloudStorage::default()
    }

    /// Offloads one file for a user, returning the retrieval link.
    pub fn offload(
        &mut self,
        user: &str,
        flight_id: u64,
        path: impl Into<String>,
        data: impl Into<Bytes>,
    ) -> String {
        let path = path.into();
        let link = format!("https://androne.cloud/files/{user}/{flight_id}{path}");
        self.files.entry(user.to_string()).or_default().push(StoredFile {
            path,
            data: data.into(),
            flight_id,
        });
        link
    }

    /// Lists a user's files.
    pub fn list(&self, user: &str) -> &[StoredFile] {
        self.files.get(user).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Retrieves one file by path.
    pub fn fetch(&self, user: &str, path: &str) -> Option<Bytes> {
        self.files
            .get(user)?
            .iter()
            .find(|f| f.path == path)
            .map(|f| f.data.clone())
    }

    /// Total bytes stored for billing.
    pub fn bytes_for(&self, user: &str) -> u64 {
        self.list(user).iter().map(|f| f.data.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_and_fetch() {
        let mut s = CloudStorage::new();
        let link = s.offload("alice", 7, "/data/out/ortho.tif", &b"tiff-bytes"[..]);
        assert!(link.contains("alice"));
        assert!(link.contains("/data/out/ortho.tif"));
        assert_eq!(
            s.fetch("alice", "/data/out/ortho.tif").unwrap(),
            Bytes::from_static(b"tiff-bytes")
        );
        assert_eq!(s.bytes_for("alice"), 10);
        assert!(s.fetch("bob", "/data/out/ortho.tif").is_none());
    }
}
