//! # androne-cloud
//!
//! The AnDrone cloud service (paper Sections 2 and 4, Figure 4):
//!
//! - [`portal`]: the ordering workflow — waypoints, drone types, app
//!   selection with manifest-driven argument prompting, max-charge →
//!   energy conversion.
//! - [`admission`]: batched order admission — per-tenant FIFO lanes,
//!   a deterministic round-robin batch admitter, and typed
//!   backpressure when the queue is full.
//! - [`appstore`]: published apps with their AnDrone manifests.
//! - [`vdr`]: the Virtual Drone Repository storing preconfigured and
//!   interrupted virtual drones for later flights.
//! - [`storage`]: per-user flight-artifact storage with retrieval
//!   links.
//! - [`service`]: the assembled service with VRP-based flight
//!   planning, billing, and user notifications.
//! - [`facade`]: the fallible service façade — the cloud as a
//!   failure domain, with typed errors, deterministic retry, and
//!   degraded modes for fleet-scale chaos runs.

pub mod admission;
pub mod appstore;
pub mod facade;
pub mod portal;
pub mod service;
pub mod storage;
pub mod vdr;

pub use admission::{Admitted, AdmissionConfig, AdmissionError, AdmissionQueue};
pub use appstore::{AppListing, AppStore};
pub use facade::{
    AdmissionTicket, BufferedOffload, CloudError, FallibleCloud, OrderSubmitError,
};
pub use portal::{AppSelection, DroneType, OrderError, OrderRequest, PlacedOrder, Portal};
pub use service::{CloudService, Notification, NotificationKind, MAX_VDRONES_PER_FLIGHT};
pub use storage::{CloudStorage, StoredFile};
pub use vdr::{
    CompactionReport, SaveReason, SavedVirtualDrone, ShardSnapshot, VdrStats,
    VirtualDroneRepository,
};
