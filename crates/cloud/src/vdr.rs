//! The Virtual Drone Repository (VDR).
//!
//! Cloud storage for preconfigured and interrupted virtual drones
//! (paper Section 4): a virtual drone saved here — definition plus
//! container diff plus app saved-state — can be reinstated on any
//! compatible drone hardware for a later flight.
//!
//! Reinstating goes through a lease ([`VirtualDroneRepository::checkout`] /
//! [`VirtualDroneRepository::commit`] / [`VirtualDroneRepository::abandon`])
//! rather than a destructive `take`: a cloud-side fault between
//! removing the entry and re-storing it must not lose a customer's
//! virtual drone. A checked-out entry stays on the books (leased)
//! until the caller either commits the resume or abandons it back.

use std::collections::BTreeMap;

use androne_container::ContainerArchive;
use androne_vdc::VirtualDroneSpec;

/// A stored virtual drone.
#[derive(Debug, Clone)]
pub struct SavedVirtualDrone {
    /// Virtual drone name.
    pub name: String,
    /// Owning user account.
    pub owner: String,
    /// The JSON definition — always the *original* spec; resume
    /// progress is tracked by the bookkeeping fields below.
    pub spec: VirtualDroneSpec,
    /// The container archive (base layer ids + private diff).
    pub archive: ContainerArchive,
    /// Serialized app saved-state bundles.
    pub app_state: String,
    /// Why it was saved (completed / interrupted / preconfigured).
    pub reason: SaveReason,
    /// Joules left of the original allotment (resume bookkeeping).
    pub remaining_energy_j: f64,
    /// Seconds left of the original allotment (resume bookkeeping).
    pub remaining_time_s: f64,
    /// Waypoints of `spec` completed in prior flights; a resumed
    /// flight continues at this index.
    pub waypoints_completed: usize,
    /// Physical flights this virtual drone has flown on so far.
    pub flights_flown: u32,
}

impl SavedVirtualDrone {
    /// Whether any mission and allotment remain to resume.
    pub fn resumable(&self) -> bool {
        self.reason == SaveReason::Interrupted
            && self.waypoints_completed < self.spec.waypoints.len()
            && self.remaining_energy_j > 0.0
            && self.remaining_time_s > 0.0
    }

    /// The spec a resumed flight deploys with: the waypoints not yet
    /// completed, budgeted with the carried-over allotment. `None`
    /// when nothing remains to resume — per-flight billing against
    /// the truncated allotment telescopes, so summed bills across
    /// flights equal original allotment minus final remainder.
    pub fn resume_spec(&self) -> Option<VirtualDroneSpec> {
        if !self.resumable() {
            return None;
        }
        let mut spec = self.spec.clone();
        spec.waypoints = self.spec.waypoints[self.waypoints_completed..].to_vec();
        spec.energy_allotted = self.remaining_energy_j;
        spec.max_duration = self.remaining_time_s;
        Some(spec)
    }
}

/// Why a virtual drone landed in the VDR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveReason {
    /// Preconfigured for later use.
    Preconfigured,
    /// Flight ended normally; stored for reuse.
    Completed,
    /// Interrupted (energy exhausted, weather, etc.); resume later.
    Interrupted,
}

/// The repository.
#[derive(Debug, Default)]
pub struct VirtualDroneRepository {
    entries: BTreeMap<String, SavedVirtualDrone>,
    /// Checked-out entries awaiting commit/abandon. Still owned by
    /// the repository: a caller that dies mid-resume loses its lease,
    /// not the customer's drone.
    leased: BTreeMap<String, SavedVirtualDrone>,
}

impl VirtualDroneRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        VirtualDroneRepository::default()
    }

    /// Stores (or replaces) a virtual drone.
    pub fn store(&mut self, saved: SavedVirtualDrone) {
        self.entries.insert(saved.name.clone(), saved);
    }

    /// Retrieves a virtual drone by name.
    pub fn get(&self, name: &str) -> Option<&SavedVirtualDrone> {
        self.entries.get(name)
    }

    /// Checks out a virtual drone for reinstatement. The caller gets
    /// a copy to deploy from; the entry moves to the lease table and
    /// is no longer visible to `get`/listings until [`Self::commit`]
    /// (resume succeeded; drop the old copy) or [`Self::abandon`]
    /// (resume failed; put it back) resolves the lease. A name
    /// already leased cannot be checked out again.
    pub fn checkout(&mut self, name: &str) -> Option<SavedVirtualDrone> {
        if self.leased.contains_key(name) {
            return None;
        }
        let entry = self.entries.remove(name)?;
        let copy = entry.clone();
        self.leased.insert(name.to_string(), entry);
        Some(copy)
    }

    /// Resolves a lease after a successful resume: the checked-out
    /// copy has been superseded (typically by a fresh `store`), so
    /// the leased original is dropped. Returns whether a lease
    /// existed.
    pub fn commit(&mut self, name: &str) -> bool {
        self.leased.remove(name).is_some()
    }

    /// Resolves a lease after a failed resume: the original entry
    /// returns to the repository untouched. Returns whether a lease
    /// existed.
    pub fn abandon(&mut self, name: &str) -> bool {
        match self.leased.remove(name) {
            Some(entry) => {
                self.entries.insert(name.to_string(), entry);
                true
            }
            None => false,
        }
    }

    /// Names currently checked out and unresolved.
    pub fn leased_names(&self) -> Vec<&str> {
        self.leased.keys().map(String::as_str).collect()
    }

    /// Lists a user's stored virtual drones.
    pub fn list_for(&self, owner: &str) -> Vec<&SavedVirtualDrone> {
        self.entries.values().filter(|e| e.owner == owner).collect()
    }

    /// Virtual drones awaiting resumption.
    pub fn interrupted(&self) -> Vec<&SavedVirtualDrone> {
        self.entries
            .values()
            .filter(|e| e.reason == SaveReason::Interrupted)
            .collect()
    }

    /// Total bytes stored (diffs only; base layers live once on each
    /// drone). Leased entries still count — they are not gone.
    pub fn stored_bytes(&self) -> u64 {
        self.entries
            .values()
            .chain(self.leased.values())
            .map(|e| e.archive.stored_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_container::{ContainerKind, Layer};

    fn saved(name: &str, reason: SaveReason) -> SavedVirtualDrone {
        let mut diff = Layer::new();
        diff.write("/data/state.json", "{\"wp\":1}");
        let spec = VirtualDroneSpec::example_survey();
        SavedVirtualDrone {
            name: name.into(),
            owner: "alice".into(),
            remaining_energy_j: spec.energy_allotted,
            remaining_time_s: spec.max_duration,
            waypoints_completed: 0,
            flights_flown: 0,
            spec,
            archive: ContainerArchive {
                name: name.into(),
                kind: ContainerKind::VirtualDrone,
                base_stack: vec![],
                diff,
            },
            app_state: String::new(),
            reason,
        }
    }

    #[test]
    fn store_checkout_commit_round_trip() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Interrupted));
        assert_eq!(vdr.list_for("alice").len(), 1);
        assert_eq!(vdr.interrupted().len(), 1);
        let copy = vdr.checkout("vd1").unwrap();
        assert_eq!(copy.name, "vd1");
        // Checked out: invisible to lookups, held on the lease table.
        assert!(vdr.get("vd1").is_none());
        assert!(vdr.interrupted().is_empty());
        assert_eq!(vdr.leased_names(), vec!["vd1"]);
        // Resume succeeded: the new state is stored, the lease drops.
        let mut resumed = copy;
        resumed.waypoints_completed = 1;
        resumed.flights_flown = 1;
        vdr.store(resumed);
        assert!(vdr.commit("vd1"));
        assert!(vdr.leased_names().is_empty());
        assert_eq!(vdr.get("vd1").unwrap().waypoints_completed, 1);
    }

    #[test]
    fn abandon_restores_the_original_entry() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Interrupted));
        let _copy = vdr.checkout("vd1").unwrap();
        assert!(vdr.get("vd1").is_none(), "entry is leased out");
        // The caller aborted mid-resume (cloud fault, drone error):
        // nothing is lost, the entry comes back verbatim.
        assert!(vdr.abandon("vd1"));
        let back = vdr.get("vd1").unwrap();
        assert_eq!(back.reason, SaveReason::Interrupted);
        assert_eq!(vdr.interrupted().len(), 1);
        assert!(!vdr.abandon("vd1"), "lease already resolved");
    }

    #[test]
    fn double_checkout_is_refused() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Interrupted));
        assert!(vdr.checkout("vd1").is_some());
        assert!(vdr.checkout("vd1").is_none(), "lease held");
        assert!(!vdr.commit("missing"), "unknown lease");
    }

    #[test]
    fn interrupted_lists_only_resumable_reasons() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Completed));
        vdr.store(saved("vd2", SaveReason::Interrupted));
        vdr.store(saved("vd3", SaveReason::Preconfigured));
        let names: Vec<&str> = vdr.interrupted().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["vd2"]);
    }

    #[test]
    fn resume_spec_truncates_mission_and_carries_allotment() {
        let mut s = saved("vd1", SaveReason::Interrupted);
        s.waypoints_completed = 1;
        s.remaining_energy_j = 12_000.0;
        s.remaining_time_s = 200.0;
        let spec = s.resume_spec().unwrap();
        assert_eq!(spec.waypoints.len(), s.spec.waypoints.len() - 1);
        assert_eq!(spec.waypoints[0], s.spec.waypoints[1]);
        assert_eq!(spec.energy_allotted, 12_000.0);
        assert_eq!(spec.max_duration, 200.0);
        let done = {
            let mut d = saved("vd1", SaveReason::Interrupted);
            d.waypoints_completed = d.spec.waypoints.len();
            d
        };
        assert!(done.resume_spec().is_none());
    }

    #[test]
    fn resume_bookkeeping_tracks_allotment_and_progress() {
        let mut s = saved("vd1", SaveReason::Interrupted);
        assert!(s.resumable());
        s.remaining_energy_j = 0.0;
        assert!(!s.resumable(), "no energy left to resume on");
        let mut s = saved("vd1", SaveReason::Interrupted);
        s.waypoints_completed = s.spec.waypoints.len();
        assert!(!s.resumable(), "mission already done");
        let s = saved("vd1", SaveReason::Completed);
        assert!(!s.resumable(), "completed drones are not resumed");
    }

    #[test]
    fn storage_counts_diff_bytes_only() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Completed));
        let expected = "{\"wp\":1}".len() as u64;
        assert_eq!(vdr.stored_bytes(), expected, "just the diff bytes");
        let _ = vdr.checkout("vd1");
        assert_eq!(vdr.stored_bytes(), expected, "leased entries still count");
    }

    #[test]
    fn listing_is_per_owner() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Completed));
        assert!(vdr.list_for("bob").is_empty());
        let owned: Vec<&str> = vdr.list_for("alice").iter().map(|e| e.name.as_str()).collect();
        assert_eq!(owned, vec!["vd1"]);
    }
}
