//! The Virtual Drone Repository (VDR).
//!
//! Cloud storage for preconfigured and interrupted virtual drones
//! (paper Section 4): a virtual drone saved here — definition plus
//! container diff plus app saved-state — can be reinstated on any
//! compatible drone hardware for a later flight.

use std::collections::BTreeMap;

use androne_container::ContainerArchive;
use androne_vdc::VirtualDroneSpec;

/// A stored virtual drone.
#[derive(Debug, Clone)]
pub struct SavedVirtualDrone {
    /// Virtual drone name.
    pub name: String,
    /// Owning user account.
    pub owner: String,
    /// The JSON definition.
    pub spec: VirtualDroneSpec,
    /// The container archive (base layer ids + private diff).
    pub archive: ContainerArchive,
    /// Serialized app saved-state bundles.
    pub app_state: String,
    /// Why it was saved (completed / interrupted / preconfigured).
    pub reason: SaveReason,
}

/// Why a virtual drone landed in the VDR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveReason {
    /// Preconfigured for later use.
    Preconfigured,
    /// Flight ended normally; stored for reuse.
    Completed,
    /// Interrupted (energy exhausted, weather, etc.); resume later.
    Interrupted,
}

/// The repository.
#[derive(Debug, Default)]
pub struct VirtualDroneRepository {
    entries: BTreeMap<String, SavedVirtualDrone>,
}

impl VirtualDroneRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        VirtualDroneRepository::default()
    }

    /// Stores (or replaces) a virtual drone.
    pub fn store(&mut self, saved: SavedVirtualDrone) {
        self.entries.insert(saved.name.clone(), saved);
    }

    /// Retrieves a virtual drone by name.
    pub fn get(&self, name: &str) -> Option<&SavedVirtualDrone> {
        self.entries.get(name)
    }

    /// Removes and returns a virtual drone (when reinstating it).
    pub fn take(&mut self, name: &str) -> Option<SavedVirtualDrone> {
        self.entries.remove(name)
    }

    /// Lists a user's stored virtual drones.
    pub fn list_for(&self, owner: &str) -> Vec<&SavedVirtualDrone> {
        self.entries.values().filter(|e| e.owner == owner).collect()
    }

    /// Virtual drones awaiting resumption.
    pub fn interrupted(&self) -> Vec<&SavedVirtualDrone> {
        self.entries
            .values()
            .filter(|e| e.reason == SaveReason::Interrupted)
            .collect()
    }

    /// Total bytes stored (diffs only; base layers live once on each
    /// drone).
    pub fn stored_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.archive.stored_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_container::{ContainerKind, Layer};

    fn saved(name: &str, reason: SaveReason) -> SavedVirtualDrone {
        let mut diff = Layer::new();
        diff.write("/data/state.json", "{\"wp\":1}");
        SavedVirtualDrone {
            name: name.into(),
            owner: "alice".into(),
            spec: VirtualDroneSpec::example_survey(),
            archive: ContainerArchive {
                name: name.into(),
                kind: ContainerKind::VirtualDrone,
                base_stack: vec![],
                diff,
            },
            app_state: String::new(),
            reason,
        }
    }

    #[test]
    fn store_take_round_trip() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Interrupted));
        assert_eq!(vdr.list_for("alice").len(), 1);
        assert_eq!(vdr.interrupted().len(), 1);
        let back = vdr.take("vd1").unwrap();
        assert_eq!(back.name, "vd1");
        assert!(vdr.get("vd1").is_none());
    }

    #[test]
    fn storage_counts_diff_bytes_only() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Completed));
        let expected = "{\"wp\":1}".len() as u64;
        assert_eq!(vdr.stored_bytes(), expected, "just the diff bytes");
    }

    #[test]
    fn listing_is_per_owner() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Completed));
        assert!(vdr.list_for("bob").is_empty());
    }
}
