//! The Virtual Drone Repository (VDR).
//!
//! Cloud storage for preconfigured and interrupted virtual drones
//! (paper Section 4): a virtual drone saved here — definition plus
//! container diff plus app saved-state — can be reinstated on any
//! compatible drone hardware for a later flight.
//!
//! Reinstating goes through a lease ([`VirtualDroneRepository::checkout`] /
//! [`VirtualDroneRepository::commit`] / [`VirtualDroneRepository::abandon`])
//! rather than a destructive `take`: a cloud-side fault between
//! removing the entry and re-storing it must not lose a customer's
//! virtual drone. A checked-out entry stays on the books (leased)
//! until the caller either commits the resume or abandons it back.

use std::collections::BTreeMap;

use androne_container::ContainerArchive;
use androne_simkern::StateHasher;
use androne_vdc::VirtualDroneSpec;

/// A stored virtual drone.
#[derive(Debug, Clone)]
pub struct SavedVirtualDrone {
    /// Virtual drone name.
    pub name: String,
    /// Owning user account.
    pub owner: String,
    /// The JSON definition — always the *original* spec; resume
    /// progress is tracked by the bookkeeping fields below.
    pub spec: VirtualDroneSpec,
    /// The container archive (base layer ids + private diff).
    pub archive: ContainerArchive,
    /// Serialized app saved-state bundles.
    pub app_state: String,
    /// Why it was saved (completed / interrupted / preconfigured).
    pub reason: SaveReason,
    /// Joules left of the original allotment (resume bookkeeping).
    pub remaining_energy_j: f64,
    /// Seconds left of the original allotment (resume bookkeeping).
    pub remaining_time_s: f64,
    /// Waypoints of `spec` completed in prior flights; a resumed
    /// flight continues at this index.
    pub waypoints_completed: usize,
    /// Physical flights this virtual drone has flown on so far.
    pub flights_flown: u32,
}

impl SavedVirtualDrone {
    /// Whether any mission and allotment remain to resume.
    pub fn resumable(&self) -> bool {
        self.reason == SaveReason::Interrupted
            && self.waypoints_completed < self.spec.waypoints.len()
            && self.remaining_energy_j > 0.0
            && self.remaining_time_s > 0.0
    }

    /// The spec a resumed flight deploys with: the waypoints not yet
    /// completed, budgeted with the carried-over allotment. `None`
    /// when nothing remains to resume — per-flight billing against
    /// the truncated allotment telescopes, so summed bills across
    /// flights equal original allotment minus final remainder.
    pub fn resume_spec(&self) -> Option<VirtualDroneSpec> {
        if !self.resumable() {
            return None;
        }
        let mut spec = self.spec.clone();
        spec.waypoints = self.spec.waypoints[self.waypoints_completed..].to_vec();
        spec.energy_allotted = self.remaining_energy_j;
        spec.max_duration = self.remaining_time_s;
        Some(spec)
    }
}

/// Why a virtual drone landed in the VDR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveReason {
    /// Preconfigured for later use.
    Preconfigured,
    /// Flight ended normally; stored for reuse.
    Completed,
    /// Interrupted (energy exhausted, weather, etc.); resume later.
    Interrupted,
}

/// One shard of the repository: an independent entry table, lease
/// table, and save journal.
#[derive(Debug, Default)]
struct VdrShard {
    entries: BTreeMap<String, SavedVirtualDrone>,
    /// Checked-out entries awaiting commit/abandon. Still owned by
    /// the shard: a caller that dies mid-resume loses its lease, not
    /// the customer's drone.
    leased: BTreeMap<String, SavedVirtualDrone>,
    /// Append-only record of every save: `(name, diff bytes)`. A
    /// telescoping resume re-stores the same name each flight; the
    /// superseded diffs are reclaimed by [`VirtualDroneRepository::compact`].
    journal: Vec<(String, u64)>,
    compacted_saves: u64,
    reclaimed_bytes: u64,
}

impl VdrShard {
    /// Folds this shard's durable state (entries and leases, in name
    /// order) into a digest. Spec progress, allotment remainders, and
    /// archive size are all covered, so two repositories agree iff
    /// every stored drone agrees.
    fn fold_digest(&self, h: &mut StateHasher) {
        for (name, e) in &self.entries {
            h.write_str(name);
            fold_entry(h, e);
        }
        for (name, e) in &self.leased {
            h.write_str("leased:");
            h.write_str(name);
            fold_entry(h, e);
        }
    }
}

fn fold_entry(h: &mut StateHasher, e: &SavedVirtualDrone) {
    h.write_str(&e.owner);
    h.write_u64(match e.reason {
        SaveReason::Preconfigured => 0,
        SaveReason::Completed => 1,
        SaveReason::Interrupted => 2,
    });
    h.write_f64(e.remaining_energy_j);
    h.write_f64(e.remaining_time_s);
    h.write_u64(e.waypoints_completed as u64);
    h.write_u64(u64::from(e.flights_flown));
    h.write_u64(e.archive.stored_bytes());
    h.write_str(&e.app_state);
}

/// A point-in-time view of one shard, for metrics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    pub shard: usize,
    pub entries: usize,
    pub leased: usize,
    pub stored_bytes: u64,
    pub journal_len: usize,
    pub digest: u64,
}

/// What one [`VirtualDroneRepository::compact`] pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Superseded telescoped saves dropped from the journals.
    pub compacted_saves: u64,
    /// Diff bytes those saves pinned.
    pub reclaimed_bytes: u64,
}

/// Aggregate repository statistics. Totals only — every field is
/// invariant under the shard count (a partition of the same names
/// sums to the same totals), so metrics built from them stay
/// digest-identical across `shards` settings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VdrStats {
    pub shards: usize,
    pub entries: usize,
    pub leased: usize,
    pub journal_entries: usize,
    pub compacted_saves: u64,
    pub reclaimed_bytes: u64,
}

/// The repository, sharded by FNV hash of the virtual-drone name.
///
/// Every public operation is keyed by name and routed to exactly one
/// shard, so shards never coordinate; listings merge across shards in
/// name order, which makes every observable result — and
/// [`Self::digest`] — independent of the shard count.
#[derive(Debug)]
pub struct VirtualDroneRepository {
    shards: Vec<VdrShard>,
}

impl Default for VirtualDroneRepository {
    fn default() -> Self {
        VirtualDroneRepository::new()
    }
}

impl VirtualDroneRepository {
    /// Creates an empty single-shard repository.
    pub fn new() -> Self {
        VirtualDroneRepository::with_shards(1)
    }

    /// Creates an empty repository with `shards` shards (min 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1);
        VirtualDroneRepository {
            shards: (0..n).map(|_| VdrShard::default()).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic name → shard routing (FNV-1a via the sim state
    /// hasher; no process-seeded hashing anywhere near here).
    fn shard_index(&self, name: &str) -> usize {
        let mut h = StateHasher::new();
        h.write_str(name);
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn shard(&self, name: &str) -> &VdrShard {
        let i = self.shard_index(name);
        &self.shards[i]
    }

    fn shard_mut(&mut self, name: &str) -> &mut VdrShard {
        let i = self.shard_index(name);
        &mut self.shards[i]
    }

    /// Stores (or replaces) a virtual drone, journaling the save.
    pub fn store(&mut self, saved: SavedVirtualDrone) {
        let shard = self.shard_mut(&saved.name);
        shard
            .journal
            .push((saved.name.clone(), saved.archive.stored_bytes()));
        shard.entries.insert(saved.name.clone(), saved);
    }

    /// Retrieves a virtual drone by name.
    pub fn get(&self, name: &str) -> Option<&SavedVirtualDrone> {
        self.shard(name).entries.get(name)
    }

    /// Checks out a virtual drone for reinstatement. The caller gets
    /// a copy to deploy from; the entry moves to its shard's lease
    /// table and is no longer visible to `get`/listings until
    /// [`Self::commit`] (resume succeeded; drop the old copy) or
    /// [`Self::abandon`] (resume failed; put it back) resolves the
    /// lease. A name already leased cannot be checked out again.
    pub fn checkout(&mut self, name: &str) -> Option<SavedVirtualDrone> {
        let shard = self.shard_mut(name);
        if shard.leased.contains_key(name) {
            return None;
        }
        let entry = shard.entries.remove(name)?;
        let copy = entry.clone();
        shard.leased.insert(name.to_string(), entry);
        Some(copy)
    }

    /// Resolves a lease after a successful resume: the checked-out
    /// copy has been superseded (typically by a fresh `store`), so
    /// the leased original is dropped. Returns whether a lease
    /// existed.
    pub fn commit(&mut self, name: &str) -> bool {
        self.shard_mut(name).leased.remove(name).is_some()
    }

    /// Resolves a lease after a failed resume: the original entry
    /// returns to its shard untouched. Returns whether a lease
    /// existed.
    pub fn abandon(&mut self, name: &str) -> bool {
        let shard = self.shard_mut(name);
        match shard.leased.remove(name) {
            Some(entry) => {
                shard.entries.insert(name.to_string(), entry);
                true
            }
            None => false,
        }
    }

    /// Names currently checked out and unresolved, in name order
    /// across shards.
    pub fn leased_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .shards
            .iter()
            .flat_map(|s| s.leased.keys().map(String::as_str))
            .collect();
        names.sort_unstable();
        names
    }

    /// Lists a user's stored virtual drones, in name order across
    /// shards.
    pub fn list_for(&self, owner: &str) -> Vec<&SavedVirtualDrone> {
        let mut out: Vec<&SavedVirtualDrone> = self
            .shards
            .iter()
            .flat_map(|s| s.entries.values().filter(|e| e.owner == owner))
            .collect();
        out.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Virtual drones awaiting resumption, in name order across
    /// shards.
    pub fn interrupted(&self) -> Vec<&SavedVirtualDrone> {
        let mut out: Vec<&SavedVirtualDrone> = self
            .shards
            .iter()
            .flat_map(|s| s.entries.values().filter(|e| e.reason == SaveReason::Interrupted))
            .collect();
        out.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Total bytes stored (diffs only; base layers live once on each
    /// drone). Leased entries still count — they are not gone.
    pub fn stored_bytes(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.entries.values().chain(s.leased.values()))
            .map(|e| e.archive.stored_bytes())
            .sum()
    }

    /// Compacts every shard's save journal: for each name, only the
    /// most recent save of a still-stored drone is retained; every
    /// superseded (telescoped) save is dropped and its diff bytes
    /// counted as reclaimed. Returns what this pass reclaimed.
    pub fn compact(&mut self) -> CompactionReport {
        let mut report = CompactionReport::default();
        for shard in &mut self.shards {
            let mut dropped_saves = 0u64;
            let mut dropped_bytes = 0u64;
            let mut kept: Vec<(String, u64)> = Vec::new();
            let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
            // Walk newest-first so the latest save per name wins.
            let journal = std::mem::take(&mut shard.journal);
            for (name, bytes) in journal.iter().rev() {
                let live =
                    shard.entries.contains_key(name) || shard.leased.contains_key(name);
                if live && !seen.contains_key(name.as_str()) {
                    seen.insert(name, ());
                    kept.push((name.clone(), *bytes));
                } else {
                    dropped_saves += 1;
                    dropped_bytes += bytes;
                }
            }
            kept.reverse();
            shard.journal = kept;
            shard.compacted_saves += dropped_saves;
            shard.reclaimed_bytes += dropped_bytes;
            report.compacted_saves += dropped_saves;
            report.reclaimed_bytes += dropped_bytes;
        }
        report
    }

    /// Point-in-time per-shard snapshots (metrics and tests; the
    /// shard-local digests are *not* shard-count invariant — use
    /// [`Self::digest`] for cross-configuration comparison).
    pub fn snapshot(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut h = StateHasher::new();
                s.fold_digest(&mut h);
                ShardSnapshot {
                    shard: i,
                    entries: s.entries.len(),
                    leased: s.leased.len(),
                    stored_bytes: s
                        .entries
                        .values()
                        .chain(s.leased.values())
                        .map(|e| e.archive.stored_bytes())
                        .sum(),
                    journal_len: s.journal.len(),
                    digest: h.finish(),
                }
            })
            .collect()
    }

    /// Aggregate totals across shards (shard-count invariant).
    pub fn stats(&self) -> VdrStats {
        let mut st = VdrStats {
            shards: self.shards.len(),
            ..VdrStats::default()
        };
        for s in &self.shards {
            st.entries += s.entries.len();
            st.leased += s.leased.len();
            st.journal_entries += s.journal.len();
            st.compacted_saves += s.compacted_saves;
            st.reclaimed_bytes += s.reclaimed_bytes;
        }
        st
    }

    /// Digest of the full repository contents, folded in global name
    /// order — identical for any shard count holding the same drones.
    pub fn digest(&self) -> u64 {
        let mut entries: Vec<(&String, &SavedVirtualDrone, bool)> = Vec::new();
        for s in &self.shards {
            entries.extend(s.entries.iter().map(|(n, e)| (n, e, false)));
            entries.extend(s.leased.iter().map(|(n, e)| (n, e, true)));
        }
        entries.sort_unstable_by(|a, b| (a.0, a.2).cmp(&(b.0, b.2)));
        let mut h = StateHasher::new();
        for (name, e, leased) in entries {
            if leased {
                h.write_str("leased:");
            }
            h.write_str(name);
            fold_entry(&mut h, e);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_container::{ContainerKind, Layer};

    fn saved(name: &str, reason: SaveReason) -> SavedVirtualDrone {
        let mut diff = Layer::new();
        diff.write("/data/state.json", "{\"wp\":1}");
        let spec = VirtualDroneSpec::example_survey();
        SavedVirtualDrone {
            name: name.into(),
            owner: "alice".into(),
            remaining_energy_j: spec.energy_allotted,
            remaining_time_s: spec.max_duration,
            waypoints_completed: 0,
            flights_flown: 0,
            spec,
            archive: ContainerArchive {
                name: name.into(),
                kind: ContainerKind::VirtualDrone,
                base_stack: vec![],
                diff,
            },
            app_state: String::new(),
            reason,
        }
    }

    #[test]
    fn store_checkout_commit_round_trip() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Interrupted));
        assert_eq!(vdr.list_for("alice").len(), 1);
        assert_eq!(vdr.interrupted().len(), 1);
        let copy = vdr.checkout("vd1").unwrap();
        assert_eq!(copy.name, "vd1");
        // Checked out: invisible to lookups, held on the lease table.
        assert!(vdr.get("vd1").is_none());
        assert!(vdr.interrupted().is_empty());
        assert_eq!(vdr.leased_names(), vec!["vd1"]);
        // Resume succeeded: the new state is stored, the lease drops.
        let mut resumed = copy;
        resumed.waypoints_completed = 1;
        resumed.flights_flown = 1;
        vdr.store(resumed);
        assert!(vdr.commit("vd1"));
        assert!(vdr.leased_names().is_empty());
        assert_eq!(vdr.get("vd1").unwrap().waypoints_completed, 1);
    }

    #[test]
    fn abandon_restores_the_original_entry() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Interrupted));
        let _copy = vdr.checkout("vd1").unwrap();
        assert!(vdr.get("vd1").is_none(), "entry is leased out");
        // The caller aborted mid-resume (cloud fault, drone error):
        // nothing is lost, the entry comes back verbatim.
        assert!(vdr.abandon("vd1"));
        let back = vdr.get("vd1").unwrap();
        assert_eq!(back.reason, SaveReason::Interrupted);
        assert_eq!(vdr.interrupted().len(), 1);
        assert!(!vdr.abandon("vd1"), "lease already resolved");
    }

    #[test]
    fn double_checkout_is_refused() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Interrupted));
        assert!(vdr.checkout("vd1").is_some());
        assert!(vdr.checkout("vd1").is_none(), "lease held");
        assert!(!vdr.commit("missing"), "unknown lease");
    }

    #[test]
    fn interrupted_lists_only_resumable_reasons() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Completed));
        vdr.store(saved("vd2", SaveReason::Interrupted));
        vdr.store(saved("vd3", SaveReason::Preconfigured));
        let names: Vec<&str> = vdr.interrupted().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["vd2"]);
    }

    #[test]
    fn resume_spec_truncates_mission_and_carries_allotment() {
        let mut s = saved("vd1", SaveReason::Interrupted);
        s.waypoints_completed = 1;
        s.remaining_energy_j = 12_000.0;
        s.remaining_time_s = 200.0;
        let spec = s.resume_spec().unwrap();
        assert_eq!(spec.waypoints.len(), s.spec.waypoints.len() - 1);
        assert_eq!(spec.waypoints[0], s.spec.waypoints[1]);
        assert_eq!(spec.energy_allotted, 12_000.0);
        assert_eq!(spec.max_duration, 200.0);
        let done = {
            let mut d = saved("vd1", SaveReason::Interrupted);
            d.waypoints_completed = d.spec.waypoints.len();
            d
        };
        assert!(done.resume_spec().is_none());
    }

    #[test]
    fn resume_bookkeeping_tracks_allotment_and_progress() {
        let mut s = saved("vd1", SaveReason::Interrupted);
        assert!(s.resumable());
        s.remaining_energy_j = 0.0;
        assert!(!s.resumable(), "no energy left to resume on");
        let mut s = saved("vd1", SaveReason::Interrupted);
        s.waypoints_completed = s.spec.waypoints.len();
        assert!(!s.resumable(), "mission already done");
        let s = saved("vd1", SaveReason::Completed);
        assert!(!s.resumable(), "completed drones are not resumed");
    }

    #[test]
    fn storage_counts_diff_bytes_only() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Completed));
        let expected = "{\"wp\":1}".len() as u64;
        assert_eq!(vdr.stored_bytes(), expected, "just the diff bytes");
        let _ = vdr.checkout("vd1");
        assert_eq!(vdr.stored_bytes(), expected, "leased entries still count");
    }

    #[test]
    fn listing_is_per_owner() {
        let mut vdr = VirtualDroneRepository::new();
        vdr.store(saved("vd1", SaveReason::Completed));
        assert!(vdr.list_for("bob").is_empty());
        let owned: Vec<&str> = vdr.list_for("alice").iter().map(|e| e.name.as_str()).collect();
        assert_eq!(owned, vec!["vd1"]);
    }
}
