//! The AnDrone web portal: ordering virtual drones.
//!
//! Implements the paper's Section 2 ordering workflow: pick
//! waypoints, a time window, and a drone type; select apps from the
//! store (the portal prompts for each argument the app's AnDrone
//! manifest declares); set a maximum billing charge (which becomes
//! the energy allotment); optionally request direct access with
//! extra device grants.

use std::collections::BTreeMap;

use androne_android::AccessType;
use androne_energy::PriceSchedule;
use androne_vdc::{SpecError, VirtualDroneSpec, WaypointSpec};

use crate::appstore::AppStore;

/// A drone type offered by the provider.
#[derive(Debug, Clone)]
pub struct DroneType {
    /// Catalog name ("video", "multispectral", ...).
    pub name: String,
    /// Description shown to users.
    pub description: String,
    /// Devices physically present on this drone type.
    pub devices: Vec<String>,
}

/// An app selection within an order.
#[derive(Debug, Clone)]
pub struct AppSelection {
    /// Package from the app store.
    pub package: String,
    /// Arguments the user supplied for it.
    pub args: BTreeMap<String, serde_json::Value>,
}

/// A portal order.
#[derive(Debug, Clone)]
pub struct OrderRequest {
    /// Ordering user.
    pub user: String,
    /// Waypoints to visit.
    pub waypoints: Vec<WaypointSpec>,
    /// Catalog drone type.
    pub drone_type: String,
    /// Apps to install.
    pub apps: Vec<AppSelection>,
    /// Extra devices for direct (advanced) access, spec spelling.
    pub extra_waypoint_devices: Vec<String>,
    /// Extra continuous devices for direct access.
    pub extra_continuous_devices: Vec<String>,
    /// Maximum billing charge, cents (converted to the energy
    /// allotment).
    pub max_charge_cents: f64,
    /// Maximum operating duration, seconds.
    pub max_duration_s: f64,
    /// Whether the user launches immediately or is flexible (drives
    /// when the operating-window estimate is sent).
    pub flexible_schedule: bool,
}

/// Ordering errors.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderError {
    /// Drone type not in the catalog.
    UnknownDroneType(String),
    /// App not in the store.
    UnknownApp(String),
    /// A required manifest argument was not supplied.
    MissingArgument {
        /// The app needing the argument.
        package: String,
        /// The argument name.
        argument: String,
    },
    /// The assembled definition failed validation.
    Spec(SpecError),
    /// A waypoint requests a geofence beyond the provider's cap.
    GeofenceTooLarge {
        /// Waypoint index.
        waypoint: usize,
        /// Requested radius, m.
        requested: f64,
        /// Provider cap, m.
        max: f64,
    },
    /// The order needs a device the selected drone type lacks.
    DeviceNotOnDroneType {
        /// The missing device.
        device: String,
        /// The drone type.
        drone_type: String,
    },
    /// An app's launch arguments could not be serialized into the
    /// order manifest.
    ArgsUnserializable {
        /// The app whose arguments failed to serialize.
        package: String,
    },
}

impl std::fmt::Display for OrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderError::UnknownDroneType(t) => write!(f, "unknown drone type '{t}'"),
            OrderError::UnknownApp(p) => write!(f, "unknown app '{p}'"),
            OrderError::MissingArgument { package, argument } => {
                write!(f, "app '{package}' requires argument '{argument}'")
            }
            OrderError::Spec(e) => write!(f, "invalid order: {e}"),
            OrderError::GeofenceTooLarge {
                waypoint,
                requested,
                max,
            } => write!(
                f,
                "waypoint {waypoint} requests a {requested} m geofence (provider max {max} m)"
            ),
            OrderError::DeviceNotOnDroneType { device, drone_type } => {
                write!(f, "device '{device}' is not on drone type '{drone_type}'")
            }
            OrderError::ArgsUnserializable { package } => {
                write!(f, "arguments for app '{package}' cannot be serialized")
            }
        }
    }
}

impl std::error::Error for OrderError {}

/// A successfully placed order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedOrder {
    /// Order id.
    pub order_id: u64,
    /// Ordering user.
    pub user: String,
    /// Name the virtual drone will run under.
    pub vd_name: String,
    /// The assembled virtual drone definition.
    pub spec: VirtualDroneSpec,
    /// Whether the schedule is flexible.
    pub flexible_schedule: bool,
}

/// The portal.
pub struct Portal {
    /// Drone-type catalog.
    pub catalog: Vec<DroneType>,
    /// Price schedule for the energy conversion.
    pub prices: PriceSchedule,
    /// Provider cap on per-waypoint geofence radius, meters ("up to
    /// a maximum size", paper Section 2).
    pub max_geofence_radius_m: f64,
    /// Default geofence radius applied when a waypoint requests none
    /// (radius 0).
    pub default_geofence_radius_m: f64,
    next_order: u64,
}

impl Portal {
    /// Creates a portal with the default catalog and prices.
    pub fn new() -> Self {
        Portal {
            catalog: vec![
                DroneType {
                    name: "video".into(),
                    description: "Drones specializing in obtaining video".into(),
                    devices: vec!["camera".into(), "gimbal".into(), "gps".into()],
                },
                DroneType {
                    name: "sensor".into(),
                    description: "Drones equipped with specialized sensors".into(),
                    devices: vec!["sensors".into(), "gps".into()],
                },
            ],
            prices: PriceSchedule::default_schedule(),
            max_geofence_radius_m: 100.0,
            default_geofence_radius_m: 30.0,
            next_order: 1,
        }
    }

    /// Places an order, assembling and validating the virtual drone
    /// definition.
    pub fn place_order(
        &mut self,
        store: &AppStore,
        req: OrderRequest,
    ) -> Result<PlacedOrder, OrderError> {
        let Some(drone_type) = self.catalog.iter().find(|t| t.name == req.drone_type) else {
            return Err(OrderError::UnknownDroneType(req.drone_type));
        };
        let drone_type = drone_type.clone();

        // Geofence sizing: apply the default where none was given,
        // cap at the provider maximum.
        let mut waypoints = req.waypoints;
        for (i, wp) in waypoints.iter_mut().enumerate() {
            if wp.max_radius <= 0.0 {
                wp.max_radius = self.default_geofence_radius_m;
            }
            if wp.max_radius > self.max_geofence_radius_m {
                return Err(OrderError::GeofenceTooLarge {
                    waypoint: i,
                    requested: wp.max_radius,
                    max: self.max_geofence_radius_m,
                });
            }
        }

        let mut waypoint_devices = req.extra_waypoint_devices.clone();
        let mut continuous_devices = req.extra_continuous_devices.clone();
        let mut apps = Vec::new();
        let mut app_args = BTreeMap::new();

        for selection in &req.apps {
            let listing = store
                .get(&selection.package)
                .ok_or_else(|| OrderError::UnknownApp(selection.package.clone()))?;
            // The portal prompts for each declared argument; required
            // ones must be present.
            for arg in &listing.manifest.arguments {
                if arg.required && !selection.args.contains_key(&arg.name) {
                    return Err(OrderError::MissingArgument {
                        package: selection.package.clone(),
                        argument: arg.name.clone(),
                    });
                }
            }
            for perm in &listing.manifest.permissions {
                let name = perm.device.to_string();
                match perm.access {
                    AccessType::Waypoint => {
                        if !waypoint_devices.contains(&name) {
                            waypoint_devices.push(name);
                        }
                    }
                    AccessType::Continuous => {
                        if !continuous_devices.contains(&name) {
                            continuous_devices.push(name);
                        }
                    }
                }
            }
            apps.push(format!("{}.apk", selection.package));
            let args = serde_json::to_value(&selection.args).map_err(|_| {
                OrderError::ArgsUnserializable {
                    package: selection.package.clone(),
                }
            })?;
            app_args.insert(selection.package.clone(), args);
        }

        // The selected drone type must physically carry every device
        // ordered (flight control is on every drone).
        for device in waypoint_devices.iter().chain(&continuous_devices) {
            if device != "flight-control" && !drone_type.devices.contains(device) {
                return Err(OrderError::DeviceNotOnDroneType {
                    device: device.clone(),
                    drone_type: drone_type.name.clone(),
                });
            }
        }

        let spec = VirtualDroneSpec {
            waypoints,
            max_duration: req.max_duration_s,
            energy_allotted: self.prices.energy_cap_j(req.max_charge_cents),
            continuous_devices,
            waypoint_devices,
            apps,
            app_args,
        };
        spec.validate().map_err(OrderError::Spec)?;

        let order_id = self.next_order;
        self.next_order += 1;
        Ok(PlacedOrder {
            order_id,
            user: req.user.clone(),
            vd_name: format!("vd-{}-{}", req.user, order_id),
            spec,
            flexible_schedule: req.flexible_schedule,
        })
    }
}

impl Default for Portal {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) const SURVEY_MANIFEST: &str = r#"<androne-manifest package="com.example.survey">
        <uses-permission name="camera" type="waypoint"/>
        <uses-permission name="flight-control" type="waypoint"/>
        <argument name="survey-areas" type="geo-list" required="true"/>
    </androne-manifest>"#;

    pub(super) fn store() -> AppStore {
        let mut s = AppStore::new();
        s.publish(SURVEY_MANIFEST, "Field surveying").unwrap();
        s
    }

    pub(super) fn base_request() -> OrderRequest {
        OrderRequest {
            user: "alice".into(),
            waypoints: vec![WaypointSpec {
                latitude: 43.6084298,
                longitude: -85.8110359,
                altitude: 15.0,
                max_radius: 30.0,
            }],
            drone_type: "video".into(),
            apps: vec![AppSelection {
                package: "com.example.survey".into(),
                args: [(
                    "survey-areas".to_string(),
                    serde_json::json!([[43.60, -85.81]]),
                )]
                .into_iter()
                .collect(),
            }],
            extra_waypoint_devices: vec![],
            extra_continuous_devices: vec![],
            max_charge_cents: 112.5,
            max_duration_s: 600.0,
            flexible_schedule: true,
        }
    }

    #[test]
    fn order_assembles_spec_from_manifest() {
        let mut portal = Portal::new();
        let placed = portal.place_order(&store(), base_request()).unwrap();
        assert_eq!(placed.spec.waypoint_devices, vec!["camera", "flight-control"]);
        assert!((placed.spec.energy_allotted - 45_000.0).abs() < 1.0);
        assert_eq!(placed.spec.apps, vec!["com.example.survey.apk"]);
        assert!(placed.vd_name.contains("alice"));
    }

    #[test]
    fn missing_required_argument_is_rejected() {
        let mut portal = Portal::new();
        let mut req = base_request();
        req.apps[0].args.clear();
        assert!(matches!(
            portal.place_order(&store(), req),
            Err(OrderError::MissingArgument { .. })
        ));
    }

    #[test]
    fn unknown_app_and_type_are_rejected() {
        let mut portal = Portal::new();
        let mut req = base_request();
        req.apps[0].package = "com.ghost".into();
        assert!(matches!(
            portal.place_order(&store(), req),
            Err(OrderError::UnknownApp(_))
        ));
        let mut req = base_request();
        req.drone_type = "submarine".into();
        assert!(matches!(
            portal.place_order(&store(), req),
            Err(OrderError::UnknownDroneType(_))
        ));
    }

    #[test]
    fn order_ids_increment() {
        let mut portal = Portal::new();
        let s = store();
        let a = portal.place_order(&s, base_request()).unwrap();
        let b = portal.place_order(&s, base_request()).unwrap();
        assert!(b.order_id > a.order_id);
        assert_ne!(a.vd_name, b.vd_name);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::tests::{base_request, store};
    use super::*;

    #[test]
    fn oversized_geofence_is_rejected() {
        let mut portal = Portal::new();
        let mut req = base_request();
        req.waypoints[0].max_radius = 500.0;
        assert!(matches!(
            portal.place_order(&store(), req),
            Err(OrderError::GeofenceTooLarge { waypoint: 0, .. })
        ));
    }

    #[test]
    fn zero_radius_gets_the_provider_default() {
        let mut portal = Portal::new();
        let mut req = base_request();
        req.waypoints[0].max_radius = 0.0;
        let placed = portal.place_order(&store(), req).unwrap();
        assert_eq!(
            placed.spec.waypoints[0].max_radius,
            portal.default_geofence_radius_m
        );
    }

    #[test]
    fn device_missing_from_drone_type_is_rejected() {
        let mut portal = Portal::new();
        let mut req = base_request();
        // The "sensor" drone type carries no camera, but the survey
        // app's manifest requires one.
        req.drone_type = "sensor".into();
        assert!(matches!(
            portal.place_order(&store(), req),
            Err(OrderError::DeviceNotOnDroneType { ref device, .. }) if device == "camera"
        ));
    }

    #[test]
    fn flight_control_is_available_on_every_type() {
        let mut portal = Portal::new();
        let mut req = base_request();
        req.apps.clear();
        req.drone_type = "sensor".into();
        req.extra_waypoint_devices = vec!["flight-control".into(), "sensors".into()];
        portal.place_order(&store(), req).expect("flight control is universal");
    }
}
