//! The assembled cloud service and flight orchestration.
//!
//! Ties together the portal, app store, VDR, storage, and billing,
//! and drives the workflow of paper Figure 4: orders → flight
//! planning (via the Dorling VRP) → per-drone flight plans →
//! post-flight offload and notification.

use androne_energy::{BatteryPack, BillingLedger, DorlingModel};
use androne_hal::GeoPoint;
use androne_planner::{FlightPlan, RouteConstraints, VrpProblem, WaypointTask};
use androne_simkern::BoardMemoryProfile;

/// How many virtual drones one physical drone can host per flight —
/// derived from the board memory profile, not hardcoded.
///
/// The 880 MiB board (Figure 12) less the host OS + VDC (95 MiB),
/// device container (110 MiB), and flight container (40 MiB) leaves
/// 635 MiB — room for three 185 MiB virtual-drone containers but not
/// four. An energy-feasible route carrying a fourth tenant would OOM
/// at deploy, so the planner treats this as a hard route capacity.
/// [`BoardMemoryProfile::rpi3`] itemizes exactly that budget, and
/// the division evaluates to 3 at compile time; a different board
/// profile reflows the cap without touching the planner.
pub const MAX_VDRONES_PER_FLIGHT: usize = BoardMemoryProfile::rpi3().max_vdrones();

use crate::appstore::AppStore;
use crate::portal::{PlacedOrder, Portal};
use crate::storage::CloudStorage;
use crate::vdr::VirtualDroneRepository;

/// How a user is notified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotificationKind {
    /// Email.
    Email,
    /// Text message.
    Text,
}

/// One outbound notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Recipient account.
    pub user: String,
    /// Channel.
    pub kind: NotificationKind,
    /// Message body.
    pub message: String,
}

/// The cloud service.
pub struct CloudService {
    /// The web portal.
    pub portal: Portal,
    /// The app store.
    pub app_store: AppStore,
    /// The virtual drone repository.
    pub vdr: VirtualDroneRepository,
    /// General flight-data storage.
    pub storage: CloudStorage,
    /// Usage billing.
    pub billing: BillingLedger,
    /// Outbound notifications (the mail/SMS queue).
    pub notifications: Vec<Notification>,
    next_flight_id: u64,
}

impl CloudService {
    /// Creates a fresh cloud service.
    pub fn new() -> Self {
        CloudService::with_shards(1)
    }

    /// Creates a fresh cloud service with a VDR sharded `shards` ways.
    pub fn with_shards(shards: usize) -> Self {
        CloudService {
            portal: Portal::new(),
            app_store: AppStore::new(),
            vdr: VirtualDroneRepository::with_shards(shards),
            storage: CloudStorage::new(),
            billing: BillingLedger::new(),
            notifications: Vec::new(),
            next_flight_id: 1,
        }
    }

    /// Allocates a flight id.
    pub fn new_flight_id(&mut self) -> u64 {
        let id = self.next_flight_id;
        self.next_flight_id += 1;
        id
    }

    /// Plans flights for a set of placed orders from `base` with a
    /// fleet of `fleet_size` drones. Per-waypoint allotments split
    /// each order's budget evenly across its waypoints (the planner
    /// needs a per-stop cost; enforcement during flight uses the
    /// aggregate budget).
    pub fn plan_flights(
        &mut self,
        orders: &[PlacedOrder],
        base: GeoPoint,
        fleet_size: usize,
    ) -> Vec<FlightPlan> {
        let model = DorlingModel::f450_prototype();
        let battery = BatteryPack::turnigy_3s_5000();
        let mut tasks = Vec::new();
        let mut radii = Vec::new();
        for order in orders {
            let n = order.spec.waypoints.len().max(1) as f64;
            for wp in &order.spec.waypoints {
                tasks.push(WaypointTask {
                    owner: order.vd_name.clone(),
                    position: wp.position(),
                    service_energy_j: order.spec.energy_allotted / n,
                    service_time_s: order.spec.max_duration / n,
                });
                radii.push(wp.max_radius);
            }
        }
        // One capacity party per ordering virtual drone: a route may
        // carry at most MAX_VDRONES_PER_FLIGHT of them. With that
        // many tenants or fewer the constraint is inert and the
        // legacy unconstrained solve runs bit-identically.
        let mut parties: Vec<Vec<usize>> = Vec::new();
        {
            let mut owners: Vec<&str> = Vec::new();
            for (i, t) in tasks.iter().enumerate() {
                match owners.iter().position(|o| *o == t.owner) {
                    Some(p) => parties[p].push(i),
                    None => {
                        owners.push(&t.owner);
                        parties.push(vec![i]);
                    }
                }
            }
        }
        let constraints =
            RouteConstraints::none().with_party_capacity(parties, MAX_VDRONES_PER_FLIGHT);
        let problem = VrpProblem {
            depot: base,
            tasks,
            fleet_size,
            battery_budget_j: battery.plannable_j(),
            model,
        };
        let solution = problem.solve_constrained(20_000, 0xA17D, &constraints);
        let plans = FlightPlan::from_solution(&problem, &solution, |i| radii[i]);

        // Send each user their estimated operating window (paper
        // Section 2: a day in advance for flexible schedules).
        for order in orders {
            for plan in &plans {
                if let Some((start, end)) = plan.operating_window(&order.vd_name) {
                    self.notify(
                        &order.user,
                        NotificationKind::Email,
                        format!(
                            "Estimated operating window for {}: {:.0}s-{:.0}s after launch",
                            order.vd_name, start, end
                        ),
                    );
                }
            }
        }
        plans
    }

    /// Records a notification.
    pub fn notify(&mut self, user: &str, kind: NotificationKind, message: String) {
        self.notifications.push(Notification {
            user: user.to_string(),
            kind,
            message,
        });
    }

    /// Post-flight: offloads marked files, bills energy, and emails
    /// the user their links (paper Figure 4's final steps).
    pub fn complete_flight(
        &mut self,
        user: &str,
        flight_id: u64,
        energy_used_j: f64,
        files: Vec<(String, bytes::Bytes)>,
    ) {
        self.billing.charge_energy(user, energy_used_j);
        let mut links = Vec::new();
        for (path, data) in files {
            self.billing
                .charge_storage(user, data.len() as f64 / 1e9);
            links.push(self.storage.offload(user, flight_id, path, data));
        }
        let message = if links.is_empty() {
            format!("Flight {flight_id} complete.")
        } else {
            format!("Flight {flight_id} complete. Your files: {}", links.join(", "))
        };
        self.notify(user, NotificationKind::Email, message);
    }
}

impl Default for CloudService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portal::{AppSelection, OrderRequest};
    use androne_vdc::WaypointSpec;

    const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    const MANIFEST: &str = r#"<androne-manifest package="com.example.survey">
        <uses-permission name="camera" type="waypoint"/>
        <uses-permission name="flight-control" type="waypoint"/>
    </androne-manifest>"#;

    fn order(cloud: &mut CloudService, user: &str, north: f64, east: f64) -> PlacedOrder {
        let req = OrderRequest {
            user: user.into(),
            waypoints: vec![{
                let p = BASE.offset_m(north, east, 15.0);
                WaypointSpec {
                    latitude: p.latitude,
                    longitude: p.longitude,
                    altitude: 15.0,
                    max_radius: 30.0,
                }
            }],
            drone_type: "video".into(),
            apps: vec![AppSelection {
                package: "com.example.survey".into(),
                args: Default::default(),
            }],
            extra_waypoint_devices: vec![],
            extra_continuous_devices: vec![],
            max_charge_cents: 50.0,
            max_duration_s: 120.0,
            flexible_schedule: true,
        };
        cloud.portal.place_order(&cloud.app_store, req).unwrap()
    }

    #[test]
    fn derived_party_cap_matches_the_paper_prototype() {
        // The profile-derived capacity must reproduce the historical
        // hardcoded 3-cap exactly on the default (RPi3) board.
        assert_eq!(MAX_VDRONES_PER_FLIGHT, 3);
    }

    #[test]
    fn end_to_end_order_plan_complete() {
        let mut cloud = CloudService::new();
        cloud.app_store.publish(MANIFEST, "survey").unwrap();
        let a = order(&mut cloud, "alice", 300.0, 0.0);
        let b = order(&mut cloud, "bob", -250.0, 150.0);
        let plans = cloud.plan_flights(&[a.clone(), b.clone()], BASE, 1);
        assert_eq!(plans.len(), 1, "one drone serves both");
        assert_eq!(plans[0].legs.len(), 2);
        assert!(
            cloud.notifications.iter().any(|n| n.user == "alice"),
            "operating window emailed"
        );

        let fid = cloud.new_flight_id();
        cloud.complete_flight(
            "alice",
            fid,
            12_000.0,
            vec![("/data/out/ortho.tif".into(), bytes::Bytes::from_static(b"t"))],
        );
        assert!(cloud.storage.fetch("alice", "/data/out/ortho.tif").is_some());
        assert!(cloud.billing.bill("alice").energy_j > 0.0);
        assert!(cloud
            .notifications
            .last()
            .unwrap()
            .message
            .contains("Your files"));
    }
}
