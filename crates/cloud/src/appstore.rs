//! The AnDrone app store.
//!
//! Hosts apps users can put on their virtual drones (paper Section
//! 2: "a real estate agent ... can go to the AnDrone app store and
//! find an app"). Each listing carries the APK identity and the
//! AnDrone manifest the portal reads to prompt for arguments and the
//! flight planner reads to plan device access.

use std::collections::BTreeMap;

use androne_android::{AndroneManifest, ManifestError};

/// One app listing.
#[derive(Debug, Clone)]
pub struct AppListing {
    /// Package name (doubles as the store id).
    pub package: String,
    /// Human description shown in the portal.
    pub description: String,
    /// Parsed AnDrone manifest.
    pub manifest: AndroneManifest,
}

/// The store.
#[derive(Debug, Default)]
pub struct AppStore {
    listings: BTreeMap<String, AppListing>,
}

impl AppStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        AppStore::default()
    }

    /// Publishes an app from its manifest XML. Returns the package
    /// name.
    pub fn publish(
        &mut self,
        manifest_xml: &str,
        description: impl Into<String>,
    ) -> Result<String, ManifestError> {
        let manifest = AndroneManifest::parse(manifest_xml)?;
        let package = manifest.package.clone();
        self.listings.insert(
            package.clone(),
            AppListing {
                package: package.clone(),
                description: description.into(),
                manifest,
            },
        );
        Ok(package)
    }

    /// Looks up a listing.
    pub fn get(&self, package: &str) -> Option<&AppListing> {
        self.listings.get(package)
    }

    /// Browses all listings.
    pub fn browse(&self) -> impl Iterator<Item = &AppListing> {
        self.listings.values()
    }

    /// Simple keyword search over descriptions and package names.
    pub fn search(&self, query: &str) -> Vec<&AppListing> {
        let q = query.to_lowercase();
        self.listings
            .values()
            .filter(|l| {
                l.package.to_lowercase().contains(&q)
                    || l.description.to_lowercase().contains(&q)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"<androne-manifest package="com.example.aerial.photo">
        <uses-permission name="camera" type="waypoint"/>
        <uses-permission name="flight-control" type="waypoint"/>
        <argument name="property-address" type="string" required="true"/>
    </androne-manifest>"#;

    #[test]
    fn publish_and_search() {
        let mut store = AppStore::new();
        let pkg = store
            .publish(MANIFEST, "Aerial photography for real estate")
            .unwrap();
        assert_eq!(pkg, "com.example.aerial.photo");
        assert_eq!(store.search("real estate").len(), 1);
        assert_eq!(store.search("surveying").len(), 0);
        assert!(store.get(&pkg).is_some());
    }

    #[test]
    fn bad_manifests_are_rejected() {
        let mut store = AppStore::new();
        assert!(store.publish("<oops/>", "broken").is_err());
        assert_eq!(store.browse().count(), 0);
    }
}
