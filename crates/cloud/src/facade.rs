//! The fallible cloud façade: [`CloudService`] behind injected
//! cloud-side faults.
//!
//! The paper treats the cloud as an always-up oracle; a fleet-scale
//! chaos run cannot. [`FallibleCloud`] wraps the service and arms the
//! [`CloudFaultKind`] windows of a fleet fault plan, one wave (one
//! planning round) at a time, mapping each fault onto a typed error
//! plus a degraded mode instead of a panic:
//!
//! - **Portal down / planner rejection** — the wave's orders queue in
//!   the façade and merge into the next healthy planning round.
//! - **VDR unavailable** — interrupted virtual drones cannot be
//!   checked out; the caller leaves them for a later wave (their
//!   entries stay safely leased-or-stored either way).
//! - **Storage write failures** — offloads run under the SDK's
//!   deterministic retry/backoff; when the attempt budget is
//!   exhausted the offload buffers (on-drone, conceptually) and
//!   drains on heal, billing reconciled at drain time.
//!
//! Everything is deterministic: the armed set is pure plan data, the
//! retry backoff is the SDK's jitter-free policy, and the façade log
//! records each degraded-mode decision for the dual-run sanitizer.

use androne_hal::GeoPoint;
use androne_obs::{ObsHandle, Subsystem, TraceEvent};
use androne_planner::FlightPlan;
use androne_sdk::{retry_with_backoff, Backpressure, RetryFailure, RetryPolicy};
use androne_simkern::{CloudFaultKind, SimDuration};

use crate::admission::{AdmissionConfig, AdmissionError, AdmissionQueue};
use crate::portal::{OrderError, OrderRequest, PlacedOrder};
use crate::service::{CloudService, NotificationKind};
use crate::vdr::SavedVirtualDrone;

/// A typed cloud-side failure surfaced to the fleet executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// The portal is down; the orders were queued.
    PortalDown,
    /// The VDR is unreachable; nothing was checked out.
    VdrUnavailable,
    /// A storage write failed after `attempts` tries.
    StorageWrite { attempts: u32 },
    /// The planner rejected the wave; the orders were queued.
    PlannerRejected,
}

impl std::fmt::Display for CloudError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CloudError::PortalDown => write!(f, "portal down"),
            CloudError::VdrUnavailable => write!(f, "virtual drone repository unavailable"),
            CloudError::StorageWrite { attempts } => {
                write!(f, "storage write failed after {attempts} attempts")
            }
            CloudError::PlannerRejected => write!(f, "flight planner rejected the wave"),
        }
    }
}

impl std::error::Error for CloudError {}

/// A non-blocking order submission rejection: either the portal said
/// no (bad order) or the admission queue is full (try again at the
/// advertised wave).
#[derive(Debug, Clone, PartialEq)]
pub enum OrderSubmitError {
    /// The portal rejected the order itself.
    Order(OrderError),
    /// The order is valid but the admission queue is at capacity. The
    /// already-validated order rides back so the retry (via
    /// [`FallibleCloud::resubmit`]) skips portal revalidation.
    Backpressure {
        err: AdmissionError,
        order: Box<PlacedOrder>,
    },
}

impl std::fmt::Display for OrderSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderSubmitError::Order(e) => write!(f, "{e}"),
            OrderSubmitError::Backpressure { err, .. } => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for OrderSubmitError {}

impl Backpressure for OrderSubmitError {
    fn retry_wave(&self) -> Option<u64> {
        match self {
            OrderSubmitError::Order(_) => None,
            OrderSubmitError::Backpressure { err, .. } => err.retry_wave(),
        }
    }
}

/// The receipt of a successfully enqueued order: not planned yet,
/// just admitted into its tenant's FIFO lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionTicket {
    pub order_id: u64,
    pub vd_name: String,
    /// Global admission sequence number (FIFO position evidence).
    pub seq: u64,
    /// Queue depth right after this order was enqueued.
    pub queue_depth: usize,
}

/// An offload held back by a storage outage, awaiting heal.
#[derive(Debug, Clone)]
pub struct BufferedOffload {
    pub user: String,
    pub flight_id: u64,
    pub path: String,
    pub data: bytes::Bytes,
}

/// [`CloudService`] behind injected fault windows.
pub struct FallibleCloud {
    /// The wrapped service; healthy paths pass straight through.
    pub inner: CloudService,
    /// Cloud faults armed for the current wave.
    armed: Vec<CloudFaultKind>,
    /// Retry policy for storage writes (deterministic backoff).
    retry: RetryPolicy,
    /// The admission queue: orders submitted via [`Self::place_order`]
    /// and orders displaced by a portal/planner outage, in per-tenant
    /// FIFO lanes. The default config is unlimited/drain-all, which
    /// reproduces the legacy single-`Vec` outage queue byte for byte.
    admission: AdmissionQueue<PlacedOrder>,
    /// The wave most recently begun (for backpressure retry math).
    wave: u64,
    /// Offloads awaiting a storage heal.
    buffered: Vec<BufferedOffload>,
    /// Total simulated backoff spent in retries (bookkeeping only).
    pub backoff_spent: SimDuration,
    /// Human-readable record of every degraded-mode decision.
    pub log: Vec<String>,
    /// Observability handle; detached (free) unless the fleet
    /// executor attached one.
    obs: ObsHandle,
}

impl FallibleCloud {
    /// Wraps a fresh service with no faults armed.
    pub fn new() -> Self {
        Self::from_service(CloudService::new())
    }

    /// Wraps an existing service.
    pub fn from_service(inner: CloudService) -> Self {
        FallibleCloud {
            inner,
            armed: Vec::new(),
            retry: RetryPolicy::default(),
            admission: AdmissionQueue::new(AdmissionConfig::unlimited()),
            wave: 0,
            buffered: Vec::new(),
            backoff_spent: SimDuration::from_nanos(0),
            log: Vec::new(),
            obs: ObsHandle::default(),
        }
    }

    /// Wraps a fresh service with a VDR sharded `shards` ways.
    pub fn with_shards(shards: usize) -> Self {
        Self::from_service(CloudService::with_shards(shards))
    }

    /// Replaces the admission config. Queued orders keep their lanes
    /// and sequence numbers; only the quota/capacity change.
    pub fn set_admission(&mut self, cfg: AdmissionConfig) {
        let old = std::mem::replace(&mut self.admission, AdmissionQueue::new(cfg));
        for (lane, _seq, item) in old.iter_pending() {
            // Re-inserting in global sequence order preserves both
            // lane FIFO order and the cross-lane drain order; the
            // backlog is never dropped, even below the new capacity.
            self.admission.enqueue_unbounded(lane, item.clone());
        }
    }

    /// The admission queue (metrics, tests).
    pub fn admission(&self) -> &AdmissionQueue<PlacedOrder> {
        &self.admission
    }

    /// Attaches the shared observability handle; degraded-mode
    /// decisions and retry ladders are traced from then on.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Arms `faults` for wave `wave`, healing whatever is no longer
    /// armed: a storage heal drains the offload buffer (billing
    /// reconciled now), a portal/planner heal lets the queued orders
    /// merge into this wave's planning round.
    pub fn begin_wave(&mut self, wave: u64, faults: Vec<CloudFaultKind>) {
        self.wave = wave;
        self.armed = faults;
        if !self.armed.is_empty() {
            self.log.push(format!("wave {wave}: armed {:?}", self.armed));
            self.obs.count("cloud.fault_waves", 1);
            self.obs.emit(Subsystem::Cloud, || TraceEvent::CloudDegraded {
                mode: "faults-armed",
                detail: format!("wave {wave}: {:?}", self.armed),
            });
        }
        if self.storage_transients().is_none() && !self.buffered.is_empty() {
            self.log.push(format!(
                "wave {wave}: storage healed, draining {} buffered offloads",
                self.buffered.len()
            ));
            self.obs.count("cloud.storage_heals", 1);
            self.obs.emit(Subsystem::Cloud, || TraceEvent::CloudDegraded {
                mode: "storage-healed",
                detail: format!("wave {wave}: {} offloads drained", self.buffered.len()),
            });
            let buffered = std::mem::take(&mut self.buffered);
            for b in buffered {
                self.offload_now(&b.user, b.flight_id, b.path, b.data);
            }
        }
    }

    fn portal_down(&self) -> bool {
        self.armed.iter().any(|f| matches!(f, CloudFaultKind::PortalDown))
    }

    fn vdr_down(&self) -> bool {
        self.armed.iter().any(|f| matches!(f, CloudFaultKind::VdrUnavailable))
    }

    fn planner_rejecting(&self) -> bool {
        self.armed.iter().any(|f| matches!(f, CloudFaultKind::PlannerReject))
    }

    /// Transient failures per storage write while the fault is armed.
    fn storage_transients(&self) -> Option<u32> {
        self.armed.iter().find_map(|f| match f {
            CloudFaultKind::StorageWriteFail { transient_failures } => Some(*transient_failures),
            _ => None,
        })
    }

    /// Orders currently queued (behind an outage or awaiting batched
    /// admission), in global sequence order.
    pub fn queued_orders(&self) -> Vec<&PlacedOrder> {
        self.admission
            .iter_pending()
            .into_iter()
            .map(|(_, _, o)| o)
            .collect()
    }

    /// Validates and enqueues an order without planning it: the
    /// non-blocking front door of the control plane. The order joins
    /// its virtual drone's FIFO lane and is planned when the batch
    /// admitter releases it into a wave. At capacity the caller gets
    /// [`OrderSubmitError::Backpressure`] with the earliest retry
    /// wave instead of an unbounded queue.
    pub fn place_order(&mut self, req: OrderRequest) -> Result<AdmissionTicket, OrderSubmitError> {
        let inner = &mut self.inner;
        let placed = inner
            .portal
            .place_order(&inner.app_store, req)
            .map_err(OrderSubmitError::Order)?;
        self.resubmit(placed)
    }

    /// Re-enqueues an order that already cleared portal validation —
    /// the retry path after [`OrderSubmitError::Backpressure`], where
    /// re-validating would only re-prove what the first submission
    /// proved.
    pub fn resubmit(&mut self, placed: PlacedOrder) -> Result<AdmissionTicket, OrderSubmitError> {
        let (order_id, vd_name) = (placed.order_id, placed.vd_name.clone());
        match self.admission.enqueue(&vd_name, placed, self.wave) {
            Ok(seq) => {
                self.obs.count("cloud.orders_enqueued", 1);
                Ok(AdmissionTicket {
                    order_id,
                    vd_name,
                    seq,
                    queue_depth: self.admission.pending(),
                })
            }
            Err((err, order)) => {
                self.obs.count("cloud.orders_backpressured", 1);
                Err(OrderSubmitError::Backpressure {
                    err,
                    order: Box::new(order),
                })
            }
        }
    }

    /// Releases this wave's admitted batch of queued orders, in the
    /// admitter's deterministic order (sequence order when unlimited,
    /// round-robin across tenant lanes when batched).
    pub fn admit_orders(&mut self) -> Vec<PlacedOrder> {
        self.admission.admit().into_iter().map(|a| a.item).collect()
    }

    /// Offloads currently buffered behind a storage outage.
    pub fn buffered_offloads(&self) -> &[BufferedOffload] {
        &self.buffered
    }

    /// Plans the wave's flights, or queues the orders behind a typed
    /// error when the portal or planner is down. A healthy round
    /// merges previously queued orders with the new ones (new orders
    /// win on a name collision — a queued resume order is stale once
    /// the caller rebuilt it).
    pub fn try_plan_flights(
        &mut self,
        orders: &[PlacedOrder],
        base: GeoPoint,
        fleet_size: usize,
    ) -> Result<Vec<FlightPlan>, CloudError> {
        if self.portal_down() || self.planner_rejecting() {
            let err = if self.portal_down() {
                CloudError::PortalDown
            } else {
                CloudError::PlannerRejected
            };
            for o in orders {
                // One lane per virtual drone: a lane that already
                // holds this name's order keeps it (same dedup the
                // legacy Vec queue applied on enqueue).
                if self.admission.lane_pending(&o.vd_name) == 0 {
                    self.admission.enqueue_unbounded(&o.vd_name, o.clone());
                }
            }
            let depth = self.admission.pending();
            self.log.push(format!("{err}: {depth} orders queued"));
            self.obs.count("cloud.orders_queued", orders.len() as u64);
            self.obs.emit(Subsystem::Cloud, || TraceEvent::CloudDegraded {
                mode: "planning-down",
                detail: format!("{err}: {depth} orders queued"),
            });
            return Err(err);
        }
        let mut all: Vec<PlacedOrder> = orders.to_vec();
        for q in self.admit_orders() {
            if !all.iter().any(|o| o.vd_name == q.vd_name) {
                all.push(q);
            }
        }
        Ok(self.inner.plan_flights(&all, base, fleet_size))
    }

    /// Checks out a saved virtual drone for resume, unless the VDR
    /// is unreachable this wave. `Ok(None)` means nothing is stored
    /// (or the name is already leased).
    pub fn checkout_saved(&mut self, name: &str) -> Result<Option<SavedVirtualDrone>, CloudError> {
        if self.vdr_down() {
            self.log.push(format!("vdr unavailable: {name} not checked out"));
            self.obs.count("cloud.vdr_unavailable", 1);
            self.obs.emit(Subsystem::Cloud, || TraceEvent::CloudDegraded {
                mode: "vdr-unavailable",
                detail: name.to_string(),
            });
            return Err(CloudError::VdrUnavailable);
        }
        Ok(self.inner.vdr.checkout(name))
    }

    /// Post-flight bookkeeping under faults. Energy billing is an
    /// internal ledger write and always reconciles; each file offload
    /// runs under the deterministic retry policy, buffering when the
    /// attempt budget is exhausted.
    pub fn try_complete_flight(
        &mut self,
        user: &str,
        flight_id: u64,
        energy_used_j: f64,
        files: Vec<(String, bytes::Bytes)>,
    ) {
        self.inner.billing.charge_energy(user, energy_used_j);
        let mut links = Vec::new();
        let mut buffered = 0usize;
        for (path, data) in files {
            match self.offload_with_retry(user, flight_id, &path, &data) {
                Ok(link) => links.push(link),
                Err(e) => {
                    self.log.push(format!(
                        "flight {flight_id}: {e}; buffering {path} for {user}"
                    ));
                    self.obs.count("cloud.offloads_buffered", 1);
                    self.obs.emit(Subsystem::Cloud, || TraceEvent::CloudDegraded {
                        mode: "offload-buffered",
                        detail: format!("flight {flight_id}: {path} for {user}"),
                    });
                    self.buffered.push(BufferedOffload {
                        user: user.to_string(),
                        flight_id,
                        path,
                        data,
                    });
                    buffered += 1;
                }
            }
        }
        let mut message = if links.is_empty() {
            format!("Flight {flight_id} complete.")
        } else {
            format!("Flight {flight_id} complete. Your files: {}", links.join(", "))
        };
        if buffered > 0 {
            message.push_str(&format!(
                " {buffered} files are delayed by a storage outage and will follow."
            ));
        }
        self.inner.notify(user, NotificationKind::Email, message);
    }

    /// One offload under the retry policy. While `StorageWriteFail`
    /// is armed, the first `transient_failures` attempts fail; the
    /// deterministic backoff ladder runs between attempts.
    fn offload_with_retry(
        &mut self,
        user: &str,
        flight_id: u64,
        path: &str,
        data: &bytes::Bytes,
    ) -> Result<String, CloudError> {
        let transients = self.storage_transients().unwrap_or(0);
        let retry = self.retry;
        let mut backoff = SimDuration::from_nanos(0);
        let attempted = retry_with_backoff(
            &retry,
            |_e: &CloudError| true,
            |attempt| {
                if attempt <= transients {
                    Err(CloudError::StorageWrite { attempts: attempt })
                } else {
                    Ok(())
                }
            },
            &mut |d| backoff = SimDuration::from_nanos(backoff.as_nanos() + d.as_nanos()),
        );
        self.backoff_spent =
            SimDuration::from_nanos(self.backoff_spent.as_nanos() + backoff.as_nanos());
        if transients > 0 {
            let (attempts, gave_up) = match &attempted {
                Ok(()) => (transients + 1, false),
                Err(RetryFailure::Exhausted { attempts, .. }) => (*attempts, true),
                Err(RetryFailure::Fatal(_)) => (1, true),
            };
            self.obs.count("cloud.storage_retries", u64::from(attempts.saturating_sub(1)));
            self.obs.emit(Subsystem::Cloud, || TraceEvent::CloudRetry {
                op: "storage-offload",
                attempts,
                backoff_ns: backoff.as_nanos(),
                gave_up,
            });
        }
        match attempted {
            Ok(()) => {
                if transients > 0 {
                    self.log.push(format!(
                        "storage write {path}: succeeded after {transients} transient failures"
                    ));
                }
                Ok(self.offload_now(user, flight_id, path.to_string(), data.clone()))
            }
            Err(RetryFailure::Exhausted { attempts, .. }) => {
                Err(CloudError::StorageWrite { attempts })
            }
            Err(RetryFailure::Fatal(e)) => Err(e),
        }
    }

    /// The healthy offload path: storage write, storage billing, and
    /// the retrieval link.
    fn offload_now(
        &mut self,
        user: &str,
        flight_id: u64,
        path: String,
        data: bytes::Bytes,
    ) -> String {
        self.inner.billing.charge_storage(user, data.len() as f64 / 1e9);
        let link = self.inner.storage.offload(user, flight_id, path, data);
        self.inner.notify(
            user,
            NotificationKind::Email,
            format!("Your file is ready: {link}"),
        );
        link
    }

    /// Refunds the unserved remainder of a terminally failed order
    /// and notifies the user.
    pub fn refund_unserved(&mut self, user: &str, vd_name: &str, energy_j: f64) {
        self.inner.billing.refund_energy(user, energy_j);
        self.log
            .push(format!("refund {user}/{vd_name}: {energy_j:.1} J unserved"));
        self.inner.notify(
            user,
            NotificationKind::Email,
            format!(
                "Virtual drone {vd_name} could not complete its mission; \
                 {energy_j:.0} J of unserved allotment was refunded."
            ),
        );
    }
}

impl Default for FallibleCloud {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portal::PlacedOrder;
    use androne_vdc::VirtualDroneSpec;

    const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    fn order(name: &str) -> PlacedOrder {
        PlacedOrder {
            order_id: 1,
            user: format!("user-{name}"),
            vd_name: name.to_string(),
            spec: VirtualDroneSpec::example_survey(),
            flexible_schedule: true,
        }
    }

    #[test]
    fn portal_down_queues_orders_and_heals_into_next_wave() {
        let mut cloud = FallibleCloud::new();
        cloud.begin_wave(0, vec![CloudFaultKind::PortalDown]);
        let err = cloud.try_plan_flights(&[order("vd-a")], BASE, 1).unwrap_err();
        assert_eq!(err, CloudError::PortalDown);
        assert_eq!(cloud.queued_orders().len(), 1);

        cloud.begin_wave(1, vec![]);
        let plans = cloud.try_plan_flights(&[], BASE, 1).unwrap();
        assert!(!plans.is_empty(), "queued order planned after heal");
        assert!(cloud.queued_orders().is_empty());
    }

    #[test]
    fn planner_rejection_requeues_without_duplicates() {
        let mut cloud = FallibleCloud::new();
        cloud.begin_wave(0, vec![CloudFaultKind::PlannerReject]);
        assert_eq!(
            cloud.try_plan_flights(&[order("vd-a")], BASE, 1).unwrap_err(),
            CloudError::PlannerRejected
        );
        // The caller retries the same wave orders; no duplicate queue
        // entries accumulate.
        let _ = cloud.try_plan_flights(&[order("vd-a")], BASE, 1);
        assert_eq!(cloud.queued_orders().len(), 1);
    }

    #[test]
    fn vdr_outage_blocks_checkout_without_losing_the_entry() {
        let mut cloud = FallibleCloud::new();
        cloud.begin_wave(0, vec![CloudFaultKind::VdrUnavailable]);
        assert_eq!(
            cloud.checkout_saved("vd-a").unwrap_err(),
            CloudError::VdrUnavailable
        );
        cloud.begin_wave(1, vec![]);
        assert!(cloud.checkout_saved("vd-a").unwrap().is_none(), "nothing stored");
    }

    #[test]
    fn transient_storage_failures_clear_under_retry() {
        let mut cloud = FallibleCloud::new();
        // 2 transient failures < 4 attempts: the retry ladder clears.
        cloud.begin_wave(0, vec![CloudFaultKind::StorageWriteFail { transient_failures: 2 }]);
        cloud.try_complete_flight(
            "alice",
            7,
            1_000.0,
            vec![("/data/a.bin".into(), bytes::Bytes::from_static(b"xy"))],
        );
        assert!(cloud.buffered_offloads().is_empty(), "retries succeeded");
        assert!(cloud.inner.storage.fetch("alice", "/data/a.bin").is_some());
        assert!(cloud.backoff_spent.as_nanos() > 0, "backoff actually waited");
        assert!((cloud.inner.billing.bill("alice").energy_j - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn exhausted_storage_retries_buffer_and_drain_on_heal() {
        let mut cloud = FallibleCloud::new();
        cloud.begin_wave(0, vec![CloudFaultKind::StorageWriteFail { transient_failures: 10 }]);
        cloud.try_complete_flight(
            "alice",
            7,
            1_000.0,
            vec![("/data/a.bin".into(), bytes::Bytes::from_static(b"xy"))],
        );
        assert_eq!(cloud.buffered_offloads().len(), 1, "offload buffered");
        assert!(cloud.inner.storage.fetch("alice", "/data/a.bin").is_none());
        // Billing for storage waits for the write; energy reconciled.
        assert_eq!(cloud.inner.billing.bill("alice").storage_gb_months, 0.0);
        assert!((cloud.inner.billing.bill("alice").energy_j - 1_000.0).abs() < 1e-9);

        cloud.begin_wave(1, vec![]);
        assert!(cloud.buffered_offloads().is_empty(), "drained on heal");
        assert!(cloud.inner.storage.fetch("alice", "/data/a.bin").is_some());
        assert!(cloud.inner.billing.bill("alice").storage_gb_months > 0.0);
    }

    #[test]
    fn refunds_reach_the_ledger_and_the_user() {
        let mut cloud = FallibleCloud::new();
        cloud.inner.billing.charge_energy("alice", 10_000.0);
        cloud.refund_unserved("alice", "vd-a", 4_000.0);
        assert!((cloud.inner.billing.bill("alice").net_energy_j() - 6_000.0).abs() < 1e-9);
        assert!(cloud
            .inner
            .notifications
            .last()
            .unwrap()
            .message
            .contains("refunded"));
    }
}
