//! Batched order admission with backpressure.
//!
//! The PR 4 portal-down order queue, generalized into a first-class
//! control-plane stage: every submitted order lands in a per-tenant
//! FIFO **lane**, and a deterministic batch admitter releases up to
//! `admit_per_wave` orders per planning round, round-robin across
//! lanes so no tenant starves behind a chatty neighbour. When the
//! queue is full, enqueue returns a typed
//! [`AdmissionError::Backpressure`] carrying the earliest wave at
//! which a retry can be admitted, which the SDK surfaces to clients
//! (see `androne_sdk::Backpressure`).
//!
//! Determinism: lanes are a `BTreeMap` keyed by lane name, every item
//! carries a global monotonically increasing sequence number, and the
//! round-robin cursor is plain state — the admitted batch is a pure
//! function of the enqueue history. With no configured quota the
//! admitter drains everything in sequence order, which reproduces the
//! old single-`Vec` queue byte for byte.

use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound::{Excluded, Unbounded};

use androne_sdk::Backpressure;

/// Admission-control knobs. The default (`unlimited`) keeps the
/// legacy behaviour: no capacity bound, drain-all each wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Orders admitted per wave; `None` drains the whole queue in
    /// sequence order.
    pub admit_per_wave: Option<usize>,
    /// Total queued orders allowed; `None` never backpressures.
    pub capacity: Option<usize>,
}

impl AdmissionConfig {
    /// No quota, no capacity bound — the legacy queue semantics.
    pub const fn unlimited() -> Self {
        AdmissionConfig {
            admit_per_wave: None,
            capacity: None,
        }
    }

    /// Bounded admission: at most `admit_per_wave` orders released
    /// per wave from a queue holding at most `capacity`.
    pub const fn batched(admit_per_wave: usize, capacity: usize) -> Self {
        AdmissionConfig {
            admit_per_wave: Some(admit_per_wave),
            capacity: Some(capacity),
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::unlimited()
    }
}

/// A typed admission rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at capacity. `retry_wave` is the earliest wave at
    /// which the backlog can have drained enough for a retry to be
    /// accepted (a deterministic estimate from depth and quota);
    /// `depth` is the queue depth observed at rejection.
    Backpressure { retry_wave: u64, depth: usize },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Backpressure { retry_wave, depth } => write!(
                f,
                "admission backpressure: queue at depth {depth}, retry at wave {retry_wave}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl Backpressure for AdmissionError {
    fn retry_wave(&self) -> Option<u64> {
        match self {
            AdmissionError::Backpressure { retry_wave, .. } => Some(*retry_wave),
        }
    }
}

/// An item released by the admitter, with its lane and the global
/// sequence number it was enqueued under (FIFO evidence, and the key
/// for [`AdmissionQueue::requeue_front`]).
#[derive(Debug, Clone)]
pub struct Admitted<T> {
    pub lane: String,
    pub seq: u64,
    pub item: T,
}

/// The admission queue: per-lane FIFOs behind one global sequence.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    cfg: AdmissionConfig,
    /// Lane name → queued `(seq, item)`. Invariant: no empty lanes.
    lanes: BTreeMap<String, VecDeque<(u64, T)>>,
    next_seq: u64,
    /// The lane the round-robin admitter served last; the next batch
    /// starts strictly after it (wrapping).
    cursor: Option<String>,
    pending: usize,
    peak_depth: usize,
    enqueued_total: u64,
    admitted_total: u64,
    backpressure_total: u64,
}

impl<T> AdmissionQueue<T> {
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionQueue {
            cfg,
            lanes: BTreeMap::new(),
            next_seq: 0,
            cursor: None,
            pending: 0,
            peak_depth: 0,
            enqueued_total: 0,
            admitted_total: 0,
            backpressure_total: 0,
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Enqueues `item` on `lane` at wave `wave`. Non-blocking: at
    /// capacity it returns [`AdmissionError::Backpressure`] with a
    /// deterministic earliest-retry wave instead of waiting. The
    /// rejected item rides back in the error so the caller can hold
    /// it for the retry without re-validating or re-building it.
    pub fn enqueue(&mut self, lane: &str, item: T, wave: u64) -> Result<u64, (AdmissionError, T)> {
        if let Some(cap) = self.cfg.capacity {
            if self.pending >= cap {
                self.backpressure_total += 1;
                // Waves needed to drain down to below capacity at the
                // configured quota; without a quota one heal-wave
                // drains everything.
                let per_wave = self.cfg.admit_per_wave.unwrap_or(self.pending).max(1);
                let waves_ahead = (self.pending / per_wave) as u64;
                return Err((
                    AdmissionError::Backpressure {
                        retry_wave: wave + 1 + waves_ahead,
                        depth: self.pending,
                    },
                    item,
                ));
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes.entry(lane.to_string()).or_default().push_back((seq, item));
        self.pending += 1;
        self.enqueued_total += 1;
        if self.pending > self.peak_depth {
            self.peak_depth = self.pending;
        }
        Ok(seq)
    }

    /// Appends without the capacity check — used when migrating an
    /// existing backlog to a new config, where dropping queued orders
    /// would lose customer state.
    pub(crate) fn enqueue_unbounded(&mut self, lane: &str, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes.entry(lane.to_string()).or_default().push_back((seq, item));
        self.pending += 1;
        self.enqueued_total += 1;
        if self.pending > self.peak_depth {
            self.peak_depth = self.pending;
        }
        seq
    }

    /// Puts an admitted item back at the *front* of its lane under
    /// its original sequence number — used when a wave's bin-packer
    /// spills part of an admitted batch back for the next wave
    /// without costing the tenant its FIFO position.
    pub fn requeue_front(&mut self, admitted: Admitted<T>) {
        self.lanes
            .entry(admitted.lane)
            .or_default()
            .push_front((admitted.seq, admitted.item));
        self.pending += 1;
        if self.pending > self.peak_depth {
            self.peak_depth = self.pending;
        }
    }

    /// Releases this wave's batch. With no quota configured, drains
    /// every queued item in global sequence order (the legacy queue
    /// order). With a quota, serves lanes round-robin starting just
    /// past the cursor, one item per lane per rotation, until the
    /// quota or the queue is exhausted.
    pub fn admit(&mut self) -> Vec<Admitted<T>> {
        match self.cfg.admit_per_wave {
            None => self.drain_all(),
            Some(quota) => self.admit_round_robin(quota),
        }
    }

    fn drain_all(&mut self) -> Vec<Admitted<T>> {
        let mut out: Vec<Admitted<T>> = Vec::with_capacity(self.pending);
        for (lane, mut q) in std::mem::take(&mut self.lanes) {
            while let Some((seq, item)) = q.pop_front() {
                out.push(Admitted {
                    lane: lane.clone(),
                    seq,
                    item,
                });
            }
        }
        out.sort_by_key(|a| a.seq);
        self.admitted_total += out.len() as u64;
        self.pending = 0;
        out
    }

    fn admit_round_robin(&mut self, quota: usize) -> Vec<Admitted<T>> {
        let mut out = Vec::new();
        while out.len() < quota && self.pending > 0 {
            // The next lane strictly after the cursor, wrapping to
            // the first lane at the end of the keyspace.
            let after_cursor = match &self.cursor {
                Some(c) => self
                    .lanes
                    .range::<String, _>((Excluded(c.clone()), Unbounded))
                    .next()
                    .map(|(k, _)| k.clone()),
                None => None,
            };
            let Some(key) = after_cursor.or_else(|| self.lanes.keys().next().cloned()) else {
                break;
            };
            if let Some(q) = self.lanes.get_mut(&key) {
                if let Some((seq, item)) = q.pop_front() {
                    self.pending -= 1;
                    self.admitted_total += 1;
                    out.push(Admitted {
                        lane: key.clone(),
                        seq,
                        item,
                    });
                }
                if q.is_empty() {
                    self.lanes.remove(&key);
                }
            }
            self.cursor = Some(key);
        }
        out
    }

    /// Queued items across all lanes.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Queued items on one lane.
    pub fn lane_pending(&self, lane: &str) -> usize {
        self.lanes.get(lane).map_or(0, VecDeque::len)
    }

    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Distinct non-empty lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// High-water mark of the queue depth over this queue's life.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total
    }

    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    pub fn backpressure_total(&self) -> u64 {
        self.backpressure_total
    }

    /// All queued items in global sequence order (read-only view).
    pub fn iter_pending(&self) -> Vec<(&str, u64, &T)> {
        let mut out: Vec<(&str, u64, &T)> = self
            .lanes
            .iter()
            .flat_map(|(lane, q)| q.iter().map(move |(seq, item)| (lane.as_str(), *seq, item)))
            .collect();
        out.sort_by_key(|(_, seq, _)| *seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_names(batch: &[Admitted<u32>]) -> Vec<(String, u32)> {
        batch.iter().map(|a| (a.lane.clone(), a.item)).collect()
    }

    #[test]
    fn unlimited_drains_in_global_sequence_order() {
        let mut q = AdmissionQueue::new(AdmissionConfig::unlimited());
        q.enqueue("b", 1u32, 0).unwrap();
        q.enqueue("a", 2u32, 0).unwrap();
        q.enqueue("b", 3u32, 0).unwrap();
        let batch = q.admit();
        assert_eq!(
            drain_names(&batch),
            vec![("b".into(), 1), ("a".into(), 2), ("b".into(), 3)],
            "legacy queue order: enqueue order, not lane order"
        );
        assert!(q.is_empty());
        assert_eq!(q.admitted_total(), 3);
    }

    #[test]
    fn round_robin_serves_each_lane_before_repeats() {
        let mut q = AdmissionQueue::new(AdmissionConfig::batched(4, 100));
        // Lane a floods; lanes b and c each queue one.
        for i in 0..5u32 {
            q.enqueue("a", i, 0).unwrap();
        }
        q.enqueue("b", 100, 0).unwrap();
        q.enqueue("c", 200, 0).unwrap();
        let batch = q.admit();
        assert_eq!(
            drain_names(&batch),
            vec![
                ("a".into(), 0),
                ("b".into(), 100),
                ("c".into(), 200),
                ("a".into(), 1),
            ],
            "one per lane per rotation: the flooder cannot starve b/c"
        );
        // The cursor persists: the next wave resumes after lane a,
        // wrapping back to it (the only lane left) for its 3 items.
        let batch2 = q.admit();
        assert_eq!(drain_names(&batch2), vec![("a".into(), 2), ("a".into(), 3), ("a".into(), 4)]);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn backpressure_reports_a_retry_wave_ahead_of_the_backlog() {
        let mut q = AdmissionQueue::new(AdmissionConfig::batched(2, 4));
        for i in 0..4u32 {
            q.enqueue("t", i, 3).unwrap();
        }
        let (err, bounced) = q.enqueue("t", 99, 3).unwrap_err();
        assert_eq!(bounced, 99, "the rejected item rides back to the caller");
        match err {
            AdmissionError::Backpressure { retry_wave, depth } => {
                assert_eq!(depth, 4);
                // depth 4 / quota 2 = 2 waves of draining after this one.
                assert_eq!(retry_wave, 3 + 1 + 2);
            }
        }
        assert_eq!(q.backpressure_total(), 1);
        assert_eq!(err.retry_wave(), Some(6));
    }

    #[test]
    fn requeue_front_restores_fifo_position() {
        let mut q = AdmissionQueue::new(AdmissionConfig::batched(2, 100));
        q.enqueue("a", 1u32, 0).unwrap();
        q.enqueue("a", 2u32, 0).unwrap();
        let batch = q.admit();
        assert_eq!(batch.len(), 2);
        // Spill the first admitted item back: it must come out first
        // again, ahead of the one behind it in the lane.
        let first = batch.into_iter().next().unwrap();
        q.requeue_front(first);
        q.enqueue("a", 3u32, 1).unwrap();
        let batch2 = q.admit();
        assert_eq!(
            drain_names(&batch2),
            vec![("a".into(), 1), ("a".into(), 3)],
            "requeued item keeps its lane-front position"
        );
    }

    #[test]
    fn peak_depth_tracks_high_water_mark() {
        let mut q = AdmissionQueue::new(AdmissionConfig::unlimited());
        q.enqueue("a", 1u32, 0).unwrap();
        q.enqueue("b", 2u32, 0).unwrap();
        assert_eq!(q.peak_depth(), 2);
        let _ = q.admit();
        assert_eq!(q.peak_depth(), 2, "peak survives the drain");
        q.enqueue("a", 3u32, 1).unwrap();
        assert_eq!(q.peak_depth(), 2);
    }

    #[test]
    fn iter_pending_is_sequence_ordered_without_draining() {
        let mut q = AdmissionQueue::new(AdmissionConfig::unlimited());
        q.enqueue("z", 10u32, 0).unwrap();
        q.enqueue("a", 20u32, 0).unwrap();
        let view: Vec<u32> = q.iter_pending().iter().map(|(_, _, v)| **v).collect();
        assert_eq!(view, vec![10, 20]);
        assert_eq!(q.pending(), 2, "read-only");
    }
}
