//! # androne-planner
//!
//! The cloud-side flight planner of the AnDrone reproduction (paper
//! Section 4): assigns virtual drones to physical flights with the
//! Dorling et al. VRP and autonomously pilots drones between
//! waypoints.
//!
//! - [`vrp`]: the energy-constrained vehicle routing problem with a
//!   simulated-annealing solver (including the paper's stated
//!   limitation that waypoints of different virtual drones may
//!   interleave).
//! - [`constraints`]: waypoint ordering and grouping — the paper's
//!   stated future work, implemented as an extension
//!   ([`vrp::VrpProblem::solve_constrained`]).
//! - [`binpack`]: deterministic first-fit packing of an admitted
//!   order batch onto a large simulated fleet — the cheap shape for
//!   thousand-tenant waves where per-waypoint annealing is overkill.
//! - [`mission`]: solved routes turned into executable flight plans
//!   with ETAs and operating windows.
//! - [`pilot`]: the autonomous waypoint pilot with per-waypoint
//!   energy/time allotment enforcement.

pub mod binpack;
pub mod constraints;
pub mod mission;
pub mod pilot;
pub mod vrp;

pub use binpack::{bin_pack, PackItem, PackedFlight, Packing};
pub use constraints::{ConstraintViolation, RouteConstraints};
pub use mission::{FlightPlan, Leg};
pub use pilot::{Autopilot, PilotEvent, PILOT_CLIENT};
pub use vrp::{Route, VrpError, VrpProblem, VrpSolution, WaypointTask};
