//! Waypoint ordering and grouping constraints.
//!
//! **Extension beyond the paper.** The paper's planner treats all
//! waypoints independently: "users may not prescribe that waypoints
//! be traversed in a specified order and the algorithm may decide to
//! visit waypoints of one virtual drone in the middle of a set of
//! waypoints of another virtual drone. Providing a planner algorithm
//! that can support waypoint ordering and grouping is an area of
//! future work" (Section 4). This module implements that future
//! work:
//!
//! - **ordering**: pairs `(a, b)` of task indices that must ride the
//!   same route with `a` visited before `b`;
//! - **grouping**: sets of task indices that must be visited
//!   contiguously on one route (no other party's waypoints
//!   interleaved);
//! - **party capacity**: at most N distinct parties (virtual drones)
//!   per route — a physical drone's board memory hosts only so many
//!   185 MiB virtual-drone containers (Figure 12), so an
//!   energy-feasible route can still be memory-infeasible.
//!
//! Constraints are enforced by a deterministic repair pass applied
//! to every candidate the annealer evaluates, so accepted solutions
//! are always feasible; the annealer then optimizes within the
//! feasible space.

use crate::vrp::{Route, VrpSolution};

/// Ordering and grouping constraints over a problem's task indices.
#[derive(Debug, Clone, Default)]
pub struct RouteConstraints {
    /// `(before, after)`: both on one route, `before` first.
    pub ordered: Vec<(usize, usize)>,
    /// Each group's tasks ride one route, contiguously.
    pub groups: Vec<Vec<usize>>,
    /// Parties for the capacity cap: each inner vec is one party's
    /// task indices. Unlike [`groups`](Self::groups), parties carry
    /// no contiguity requirement — they only count against
    /// [`max_parties_per_route`](Self::max_parties_per_route).
    pub parties: Vec<Vec<usize>>,
    /// Maximum distinct parties one route may host (a physical
    /// drone's virtual-drone container capacity). `None` = unlimited.
    pub max_parties_per_route: Option<usize>,
}

impl RouteConstraints {
    /// No constraints (the paper's baseline behaviour).
    pub fn none() -> Self {
        RouteConstraints::default()
    }

    /// Convenience: require `tasks` to be visited in the given order
    /// (adds the chain of pairs) on one route.
    pub fn in_order(mut self, tasks: &[usize]) -> Self {
        for w in tasks.windows(2) {
            self.ordered.push((w[0], w[1]));
        }
        self
    }

    /// Convenience: require `tasks` to form a contiguous group.
    pub fn grouped(mut self, tasks: &[usize]) -> Self {
        self.groups.push(tasks.to_vec());
        self
    }

    /// Convenience: cap routes at `cap` distinct parties, where each
    /// entry of `parties` lists one party's task indices.
    pub fn with_party_capacity(mut self, parties: Vec<Vec<usize>>, cap: usize) -> Self {
        self.parties = parties;
        self.max_parties_per_route = Some(cap);
        self
    }

    /// Whether the capacity cap can actually bind: fewer parties
    /// than the cap can never violate it, so the constraint is inert
    /// and the unconstrained (bit-identical legacy) solve path is
    /// taken.
    fn capacity_active(&self) -> bool {
        self.max_parties_per_route
            .is_some_and(|cap| self.parties.len() > cap)
    }

    /// Whether there is anything to enforce.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty() && self.groups.is_empty() && !self.capacity_active()
    }

    /// Checks a solution, returning the first violation found.
    pub fn check(&self, sol: &VrpSolution) -> Result<(), ConstraintViolation> {
        // Locate each task: (route, position).
        let locate = |task: usize| -> Option<(usize, usize)> {
            for (r, route) in sol.routes.iter().enumerate() {
                if let Some(p) = route.stops.iter().position(|&s| s == task) {
                    return Some((r, p));
                }
            }
            None
        };
        for &(before, after) in &self.ordered {
            let (Some((ra, pa)), Some((rb, pb))) = (locate(before), locate(after)) else {
                continue; // Coverage violations are VrpProblem::validate's job.
            };
            if ra != rb {
                return Err(ConstraintViolation::OrderSplitAcrossRoutes { before, after });
            }
            if pa >= pb {
                return Err(ConstraintViolation::OutOfOrder { before, after });
            }
        }
        for (gi, group) in self.groups.iter().enumerate() {
            let mut positions: Vec<(usize, usize)> = group
                .iter()
                .filter_map(|&t| locate(t))
                .collect();
            if positions.is_empty() {
                continue;
            }
            let route = positions[0].0;
            if positions.iter().any(|(r, _)| *r != route) {
                return Err(ConstraintViolation::GroupSplitAcrossRoutes { group: gi });
            }
            positions.sort_by_key(|(_, p)| *p);
            let first = positions[0].1;
            let contiguous = positions
                .iter()
                .enumerate()
                .all(|(i, (_, p))| *p == first + i);
            if !contiguous {
                return Err(ConstraintViolation::GroupInterleaved { group: gi });
            }
        }
        if self.capacity_active() {
            let cap = self.max_parties_per_route.unwrap_or(usize::MAX).max(1);
            for (r, route) in sol.routes.iter().enumerate() {
                let hosted = self.parties_on(route);
                if hosted.len() > cap {
                    return Err(ConstraintViolation::RouteOverCapacity {
                        route: r,
                        parties: hosted.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Distinct party indices with at least one stop on `route`, in
    /// ascending party order.
    fn parties_on(&self, route: &Route) -> Vec<usize> {
        self.parties
            .iter()
            .enumerate()
            .filter(|(_, p)| route.stops.iter().any(|s| p.contains(s)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Repairs a solution in place so every constraint holds.
    ///
    /// Groups are gathered first (all members moved to the route and
    /// position of the group's earliest member), then ordering pairs
    /// are fixed by moving each `after` task to just behind its
    /// `before` on the same route. The pass is deterministic and
    /// terminates because each step strictly reduces a violation
    /// count bounded by the constraint list.
    pub fn repair(&self, sol: &mut VrpSolution) {
        // Gather groups contiguously.
        for group in &self.groups {
            if group.len() < 2 {
                continue;
            }
            // Find the earliest member's route/position.
            let mut anchor: Option<(usize, usize)> = None;
            for (r, route) in sol.routes.iter().enumerate() {
                if let Some(p) = route.stops.iter().position(|s| group.contains(s)) {
                    // Prefer the route holding the most members; the
                    // earliest route wins ties.
                    let count = route.stops.iter().filter(|s| group.contains(s)).count();
                    let better = match anchor {
                        None => true,
                        Some((best_r, _)) => {
                            count
                                > sol.routes[best_r]
                                    .stops
                                    .iter()
                                    .filter(|s| group.contains(s))
                                    .count()
                        }
                    };
                    if better {
                        anchor = Some((r, p));
                    }
                }
            }
            let Some((target_route, _)) = anchor else {
                continue;
            };
            // Extract every member (preserving their relative order
            // of appearance across the whole solution).
            let mut members = Vec::new();
            for route in &mut sol.routes {
                route.stops.retain(|s| {
                    if group.contains(s) {
                        members.push(*s);
                        false
                    } else {
                        true
                    }
                });
            }
            // Reinsert contiguously at the front-most feasible spot.
            let at = sol.routes[target_route]
                .stops
                .len()
                .min(self.group_anchor_pos(&sol.routes[target_route]));
            for (i, m) in members.into_iter().enumerate() {
                sol.routes[target_route].stops.insert(at + i, m);
            }
        }

        // Fix ordering pairs (iterate until stable; bounded).
        for _ in 0..self.ordered.len() + 1 {
            let mut changed = false;
            for &(before, after) in &self.ordered {
                let find = |sol: &VrpSolution, task: usize| {
                    sol.routes.iter().enumerate().find_map(|(r, route)| {
                        route.stops.iter().position(|&s| s == task).map(|p| (r, p))
                    })
                };
                let (Some((ra, pa)), Some((rb, pb))) = (find(sol, before), find(sol, after))
                else {
                    continue;
                };
                if ra == rb && pa < pb {
                    continue;
                }
                // Move `after` to behind `before` on its route. If
                // `before` sits inside a group that `after` is not
                // part of, insert past the end of that group so the
                // move cannot break contiguity.
                let task = sol.routes[rb].stops.remove(pb);
                let Some((ra, pa)) = find(sol, before) else {
                    // Degenerate `(x, x)` pair: removing `after` also
                    // removed `before`. Restore and skip.
                    sol.routes[rb].stops.insert(pb, task);
                    continue;
                };
                let mut at = pa + 1;
                if let Some(group) = self
                    .groups
                    .iter()
                    .find(|g| g.contains(&before) && !g.contains(&after))
                {
                    while at < sol.routes[ra].stops.len()
                        && group.contains(&sol.routes[ra].stops[at])
                    {
                        at += 1;
                    }
                }
                sol.routes[ra].stops.insert(at, task);
                changed = true;
            }
            if !changed {
                break;
            }
        }

        // Enforce the party-capacity cap last, so the earlier passes
        // cannot re-violate it. Each step evicts one whole party from
        // an over-capacity route onto a route that either already
        // hosts it or has spare capacity (opening a fresh route as a
        // last resort), so the total excess strictly decreases and
        // the pass terminates. Eviction appends the party's stops as
        // a block in visit order; intra-party ordering pairs survive,
        // cross-party ordering does not compose with capacity.
        if self.capacity_active() {
            let cap = self.max_parties_per_route.unwrap_or(usize::MAX).max(1);
            while let Some((r, hosted)) = sol
                .routes
                .iter()
                .map(|route| self.parties_on(route))
                .enumerate()
                .find(|(_, hosted)| hosted.len() > cap)
            {
                // Victim: the hosted party with the fewest stops on
                // this route (ties to the lowest party index).
                let stops_of = |party: usize, route: &Route| -> Vec<usize> {
                    route
                        .stops
                        .iter()
                        .copied()
                        .filter(|s| self.parties[party].contains(s))
                        .collect()
                };
                let victim = hosted
                    .iter()
                    .copied()
                    .min_by_key(|&p| stops_of(p, &sol.routes[r]).len())
                    .unwrap_or(hosted[0]);
                // Destination: a route already hosting the victim,
                // else the fullest route still under the cap, else a
                // fresh route.
                let dest = sol
                    .routes
                    .iter()
                    .enumerate()
                    .filter(|&(d, _)| d != r)
                    .map(|(d, route)| (d, self.parties_on(route)))
                    .filter(|(_, h)| h.contains(&victim) || h.len() < cap)
                    .max_by_key(|(d, h)| (h.contains(&victim), h.len(), usize::MAX - d))
                    .map(|(d, _)| d);
                let moved = stops_of(victim, &sol.routes[r]);
                sol.routes[r].stops.retain(|s| !moved.contains(s));
                match dest {
                    Some(d) => sol.routes[d].stops.extend(moved),
                    None => sol.routes.push(Route { stops: moved }),
                }
            }
        }
        sol.routes.retain(|r| !r.stops.is_empty());
    }

    fn group_anchor_pos(&self, route: &Route) -> usize {
        // Insert groups at the end of the target route by default;
        // the annealer will slide them around via normal moves.
        route.stops.len()
    }
}

/// A constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// An ordered pair landed on different routes.
    OrderSplitAcrossRoutes {
        /// The earlier task.
        before: usize,
        /// The later task.
        after: usize,
    },
    /// An ordered pair is reversed on its route.
    OutOfOrder {
        /// The earlier task.
        before: usize,
        /// The later task.
        after: usize,
    },
    /// A group's tasks are on different routes.
    GroupSplitAcrossRoutes {
        /// Index into [`RouteConstraints::groups`].
        group: usize,
    },
    /// A group is on one route but interleaved with other tasks.
    GroupInterleaved {
        /// Index into [`RouteConstraints::groups`].
        group: usize,
    },
    /// A route hosts more parties than the capacity cap allows.
    RouteOverCapacity {
        /// Index into the solution's routes.
        route: usize,
        /// Distinct parties the route hosts.
        parties: usize,
    },
}

impl std::fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintViolation::OrderSplitAcrossRoutes { before, after } => {
                write!(f, "ordered tasks {before}->{after} split across routes")
            }
            ConstraintViolation::OutOfOrder { before, after } => {
                write!(f, "task {after} visited before {before}")
            }
            ConstraintViolation::GroupSplitAcrossRoutes { group } => {
                write!(f, "group {group} split across routes")
            }
            ConstraintViolation::GroupInterleaved { group } => {
                write!(f, "group {group} interleaved with other tasks")
            }
            ConstraintViolation::RouteOverCapacity { route, parties } => {
                write!(f, "route {route} hosts {parties} parties, over capacity")
            }
        }
    }
}

impl std::error::Error for ConstraintViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(routes: &[&[usize]]) -> VrpSolution {
        VrpSolution {
            routes: routes
                .iter()
                .map(|r| Route { stops: r.to_vec() })
                .collect(),
        }
    }

    #[test]
    fn check_accepts_satisfied_constraints() {
        let c = RouteConstraints::none().in_order(&[0, 1, 2]).grouped(&[3, 4]);
        let s = sol(&[&[0, 1, 2], &[5, 3, 4]]);
        c.check(&s).unwrap();
    }

    #[test]
    fn check_flags_out_of_order() {
        let c = RouteConstraints::none().in_order(&[0, 1]);
        assert_eq!(
            c.check(&sol(&[&[1, 0]])),
            Err(ConstraintViolation::OutOfOrder { before: 0, after: 1 })
        );
        assert_eq!(
            c.check(&sol(&[&[0], &[1]])),
            Err(ConstraintViolation::OrderSplitAcrossRoutes { before: 0, after: 1 })
        );
    }

    #[test]
    fn check_flags_broken_groups() {
        let c = RouteConstraints::none().grouped(&[0, 1]);
        assert_eq!(
            c.check(&sol(&[&[0, 2, 1]])),
            Err(ConstraintViolation::GroupInterleaved { group: 0 })
        );
        assert_eq!(
            c.check(&sol(&[&[0], &[1]])),
            Err(ConstraintViolation::GroupSplitAcrossRoutes { group: 0 })
        );
    }

    #[test]
    fn repair_fixes_ordering() {
        let c = RouteConstraints::none().in_order(&[0, 1, 2]);
        let mut s = sol(&[&[2, 1, 0, 5]]);
        c.repair(&mut s);
        c.check(&s).unwrap();
        assert_eq!(s.routes[0].stops.len(), 4, "no task lost");
    }

    #[test]
    fn repair_fixes_cross_route_ordering() {
        let c = RouteConstraints::none().in_order(&[0, 1]);
        let mut s = sol(&[&[0, 5], &[1, 6]]);
        c.repair(&mut s);
        c.check(&s).unwrap();
        let all: usize = s.routes.iter().map(|r| r.stops.len()).sum();
        assert_eq!(all, 4);
    }

    #[test]
    fn repair_gathers_groups() {
        let c = RouteConstraints::none().grouped(&[0, 1, 2]);
        let mut s = sol(&[&[0, 7, 1], &[2, 8]]);
        c.repair(&mut s);
        c.check(&s).unwrap();
        let all: usize = s.routes.iter().map(|r| r.stops.len()).sum();
        assert_eq!(all, 5, "no task lost");
    }

    #[test]
    fn ordering_into_a_group_does_not_break_contiguity() {
        // Order (0 -> 7) where 0 sits inside group [0, 1]: the repair
        // must place 7 past the group, not inside it.
        let c = RouteConstraints::none().grouped(&[0, 1]).in_order(&[0, 7]);
        let mut s = sol(&[&[7, 0, 1]]);
        c.repair(&mut s);
        c.check(&s).unwrap();
        assert_eq!(s.routes[0].stops, vec![0, 1, 7]);
    }

    #[test]
    fn capacity_with_slack_is_inert() {
        // Three parties, cap three: the constraint can never bind,
        // so the legacy unconstrained solve path stays bit-identical.
        let c = RouteConstraints::none()
            .with_party_capacity(vec![vec![0], vec![1], vec![2]], 3);
        assert!(c.is_empty());
        c.check(&sol(&[&[0, 1, 2]])).unwrap();
    }

    #[test]
    fn check_flags_over_capacity_routes() {
        let c = RouteConstraints::none()
            .with_party_capacity(vec![vec![0], vec![1], vec![2], vec![3]], 3);
        assert!(!c.is_empty());
        c.check(&sol(&[&[0, 1, 2], &[3]])).unwrap();
        assert_eq!(
            c.check(&sol(&[&[0, 1, 2, 3]])),
            Err(ConstraintViolation::RouteOverCapacity { route: 0, parties: 4 })
        );
    }

    #[test]
    fn repair_evicts_surplus_parties() {
        // Four single-task parties jammed onto one route, cap 3: the
        // smallest party is evicted onto a route with headroom.
        let c = RouteConstraints::none()
            .with_party_capacity(vec![vec![0, 4], vec![1], vec![2], vec![3]], 3);
        let mut s = sol(&[&[0, 1, 2, 3, 4], &[]]);
        c.repair(&mut s);
        c.check(&s).unwrap();
        let all: usize = s.routes.iter().map(|r| r.stops.len()).sum();
        assert_eq!(all, 5, "no task lost");
    }

    #[test]
    fn repair_opens_a_route_when_no_destination_fits() {
        let c = RouteConstraints::none()
            .with_party_capacity(vec![vec![0], vec![1], vec![2], vec![3]], 1);
        let mut s = sol(&[&[0, 1], &[2, 3]]);
        c.repair(&mut s);
        c.check(&s).unwrap();
        assert_eq!(s.routes.len(), 4, "each party gets its own route");
    }

    #[test]
    fn repair_handles_combined_constraints() {
        let c = RouteConstraints::none()
            .grouped(&[0, 1, 2])
            .in_order(&[0, 1, 2]);
        let mut s = sol(&[&[2, 7, 0], &[1, 8]]);
        c.repair(&mut s);
        c.check(&s).unwrap();
    }
}
