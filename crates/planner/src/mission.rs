//! Mission plans: a solved route turned into an executable flight.

use androne_hal::GeoPoint;
use androne_energy::DorlingModel;

use crate::vrp::{VrpProblem, VrpSolution};

/// One leg of a physical drone's flight plan.
#[derive(Debug, Clone)]
pub struct Leg {
    /// The virtual drone served at this waypoint.
    pub owner: String,
    /// Waypoint position.
    pub position: GeoPoint,
    /// Geofence radius granted at this waypoint, m.
    pub max_radius_m: f64,
    /// Energy the virtual drone may spend here, J.
    pub service_energy_j: f64,
    /// Maximum service time here, s.
    pub service_time_s: f64,
    /// Estimated arrival time from launch, s (assuming full service
    /// times at earlier waypoints).
    pub eta_s: f64,
}

/// A full plan for one physical drone flight.
#[derive(Debug, Clone)]
pub struct FlightPlan {
    /// Launch/return base.
    pub base: GeoPoint,
    /// Ordered legs.
    pub legs: Vec<Leg>,
    /// Estimated total flight time, s.
    pub estimated_duration_s: f64,
    /// Estimated total energy, J.
    pub estimated_energy_j: f64,
}

impl FlightPlan {
    /// Builds plans (one per route) from a VRP solution. `radius_of`
    /// supplies the geofence radius per task index.
    pub fn from_solution(
        problem: &VrpProblem,
        solution: &VrpSolution,
        radius_of: impl Fn(usize) -> f64,
    ) -> Vec<FlightPlan> {
        solution
            .routes
            .iter()
            .map(|route| {
                let mut legs = Vec::new();
                let mut here = problem.depot;
                let mut eta = 0.0;
                for &i in &route.stops {
                    let t = &problem.tasks[i];
                    eta += problem.model.leg_time_s(here.distance_m(&t.position));
                    legs.push(Leg {
                        owner: t.owner.clone(),
                        position: t.position,
                        max_radius_m: radius_of(i),
                        service_energy_j: t.service_energy_j,
                        service_time_s: t.service_time_s,
                        eta_s: eta,
                    });
                    eta += t.service_time_s;
                    here = t.position;
                }
                FlightPlan {
                    base: problem.depot,
                    legs,
                    estimated_duration_s: problem.route_time_s(route),
                    estimated_energy_j: problem.route_energy_j(route),
                }
            })
            .collect()
    }

    /// The operating window (start, end) in seconds from launch for
    /// the given owner's first waypoint — what the portal shows the
    /// user as an estimate (paper Section 2), padded by 20%.
    pub fn operating_window(&self, owner: &str) -> Option<(f64, f64)> {
        let leg = self.legs.iter().find(|l| l.owner == owner)?;
        Some((leg.eta_s * 0.8, (leg.eta_s + leg.service_time_s) * 1.2))
    }

    /// Flight-time estimate from the energy model for a given
    /// battery budget (used for portal quotes).
    pub fn fits_battery(&self, budget_j: f64) -> bool {
        self.estimated_energy_j <= budget_j
    }

    /// Hover-equivalent endurance estimate for quoting, s.
    pub fn endurance_estimate_s(model: &DorlingModel, budget_j: f64) -> f64 {
        model.hover_endurance_s(budget_j, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrp::WaypointTask;

    const DEPOT: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    fn plan() -> FlightPlan {
        let problem = VrpProblem {
            depot: DEPOT,
            tasks: vec![
                WaypointTask {
                    owner: "survey".into(),
                    position: DEPOT.offset_m(500.0, 0.0, 15.0),
                    service_energy_j: 10_000.0,
                    service_time_s: 120.0,
                },
                WaypointTask {
                    owner: "photo".into(),
                    position: DEPOT.offset_m(500.0, 400.0, 15.0),
                    service_energy_j: 5_000.0,
                    service_time_s: 60.0,
                },
            ],
            fleet_size: 1,
            battery_budget_j: 160_000.0,
            model: DorlingModel::f450_prototype(),
        };
        let sol = problem.solve(5_000, 1);
        let mut plans = FlightPlan::from_solution(&problem, &sol, |_| 30.0);
        assert_eq!(plans.len(), 1);
        plans.remove(0)
    }

    #[test]
    fn etas_are_monotone_and_account_for_service() {
        let p = plan();
        assert_eq!(p.legs.len(), 2);
        assert!(p.legs[0].eta_s > 0.0);
        assert!(
            p.legs[1].eta_s > p.legs[0].eta_s + p.legs[0].service_time_s - 1e-9,
            "second ETA includes first service"
        );
        assert!(p.estimated_duration_s > p.legs[1].eta_s);
    }

    #[test]
    fn operating_window_brackets_eta() {
        let p = plan();
        let leg = p.legs.iter().find(|l| l.owner == "photo").unwrap();
        let (start, end) = p.operating_window("photo").unwrap();
        assert!(start <= leg.eta_s);
        assert!(end >= leg.eta_s + leg.service_time_s);
        assert!(p.operating_window("nobody").is_none());
    }

    #[test]
    fn battery_fit_check() {
        let p = plan();
        assert!(p.fits_battery(200_000.0));
        assert!(!p.fits_battery(1_000.0));
    }
}
