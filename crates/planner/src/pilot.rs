//! The autonomous waypoint pilot.
//!
//! The flight planner "autonomously pilots drones from waypoint to
//! waypoint" (paper Section 4) over its unrestricted MAVProxy
//! connection. At each waypoint the pilot hands over to the VDC
//! (which grants the virtual drone its devices and flight control)
//! and waits until the virtual drone completes, releases, or exhausts
//! its energy/time allotment; then it flies on. After the last
//! waypoint the drone returns to base and lands.

use androne_flight::{MavProxy, Sitl};
use androne_hal::GeoPoint;
use androne_mavlink::{deg_to_e7, FlightMode, MavCmd, Message};

use crate::mission::FlightPlan;

/// The proxy client name the pilot uses.
pub const PILOT_CLIENT: &str = "flight-planner";

/// Events the pilot reports to its supervisor (the VDC).
#[derive(Debug, Clone, PartialEq)]
pub enum PilotEvent {
    /// Launched from base.
    Launched,
    /// Arrived at leg `index`; control should be handed to `owner`.
    ArrivedAtWaypoint {
        /// Leg index.
        index: usize,
        /// Virtual drone to hand over to.
        owner: String,
    },
    /// The virtual drone's energy allotment ran out at leg `index`.
    EnergyExhausted {
        /// Leg index.
        index: usize,
    },
    /// The virtual drone's time allotment ran out at leg `index`.
    TimeExhausted {
        /// Leg index.
        index: usize,
    },
    /// Departed leg `index` toward the next.
    DepartedWaypoint {
        /// Leg index.
        index: usize,
    },
    /// Landed back at base; flight complete.
    FlightComplete,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PilotState {
    Idle,
    TakingOff,
    EnRoute { leg: usize },
    AtWaypoint { leg: usize },
    Returning,
    Done,
}

/// The autonomous pilot for one flight plan.
pub struct Autopilot {
    plan: FlightPlan,
    state: PilotState,
    /// Energy consumed when the current waypoint service began.
    service_energy_start: f64,
    /// Steps spent at the current waypoint.
    service_steps: u64,
    release_requested: bool,
    cruise_alt: f64,
    cruise_speed: f64,
    /// Ground-side command drops already compensated for by a resend.
    drops_seen: u64,
    /// Steps until the next resend attempt is allowed.
    resend_cooldown: u64,
}

impl Autopilot {
    /// Creates a pilot for `plan`.
    pub fn new(plan: FlightPlan) -> Self {
        Autopilot {
            plan,
            state: PilotState::Idle,
            service_energy_start: 0.0,
            service_steps: 0,
            release_requested: false,
            cruise_alt: 15.0,
            cruise_speed: 5.0,
            drops_seen: 0,
            resend_cooldown: 0,
        }
    }

    /// The plan being flown.
    pub fn plan(&self) -> &FlightPlan {
        &self.plan
    }

    /// Whether the flight has completed.
    pub fn done(&self) -> bool {
        self.state == PilotState::Done
    }

    /// The leg currently being serviced, if any.
    pub fn current_waypoint(&self) -> Option<usize> {
        match self.state {
            PilotState::AtWaypoint { leg } => Some(leg),
            _ => None,
        }
    }

    /// Requests departure from the current waypoint (the virtual
    /// drone finished, or the VDC forced it).
    pub fn release_waypoint(&mut self) {
        self.release_requested = true;
    }

    /// Aborts the remaining legs and returns to base immediately
    /// (inclement weather, provider override). Virtual drones with
    /// unvisited waypoints are saved for a later flight.
    pub fn abort_to_base(&mut self, proxy: &mut MavProxy, sitl: &mut Sitl) {
        if matches!(self.state, PilotState::Done) {
            return;
        }
        proxy.client_send(
            PILOT_CLIENT,
            Message::CommandLong {
                command: MavCmd::NavReturnToLaunch,
                params: [0.0; 7],
            },
            sitl,
        );
        self.state = PilotState::Returning;
    }

    fn goto_msg(&self, target: GeoPoint) -> Message {
        Message::SetPositionTargetGlobalInt {
            lat: deg_to_e7(target.latitude),
            lon: deg_to_e7(target.longitude),
            alt: target.altitude as f32,
            speed: self.cruise_speed as f32,
        }
    }

    fn goto(&self, proxy: &mut MavProxy, sitl: &mut Sitl, target: GeoPoint) {
        proxy.client_send(PILOT_CLIENT, self.goto_msg(target), sitl);
    }

    /// Re-issues `msg` when the proxy has dropped ground commands the
    /// pilot has not yet compensated for, at most once per second. A
    /// partitioned or lossy link silently swallows commands, so the
    /// FC may never have received the current navigation target; a
    /// resend that is itself dropped keeps the trigger armed, one
    /// that gets through retires it. Drop-free flights never resend,
    /// keeping their traces bit-identical.
    fn resend_if_dropped(&mut self, proxy: &mut MavProxy, sitl: &mut Sitl, msg: Message) {
        if self.resend_cooldown > 0 {
            self.resend_cooldown -= 1;
        }
        if proxy.commands_dropped <= self.drops_seen || self.resend_cooldown > 0 {
            return;
        }
        self.resend_cooldown = 400;
        let before = proxy.commands_dropped;
        proxy.client_send(PILOT_CLIENT, msg, sitl);
        if proxy.commands_dropped == before {
            self.drops_seen = proxy.commands_dropped;
        }
    }

    /// Advances the pilot one proxy step, returning any events.
    ///
    /// The caller must have registered [`PILOT_CLIENT`] as an
    /// unrestricted proxy client.
    pub fn step(&mut self, proxy: &mut MavProxy, sitl: &mut Sitl) -> Vec<PilotEvent> {
        let mut events = Vec::new();
        match self.state {
            PilotState::Idle => {
                // Launch sequence.
                proxy.client_send(
                    PILOT_CLIENT,
                    Message::SetMode {
                        mode: FlightMode::Guided,
                    },
                    sitl,
                );
                proxy.client_send(
                    PILOT_CLIENT,
                    Message::CommandLong {
                        command: MavCmd::ComponentArmDisarm,
                        params: [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                    },
                    sitl,
                );
                proxy.client_send(
                    PILOT_CLIENT,
                    Message::CommandLong {
                        command: MavCmd::NavTakeoff,
                        params: [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, self.cruise_alt as f32],
                    },
                    sitl,
                );
                self.state = PilotState::TakingOff;
                events.push(PilotEvent::Launched);
            }
            PilotState::TakingOff => {
                proxy.step(sitl);
                if sitl.position().altitude >= self.cruise_alt - 1.0 {
                    self.advance_to_next_leg(0, proxy, sitl, &mut events);
                }
            }
            PilotState::EnRoute { leg } => {
                proxy.step(sitl);
                let mut nav_target = self.plan.legs[leg].position;
                if nav_target.altitude < 2.0 {
                    nav_target.altitude = self.cruise_alt;
                }
                self.resend_if_dropped(proxy, sitl, self.goto_msg(nav_target));
                let target = self.plan.legs[leg].position;
                if sitl.position().distance_m(&target) < 2.5 {
                    self.state = PilotState::AtWaypoint { leg };
                    self.service_energy_start = sitl.energy_consumed_j();
                    self.service_steps = 0;
                    self.release_requested = false;
                    events.push(PilotEvent::ArrivedAtWaypoint {
                        index: leg,
                        owner: self.plan.legs[leg].owner.clone(),
                    });
                }
            }
            PilotState::AtWaypoint { leg } => {
                proxy.step(sitl);
                self.service_steps += 1;
                let spec = &self.plan.legs[leg];
                let used = sitl.energy_consumed_j() - self.service_energy_start;
                let elapsed_s = self.service_steps as f64 / 400.0;
                let mut depart = self.release_requested;
                if !depart && used >= spec.service_energy_j {
                    events.push(PilotEvent::EnergyExhausted { index: leg });
                    depart = true;
                }
                if !depart && elapsed_s >= spec.service_time_s {
                    events.push(PilotEvent::TimeExhausted { index: leg });
                    depart = true;
                }
                if depart {
                    events.push(PilotEvent::DepartedWaypoint { index: leg });
                    // Regain guided control for transit.
                    proxy.client_send(
                        PILOT_CLIENT,
                        Message::SetMode {
                            mode: FlightMode::Guided,
                        },
                        sitl,
                    );
                    self.advance_to_next_leg(leg + 1, proxy, sitl, &mut events);
                }
            }
            PilotState::Returning => {
                proxy.step(sitl);
                self.resend_if_dropped(
                    proxy,
                    sitl,
                    Message::CommandLong {
                        command: MavCmd::NavReturnToLaunch,
                        params: [0.0; 7],
                    },
                );
                if sitl.on_ground() {
                    self.state = PilotState::Done;
                    events.push(PilotEvent::FlightComplete);
                }
            }
            PilotState::Done => {}
        }
        events
    }

    fn advance_to_next_leg(
        &mut self,
        next: usize,
        proxy: &mut MavProxy,
        sitl: &mut Sitl,
        _events: &mut [PilotEvent],
    ) {
        if next < self.plan.legs.len() {
            let mut target = self.plan.legs[next].position;
            if target.altitude < 2.0 {
                target.altitude = self.cruise_alt;
            }
            self.goto(proxy, sitl, target);
            self.state = PilotState::EnRoute { leg: next };
        } else {
            proxy.client_send(
                PILOT_CLIENT,
                Message::CommandLong {
                    command: MavCmd::NavReturnToLaunch,
                    params: [0.0; 7],
                },
                sitl,
            );
            self.state = PilotState::Returning;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mission::Leg;

    const HOME: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    fn plan(legs: Vec<Leg>) -> FlightPlan {
        FlightPlan {
            base: HOME,
            legs,
            estimated_duration_s: 600.0,
            estimated_energy_j: 100_000.0,
        }
    }

    fn leg(owner: &str, north: f64, east: f64, energy: f64, time: f64) -> Leg {
        Leg {
            owner: owner.into(),
            position: HOME.offset_m(north, east, 15.0),
            max_radius_m: 30.0,
            service_energy_j: energy,
            service_time_s: time,
            eta_s: 0.0,
        }
    }

    fn run_until<F: FnMut(&[PilotEvent]) -> bool>(
        pilot: &mut Autopilot,
        proxy: &mut MavProxy,
        sitl: &mut Sitl,
        max_secs: f64,
        mut stop: F,
    ) -> Vec<PilotEvent> {
        let mut all = Vec::new();
        for _ in 0..(max_secs * 400.0) as u64 {
            let evs = pilot.step(proxy, sitl);
            let hit = stop(&evs);
            all.extend(evs);
            if hit || pilot.done() {
                break;
            }
        }
        all
    }

    #[test]
    fn full_flight_visits_waypoints_and_returns() {
        let mut sitl = Sitl::new(HOME, 21);
        let mut proxy = MavProxy::new();
        proxy.add_unrestricted_client(PILOT_CLIENT);
        let mut pilot = Autopilot::new(plan(vec![
            leg("vd-a", 60.0, 0.0, 50_000.0, 5.0),
            leg("vd-b", 60.0, 60.0, 50_000.0, 5.0),
        ]));
        let events = run_until(&mut pilot, &mut proxy, &mut sitl, 300.0, |_| false);
        assert!(events.contains(&PilotEvent::Launched));
        assert!(events.iter().any(|e| matches!(
            e,
            PilotEvent::ArrivedAtWaypoint { index: 0, owner } if owner == "vd-a"
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            PilotEvent::ArrivedAtWaypoint { index: 1, owner } if owner == "vd-b"
        )));
        assert!(events.contains(&PilotEvent::FlightComplete));
        assert!(sitl.on_ground());
        assert!(sitl.position().ground_distance_m(&HOME) < 5.0);
    }

    #[test]
    fn release_departs_waypoint_early() {
        let mut sitl = Sitl::new(HOME, 22);
        let mut proxy = MavProxy::new();
        proxy.add_unrestricted_client(PILOT_CLIENT);
        let mut pilot = Autopilot::new(plan(vec![leg("vd-a", 60.0, 0.0, 50_000.0, 600.0)]));
        run_until(&mut pilot, &mut proxy, &mut sitl, 120.0, |evs| {
            evs.iter()
                .any(|e| matches!(e, PilotEvent::ArrivedAtWaypoint { .. }))
        });
        assert_eq!(pilot.current_waypoint(), Some(0));
        pilot.release_waypoint();
        let events = run_until(&mut pilot, &mut proxy, &mut sitl, 5.0, |evs| {
            evs.iter()
                .any(|e| matches!(e, PilotEvent::DepartedWaypoint { .. }))
        });
        assert!(events
            .iter()
            .any(|e| matches!(e, PilotEvent::DepartedWaypoint { index: 0 })));
    }

    #[test]
    fn time_allotment_forces_departure() {
        let mut sitl = Sitl::new(HOME, 23);
        let mut proxy = MavProxy::new();
        proxy.add_unrestricted_client(PILOT_CLIENT);
        let mut pilot = Autopilot::new(plan(vec![leg("vd-a", 60.0, 0.0, 1e9, 3.0)]));
        let events = run_until(&mut pilot, &mut proxy, &mut sitl, 300.0, |_| false);
        assert!(events
            .iter()
            .any(|e| matches!(e, PilotEvent::TimeExhausted { index: 0 })));
        assert!(events.contains(&PilotEvent::FlightComplete));
    }

    #[test]
    fn energy_allotment_forces_departure() {
        let mut sitl = Sitl::new(HOME, 24);
        let mut proxy = MavProxy::new();
        proxy.add_unrestricted_client(PILOT_CLIENT);
        // Tiny energy allotment: hovering burns through it quickly.
        let mut pilot = Autopilot::new(plan(vec![leg("vd-a", 60.0, 0.0, 300.0, 600.0)]));
        let events = run_until(&mut pilot, &mut proxy, &mut sitl, 300.0, |_| false);
        assert!(events
            .iter()
            .any(|e| matches!(e, PilotEvent::EnergyExhausted { index: 0 })));
    }
}
