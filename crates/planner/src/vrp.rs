//! Vehicle routing with energy constraints.
//!
//! AnDrone's flight planner assigns virtual drones to physical drone
//! flights using the drone-delivery VRP of Dorling et al. (paper
//! Section 4): waypoints play the role of delivery locations, leg
//! costs come from the multirotor energy model, and the energy each
//! virtual drone is allotted at its waypoints is added to the route's
//! energy cost. The objective is to minimize completion time subject
//! to a fleet-size constraint, with battery capacity as a hard
//! feasibility constraint.
//!
//! Dorling et al. solve the VRP with simulated annealing; so do we.
//! The algorithm treats all waypoints independently — it may visit
//! waypoints of one virtual drone in the middle of another virtual
//! drone's set, and cannot honor user-prescribed orderings. The paper
//! calls this out as a limitation, and tests here pin the behaviour.

use androne_hal::GeoPoint;
use androne_energy::DorlingModel;
use rand::rngs::SmallRng;
use rand::Rng;

/// One waypoint visit to schedule.
#[derive(Debug, Clone)]
pub struct WaypointTask {
    /// Owning virtual drone (label only; the solver ignores it).
    pub owner: String,
    /// Where the task happens.
    pub position: GeoPoint,
    /// Energy allotted to the virtual drone at this waypoint, J.
    pub service_energy_j: f64,
    /// Maximum service time at this waypoint, s.
    pub service_time_s: f64,
}

/// The routing problem.
#[derive(Debug, Clone)]
pub struct VrpProblem {
    /// Launch/return base.
    pub depot: GeoPoint,
    /// Waypoint tasks to serve.
    pub tasks: Vec<WaypointTask>,
    /// Maximum number of physical drones.
    pub fleet_size: usize,
    /// Plannable energy per drone battery, J.
    pub battery_budget_j: f64,
    /// The energy model.
    pub model: DorlingModel,
}

/// One drone's route: task indices in visit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Indices into [`VrpProblem::tasks`].
    pub stops: Vec<usize>,
}

/// A solution: one route per drone used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VrpSolution {
    /// Routes (at most `fleet_size`).
    pub routes: Vec<Route>,
}

/// Why a solution is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum VrpError {
    /// A task is visited more or fewer than exactly once.
    CoverageViolation,
    /// A route exceeds the battery budget by the given joules.
    BatteryViolation(f64),
    /// More routes than the fleet allows.
    FleetViolation,
}

impl VrpProblem {
    /// Total energy of a route: depot → stops → depot travel plus
    /// the service energy at each stop.
    pub fn route_energy_j(&self, route: &Route) -> f64 {
        let mut energy = 0.0;
        let mut here = self.depot;
        for &i in &route.stops {
            let t = &self.tasks[i];
            energy += self.model.leg_energy_j(here.distance_m(&t.position), 0.0);
            energy += t.service_energy_j;
            here = t.position;
        }
        energy += self.model.leg_energy_j(here.distance_m(&self.depot), 0.0);
        energy
    }

    /// Total time of a route: travel plus service times.
    pub fn route_time_s(&self, route: &Route) -> f64 {
        let mut time = 0.0;
        let mut here = self.depot;
        for &i in &route.stops {
            let t = &self.tasks[i];
            time += self.model.leg_time_s(here.distance_m(&t.position));
            time += t.service_time_s;
            here = t.position;
        }
        time += self.model.leg_time_s(here.distance_m(&self.depot));
        time
    }

    /// Solution cost: makespan, plus a small total-time tiebreak,
    /// plus heavy penalties for battery violations.
    pub fn cost(&self, sol: &VrpSolution) -> f64 {
        let mut makespan = 0.0f64;
        let mut total = 0.0;
        let mut penalty = 0.0;
        for route in &sol.routes {
            let t = self.route_time_s(route);
            makespan = makespan.max(t);
            total += t;
            let e = self.route_energy_j(route);
            if e > self.battery_budget_j {
                penalty += 10_000.0 + (e - self.battery_budget_j);
            }
        }
        makespan + 0.05 * total + penalty
    }

    /// Validates coverage, battery, and fleet constraints.
    pub fn validate(&self, sol: &VrpSolution) -> Result<(), VrpError> {
        if sol.routes.len() > self.fleet_size {
            return Err(VrpError::FleetViolation);
        }
        let mut seen = vec![0u32; self.tasks.len()];
        for route in &sol.routes {
            for &i in &route.stops {
                if i >= self.tasks.len() {
                    return Err(VrpError::CoverageViolation);
                }
                seen[i] += 1;
            }
        }
        if seen.iter().any(|&c| c != 1) {
            return Err(VrpError::CoverageViolation);
        }
        for route in &sol.routes {
            let e = self.route_energy_j(route);
            if e > self.battery_budget_j {
                return Err(VrpError::BatteryViolation(e - self.battery_budget_j));
            }
        }
        Ok(())
    }

    /// Greedy nearest-neighbour construction, opening a new route
    /// when the battery budget would be exceeded.
    pub fn greedy(&self) -> VrpSolution {
        let mut unvisited: Vec<usize> = (0..self.tasks.len()).collect();
        let mut routes: Vec<Route> = Vec::new();
        while !unvisited.is_empty() {
            let mut route = Route { stops: Vec::new() };
            let mut here = self.depot;
            loop {
                // Nearest unvisited stop that keeps the route feasible.
                let mut best: Option<(usize, f64)> = None;
                for (pos, &task) in unvisited.iter().enumerate() {
                    let d = here.distance_m(&self.tasks[task].position);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        let mut candidate = route.clone();
                        candidate.stops.push(task);
                        if self.route_energy_j(&candidate) <= self.battery_budget_j {
                            best = Some((pos, d));
                        }
                    }
                }
                match best {
                    Some((pos, _)) => {
                        let task = unvisited.remove(pos);
                        here = self.tasks[task].position;
                        route.stops.push(task);
                    }
                    None => break,
                }
            }
            if route.stops.is_empty() {
                // No single stop fits the battery: place it alone
                // (validation will flag the battery violation).
                route.stops.push(unvisited.remove(0));
            }
            routes.push(route);
        }
        // Respect the fleet-size cap by merging the shortest routes.
        while routes.len() > self.fleet_size.max(1) {
            routes.sort_by(|a, b| self.route_time_s(a).total_cmp(&self.route_time_s(b)));
            let short = routes.remove(0);
            routes[0].stops.extend(short.stops);
        }
        VrpSolution { routes }
    }

    /// Simulated-annealing solve (Dorling et al.'s approach).
    pub fn solve(&self, iterations: usize, seed: u64) -> VrpSolution {
        self.solve_constrained(iterations, seed, &crate::constraints::RouteConstraints::none())
    }

    /// Simulated-annealing solve with waypoint ordering/grouping
    /// constraints — the paper's stated future work, implemented as
    /// an extension. Every candidate the annealer evaluates is first
    /// repaired to feasibility, so the returned solution always
    /// satisfies `constraints`.
    pub fn solve_constrained(
        &self,
        iterations: usize,
        seed: u64,
        constraints: &crate::constraints::RouteConstraints,
    ) -> VrpSolution {
        let mut rng = androne_simkern::stream_rng(seed);
        let mut current = self.greedy();
        if !constraints.is_empty() {
            constraints.repair(&mut current);
        }
        // Ensure every allowed route exists so moves can use them.
        while current.routes.len() < self.fleet_size {
            current.routes.push(Route { stops: Vec::new() });
        }
        let mut best = current.clone();
        let mut cur_cost = self.cost(&current);
        let mut best_cost = cur_cost;
        if self.tasks.is_empty() {
            return VrpSolution { routes: Vec::new() };
        }
        let t0 = (cur_cost * 0.2).max(1.0);
        for iter in 0..iterations {
            let temp = t0 * (1.0 - iter as f64 / iterations as f64).max(1e-3);
            let mut cand = current.clone();
            match rng.gen_range(0..3) {
                0 => relocate(&mut cand, &mut rng),
                1 => swap(&mut cand, &mut rng),
                _ => two_opt(&mut cand, &mut rng),
            }
            if !constraints.is_empty() {
                constraints.repair(&mut cand);
                while cand.routes.len() < self.fleet_size {
                    cand.routes.push(Route { stops: Vec::new() });
                }
            }
            let cand_cost = self.cost(&cand);
            let accept = cand_cost < cur_cost
                || rng.gen::<f64>() < ((cur_cost - cand_cost) / temp).exp();
            if accept {
                current = cand;
                cur_cost = cand_cost;
                if cur_cost < best_cost {
                    best = current.clone();
                    best_cost = cur_cost;
                }
            }
        }
        best.routes.retain(|r| !r.stops.is_empty());
        best
    }
}

fn nonempty_route(sol: &VrpSolution, rng: &mut SmallRng) -> Option<usize> {
    let candidates: Vec<usize> = sol
        .routes
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.stops.is_empty())
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// Move one stop to a random position in a random route.
fn relocate(sol: &mut VrpSolution, rng: &mut SmallRng) {
    let Some(from) = nonempty_route(sol, rng) else {
        return;
    };
    let idx = rng.gen_range(0..sol.routes[from].stops.len());
    let stop = sol.routes[from].stops.remove(idx);
    let to = rng.gen_range(0..sol.routes.len());
    let at = if sol.routes[to].stops.is_empty() {
        0
    } else {
        rng.gen_range(0..=sol.routes[to].stops.len())
    };
    sol.routes[to].stops.insert(at, stop);
}

/// Swap two stops across (or within) routes.
fn swap(sol: &mut VrpSolution, rng: &mut SmallRng) {
    let (Some(a), Some(b)) = (nonempty_route(sol, rng), nonempty_route(sol, rng)) else {
        return;
    };
    let ia = rng.gen_range(0..sol.routes[a].stops.len());
    let ib = rng.gen_range(0..sol.routes[b].stops.len());
    if a == b {
        sol.routes[a].stops.swap(ia, ib);
    } else {
        let tmp = sol.routes[a].stops[ia];
        sol.routes[a].stops[ia] = sol.routes[b].stops[ib];
        sol.routes[b].stops[ib] = tmp;
    }
}

/// Reverse a random segment within one route.
fn two_opt(sol: &mut VrpSolution, rng: &mut SmallRng) {
    let Some(r) = nonempty_route(sol, rng) else {
        return;
    };
    let n = sol.routes[r].stops.len();
    if n < 2 {
        return;
    }
    let i = rng.gen_range(0..n - 1);
    let j = rng.gen_range(i + 1..n);
    sol.routes[r].stops[i..=j].reverse();
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEPOT: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

    fn task(owner: &str, north: f64, east: f64, energy: f64) -> WaypointTask {
        WaypointTask {
            owner: owner.into(),
            position: DEPOT.offset_m(north, east, 15.0),
            service_energy_j: energy,
            service_time_s: 60.0,
        }
    }

    fn problem(tasks: Vec<WaypointTask>, fleet: usize) -> VrpProblem {
        VrpProblem {
            depot: DEPOT,
            tasks,
            fleet_size: fleet,
            battery_budget_j: 160_000.0,
            model: DorlingModel::f450_prototype(),
        }
    }

    #[test]
    fn greedy_covers_every_task() {
        let p = problem(
            vec![
                task("a", 100.0, 0.0, 5_000.0),
                task("a", 200.0, 50.0, 5_000.0),
                task("b", -150.0, 80.0, 8_000.0),
                task("c", 40.0, -120.0, 3_000.0),
            ],
            2,
        );
        let sol = p.greedy();
        p.validate(&sol).unwrap();
    }

    #[test]
    fn annealing_never_worsens_greedy() {
        let p = problem(
            vec![
                task("a", 100.0, 0.0, 5_000.0),
                task("a", 200.0, 50.0, 5_000.0),
                task("b", -150.0, 80.0, 8_000.0),
                task("c", 40.0, -120.0, 3_000.0),
                task("d", 300.0, 300.0, 2_000.0),
                task("e", -80.0, -200.0, 4_000.0),
            ],
            2,
        );
        let greedy = p.greedy();
        let solved = p.solve(20_000, 7);
        p.validate(&solved).unwrap();
        assert!(p.cost(&solved) <= p.cost(&greedy) + 1e-9);
    }

    #[test]
    fn annealing_finds_obvious_clustering() {
        // Two tight clusters far apart; with two drones the optimal
        // split is one cluster each.
        let mut tasks = Vec::new();
        for i in 0..4 {
            tasks.push(task("west", 50.0 + i as f64 * 10.0, -2_000.0, 1_000.0));
            tasks.push(task("east", 50.0 + i as f64 * 10.0, 2_000.0, 1_000.0));
        }
        let p = problem(tasks, 2);
        let sol = p.solve(30_000, 11);
        p.validate(&sol).unwrap();
        assert_eq!(sol.routes.len(), 2);
        for route in &sol.routes {
            let easts: Vec<f64> = route
                .stops
                .iter()
                .map(|&i| p.tasks[i].position.longitude)
                .collect();
            let all_west = easts.iter().all(|&e| e < p.depot.longitude);
            let all_east = easts.iter().all(|&e| e > p.depot.longitude);
            assert!(all_west || all_east, "clusters are not mixed: {easts:?}");
        }
    }

    #[test]
    fn waypoint_energy_allotments_count_against_battery() {
        let mut p = problem(vec![task("a", 100.0, 0.0, 0.0)], 1);
        let bare = p.route_energy_j(&Route { stops: vec![0] });
        p.tasks[0].service_energy_j = 45_000.0;
        let loaded = p.route_energy_j(&Route { stops: vec![0] });
        assert!((loaded - bare - 45_000.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_battery_is_flagged() {
        let mut p = problem(vec![task("a", 100.0, 0.0, 500_000.0)], 1);
        p.battery_budget_j = 100_000.0;
        let sol = p.greedy();
        assert!(matches!(
            p.validate(&sol),
            Err(VrpError::BatteryViolation(_))
        ));
    }

    #[test]
    fn owners_waypoints_may_interleave() {
        // The paper's stated limitation: the algorithm treats
        // waypoints independently, so one owner's waypoints can be
        // visited in the middle of another's. Construct a geometry
        // where interleaving is optimal and check the solver uses it.
        let tasks = vec![
            task("a", 100.0, 0.0, 0.0),
            task("b", 200.0, 0.0, 0.0),
            task("a", 300.0, 0.0, 0.0),
        ];
        let p = problem(tasks, 1);
        let sol = p.solve(20_000, 3);
        p.validate(&sol).unwrap();
        let order: Vec<&str> = sol.routes[0]
            .stops
            .iter()
            .map(|&i| p.tasks[i].owner.as_str())
            .collect();
        assert!(
            order == ["a", "b", "a"] || order == ["a", "b", "a"].iter().rev().cloned().collect::<Vec<_>>(),
            "optimal route interleaves owners: {order:?}"
        );
    }

    #[test]
    fn constrained_solve_preserves_user_ordering() {
        // The extension beyond the paper: waypoints 0 -> 1 -> 2 of
        // owner "a" must run in order even though the unconstrained
        // optimum reverses them.
        use crate::constraints::RouteConstraints;
        let tasks = vec![
            task("a", 300.0, 0.0, 0.0),
            task("a", 200.0, 0.0, 0.0),
            task("a", 100.0, 0.0, 0.0),
            task("b", 150.0, 50.0, 0.0),
        ];
        let p = problem(tasks, 1);
        let constraints = RouteConstraints::none().in_order(&[0, 1, 2]);
        let sol = p.solve_constrained(20_000, 9, &constraints);
        p.validate(&sol).unwrap();
        constraints.check(&sol).unwrap();
        let route = &sol.routes[0].stops;
        let pos = |t: usize| route.iter().position(|&s| s == t).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2), "{route:?}");
    }

    #[test]
    fn constrained_solve_keeps_groups_contiguous() {
        use crate::constraints::RouteConstraints;
        // Owner "a" owns tasks 0 and 3, geographically on opposite
        // sides of owner "b"'s task: unconstrained solving would
        // interleave; grouping forbids it.
        let tasks = vec![
            task("a", 100.0, 0.0, 0.0),
            task("b", 200.0, 0.0, 0.0),
            task("b", 250.0, 30.0, 0.0),
            task("a", 300.0, 0.0, 0.0),
        ];
        let p = problem(tasks, 1);
        let constraints = RouteConstraints::none().grouped(&[0, 3]);
        let sol = p.solve_constrained(20_000, 10, &constraints);
        p.validate(&sol).unwrap();
        constraints.check(&sol).unwrap();
    }

    #[test]
    fn fleet_size_is_respected() {
        let tasks: Vec<WaypointTask> = (0..8)
            .map(|i| task("x", 50.0 * (i + 1) as f64, 30.0 * i as f64, 1_000.0))
            .collect();
        let p = problem(tasks, 2);
        let sol = p.solve(15_000, 5);
        assert!(sol.routes.len() <= 2);
        p.validate(&sol).unwrap();
    }

    #[test]
    fn empty_problem_solves_to_empty() {
        let p = problem(vec![], 2);
        let sol = p.solve(100, 1);
        assert!(sol.routes.is_empty());
        p.validate(&sol).unwrap();
    }
}
