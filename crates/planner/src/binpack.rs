//! Wave bin-packing for batched admission.
//!
//! The VRP solver's simulated annealing is the right tool for a
//! handful of tenants with interleavable waypoints; an admitted batch
//! of thousands of orders per wave needs a cheaper shape. This module
//! packs admitted orders onto a fleet of simulated drones with a
//! deterministic first-fit pass: each order is one pack item (its
//! next waypoint's energy/time need), each flight is a bin bounded by
//! the board-profile party cap and the airframe battery budget, and
//! whatever does not fit this wave **spills** — the caller re-queues
//! spilled orders at the front of their admission lanes so they lead
//! the next wave.
//!
//! Determinism: plain first-fit in the admitted order over bins in
//! open order; no randomness, no maps — the packing is a pure
//! function of the item list and limits.

/// One order's demand on a flight this wave.
#[derive(Debug, Clone, PartialEq)]
pub struct PackItem {
    /// Owning virtual drone (one lane ↔ one owner; a flight carries
    /// at most `party_cap` distinct owners).
    pub owner: String,
    /// Energy the flight must spend for this item (travel + service).
    pub energy_j: f64,
    /// Flight time this item adds.
    pub time_s: f64,
}

/// One packed flight: indices into the input item slice, plus the
/// accumulated load.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedFlight {
    pub items: Vec<usize>,
    pub energy_j: f64,
    pub time_s: f64,
}

/// The result of one wave's packing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Packing {
    pub flights: Vec<PackedFlight>,
    /// Indices of items that did not fit (re-queue them first).
    pub spilled: Vec<usize>,
}

impl Packing {
    /// Total items placed on flights.
    pub fn packed_count(&self) -> usize {
        self.flights.iter().map(|f| f.items.len()).sum()
    }
}

/// First-fit packs `items` onto at most `fleet_size` flights, each
/// carrying at most `party_cap` items and at most `battery_budget_j`
/// joules of demand. Items too large for an empty bin spill rather
/// than opening a doomed flight. Pure and deterministic.
pub fn bin_pack(
    items: &[PackItem],
    fleet_size: usize,
    party_cap: usize,
    battery_budget_j: f64,
) -> Packing {
    let mut packing = Packing::default();
    if fleet_size == 0 || party_cap == 0 {
        packing.spilled = (0..items.len()).collect();
        return packing;
    }
    // First bin that might still have room: every bin below this is
    // full on the party cap, so the scan skips them (keeps the pass
    // near-linear when items are uniform).
    let mut first_open = 0usize;
    for (idx, item) in items.iter().enumerate() {
        if item.energy_j > battery_budget_j {
            packing.spilled.push(idx);
            continue;
        }
        let mut placed = false;
        for b in first_open..packing.flights.len() {
            let bin = &mut packing.flights[b];
            if bin.items.len() < party_cap && bin.energy_j + item.energy_j <= battery_budget_j {
                bin.items.push(idx);
                bin.energy_j += item.energy_j;
                bin.time_s += item.time_s;
                placed = true;
                break;
            }
        }
        if !placed {
            if packing.flights.len() < fleet_size {
                packing.flights.push(PackedFlight {
                    items: vec![idx],
                    energy_j: item.energy_j,
                    time_s: item.time_s,
                });
            } else {
                packing.spilled.push(idx);
            }
        }
        while first_open < packing.flights.len()
            && packing.flights[first_open].items.len() >= party_cap
        {
            first_open += 1;
        }
    }
    packing
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(owner: &str, energy_j: f64) -> PackItem {
        PackItem {
            owner: owner.to_string(),
            energy_j,
            time_s: energy_j / 100.0,
        }
    }

    #[test]
    fn respects_party_cap_and_battery_budget() {
        let items: Vec<PackItem> = (0..7).map(|i| item(&format!("t{i}"), 10_000.0)).collect();
        // Budget fits 2 items; party cap allows 3.
        let p = bin_pack(&items, 10, 3, 25_000.0);
        assert!(p.spilled.is_empty());
        for f in &p.flights {
            assert!(f.items.len() <= 3);
            assert!(f.energy_j <= 25_000.0 + 1e-9);
        }
        assert_eq!(p.packed_count(), 7);
        assert_eq!(p.flights.len(), 4, "2 per flight on the energy bound");
    }

    #[test]
    fn spills_when_the_fleet_is_exhausted() {
        let items: Vec<PackItem> = (0..5).map(|i| item(&format!("t{i}"), 10_000.0)).collect();
        let p = bin_pack(&items, 2, 1, 50_000.0);
        assert_eq!(p.packed_count(), 2);
        assert_eq!(p.spilled, vec![2, 3, 4], "overflow spills in input order");
    }

    #[test]
    fn oversized_items_spill_instead_of_opening_doomed_flights() {
        let items = vec![item("big", 99_000.0), item("ok", 1_000.0)];
        let p = bin_pack(&items, 4, 3, 50_000.0);
        assert_eq!(p.spilled, vec![0]);
        assert_eq!(p.flights.len(), 1);
        assert_eq!(p.flights[0].items, vec![1]);
    }

    #[test]
    fn packing_is_deterministic() {
        let items: Vec<PackItem> = (0..100)
            .map(|i| item(&format!("t{i}"), 1_000.0 + f64::from(i % 7) * 3_000.0))
            .collect();
        let a = bin_pack(&items, 16, 3, 20_000.0);
        let b = bin_pack(&items, 16, 3, 20_000.0);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_fleet_or_cap_spills_everything() {
        let items = vec![item("a", 1.0)];
        assert_eq!(bin_pack(&items, 0, 3, 1e9).spilled, vec![0]);
        assert_eq!(bin_pack(&items, 3, 0, 1e9).spilled, vec![0]);
    }
}
