//! Deterministic observability for the AnDrone simulation.
//!
//! Three pieces, all driven exclusively by **sim time** (dronelint R2
//! applies to this crate — no `Instant`, no host entropy):
//!
//! - [`TraceBus`]: typed, sim-time-stamped event records (flight
//!   phases, Binder transactions, MAVLink command verdicts, VDC
//!   allotment decisions, cloud retries, fault arm/fire edges) in
//!   bounded per-subsystem ring buffers. Overflow drops the oldest
//!   record and counts the drop — memory stays bounded no matter how
//!   long a flight runs.
//! - [`MetricsRegistry`]: counters, gauges, and fixed-bucket
//!   histograms keyed by `&'static str` names. The whole registry
//!   folds into one FNV-1a digest ([`MetricsRegistry::digest`]), so
//!   the dual-run sanitizer discipline extends to metrics: two runs
//!   of the same seed must produce bit-identical metrics.
//! - [`BlackBoxSnapshot`]: the flight recorder. On any
//!   non-`Completed` end of flight, the last N seconds of trace are
//!   snapshotted and serialized to JSON for offline figure
//!   reconstruction (Binder latency CDF, per-tenant overhead — the
//!   paper's §6 breakdowns).
//!
//! Subsystems hold an [`ObsHandle`] — a shared, optionally-attached
//! handle. Bare-constructed subsystems (benches, unit tests) get the
//! detached default and pay a single branch per emission; payload
//! construction is skipped entirely when detached because
//! [`ObsHandle::emit`] takes a closure.

mod handle;
mod metrics;
mod recorder;
mod trace;

pub use handle::{Obs, ObsHandle};
pub use metrics::{Histogram, MetricsRegistry, HISTOGRAM_TAIL_CAP};
pub use recorder::{metrics_to_json, snapshot_window, BlackBoxSnapshot, SnapshotRecord};
pub use trace::{Subsystem, TraceBus, TraceConfig, TraceEvent, TraceRecord, TraceSegment};
