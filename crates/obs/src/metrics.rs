//! The metrics registry: counters, gauges, and fixed-bucket
//! histograms that fold into one FNV digest.
//!
//! Everything here is keyed by `&'static str` and stored in
//! `BTreeMap`s, so iteration order — and therefore the digest — is a
//! pure function of what the simulation did. No wall-clock, no host
//! entropy: values come from sim time and sim state only, which is
//! what lets the dual-run sanitizer demand bit-identical metrics
//! from two runs of the same seed.

use std::collections::{BTreeMap, VecDeque};

use androne_simkern::StateHasher;

/// How many raw samples a histogram retains as its recent tail.
/// Sized for the black-box recorder: enough to reconstruct the last
/// seconds of Binder latency before an abnormal flight end, small
/// enough to never matter for memory.
pub const HISTOGRAM_TAIL_CAP: usize = 32;

/// A fixed-bucket histogram over `u64` samples (sim-nanoseconds,
/// byte counts, ...). Bucket bounds are `&'static` and part of the
/// metric's identity: the first `observe` pins them, and they never
/// reallocate or rebalance, so two runs bucket identically.
///
/// Alongside the buckets, the last [`HISTOGRAM_TAIL_CAP`] raw samples
/// are kept in a bounded ring — the black-box recorder folds this
/// tail into its snapshot so an abnormal end carries the exact final
/// latencies, not just their bucket shape. The tail is diagnostic
/// payload only and deliberately excluded from [`MetricsRegistry::digest`].
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
    recent: VecDeque<u64>,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            recent: VecDeque::new(),
        }
    }

    fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.recent.len() == HISTOGRAM_TAIL_CAP {
            self.recent.pop_front();
        }
        self.recent.push_back(v);
    }

    /// Absorbs `other`'s samples into this histogram: bucket counts,
    /// totals, and extrema fold additively; `other`'s recent tail is
    /// appended after this one's (bounded by [`HISTOGRAM_TAIL_CAP`]).
    /// Both histograms must share bucket bounds — mismatched bounds
    /// mean two different metrics were given one name, and the merge
    /// keeps `self` untouched rather than mixing incomparable shapes.
    fn merge_from(&mut self, other: &Histogram) {
        if self.bounds != other.bounds {
            return;
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &v in &other.recent {
            if self.recent.len() == HISTOGRAM_TAIL_CAP {
                self.recent.pop_front();
            }
            self.recent.push_back(v);
        }
    }

    /// The last samples observed, oldest first (at most
    /// [`HISTOGRAM_TAIL_CAP`]).
    pub fn recent(&self) -> impl Iterator<Item = u64> + '_ {
        self.recent.iter().copied()
    }

    /// Upper bounds of the finite buckets.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 before any sample.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 before any sample.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// sample (0.0 ..= 1.0). Samples in the overflow bucket report
    /// the observed max. Returns 0 before any sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// The registry: three namespaces (counters, gauges, histograms),
/// each an ordered map from static name to value.
///
/// Registries are mergeable ([`MetricsRegistry::merge_from`]) so
/// per-flight island registries can be folded into one fleet-level
/// registry at the wave barrier, and `Clone` so a worker thread can
/// hand its registry across the barrier by value.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Per-label counter families (`name` × owned label, e.g. a
    /// tenant). Kept in their own namespace so label-free runs hash
    /// and merge exactly as before the namespace existed.
    labeled_counters: BTreeMap<(&'static str, String), u64>,
    /// Per-label histogram families (`name` × owned label).
    labeled_histograms: BTreeMap<(&'static str, String), Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name` (creating it at 0).
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Raises the gauge `name` to `v` if `v` exceeds its current
    /// value (creating it at `v`) — a high-water mark, e.g. peak
    /// admission-queue depth.
    pub fn gauge_max(&mut self, name: &'static str, v: f64) {
        let e = self.gauges.entry(name).or_insert(v);
        if v > *e {
            *e = v;
        }
    }

    /// Records `v` into the histogram `name`. The first call pins
    /// `bounds`; later calls reuse the pinned bounds (passing
    /// different bounds for the same name is a programming error and
    /// the first bounds win).
    pub fn observe(&mut self, name: &'static str, bounds: &'static [u64], v: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Adds `n` to the `label`ed member of counter family `name`
    /// (creating it at 0). Labels are owned strings (tenant names,
    /// container ids) — dynamic data a `&'static str` key cannot
    /// carry.
    pub fn count_labeled(&mut self, name: &'static str, label: &str, n: u64) {
        match self.labeled_counters.get_mut(&(name, label.to_string())) {
            Some(v) => *v += n,
            None => {
                self.labeled_counters.insert((name, label.to_string()), n);
            }
        }
    }

    /// Records `v` into the `label`ed member of histogram family
    /// `name` (first call pins `bounds`, as for [`Self::observe`]).
    pub fn observe_labeled(
        &mut self,
        name: &'static str,
        label: &str,
        bounds: &'static [u64],
        v: u64,
    ) {
        match self.labeled_histograms.get_mut(&(name, label.to_string())) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::new(bounds);
                h.observe(v);
                self.labeled_histograms.insert((name, label.to_string()), h);
            }
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of the `label`ed member of counter family
    /// `name` (0 if never incremented).
    pub fn labeled_counter(&self, name: &'static str, label: &str) -> u64 {
        self.labeled_counters
            .get(&(name, label.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// The `label`ed member of histogram family `name`, if any
    /// sample was recorded.
    pub fn labeled_histogram(&self, name: &'static str, label: &str) -> Option<&Histogram> {
        self.labeled_histograms.get(&(name, label.to_string()))
    }

    /// All labeled counters, in (name, label) order.
    pub fn labeled_counters(
        &self,
    ) -> impl Iterator<Item = (&'static str, &str, u64)> + '_ {
        self.labeled_counters
            .iter()
            .map(|((name, label), &v)| (*name, label.as_str(), v))
    }

    /// All labeled histograms, in (name, label) order.
    pub fn labeled_histograms(
        &self,
    ) -> impl Iterator<Item = (&'static str, &str, &Histogram)> + '_ {
        self.labeled_histograms
            .iter()
            .map(|((name, label), h)| (*name, label.as_str(), h))
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Absorbs `other` into this registry, deterministically:
    /// counters add, gauges take `other`'s value (last writer in
    /// merge order wins — callers merge in flight-index order, which
    /// reproduces the sequential executor's overwrite order), and
    /// histograms fold bucket-wise. Merging island registries in a
    /// fixed order therefore yields the same registry at any worker
    /// thread count.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &v) in &other.gauges {
            self.gauges.insert(name, v);
        }
        for (&name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge_from(hist),
                None => {
                    self.histograms.insert(name, hist.clone());
                }
            }
        }
        for (key, &v) in &other.labeled_counters {
            match self.labeled_counters.get_mut(key) {
                Some(mine) => *mine += v,
                None => {
                    self.labeled_counters.insert(key.clone(), v);
                }
            }
        }
        for (key, hist) in &other.labeled_histograms {
            match self.labeled_histograms.get_mut(key) {
                Some(mine) => mine.merge_from(hist),
                None => {
                    self.labeled_histograms.insert(key.clone(), hist.clone());
                }
            }
        }
    }

    /// Folds every metric — names, values, histogram buckets — into
    /// one FNV-1a digest. Two runs of the same seed must agree on
    /// this bit-for-bit; any drift means a metric was fed from
    /// something the seed does not control.
    pub fn digest(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write_usize(self.counters.len());
        for (name, v) in &self.counters {
            h.write_str(name);
            h.write_u64(*v);
        }
        h.write_usize(self.gauges.len());
        for (name, v) in &self.gauges {
            h.write_str(name);
            h.write_f64(*v);
        }
        h.write_usize(self.histograms.len());
        for (name, hist) in &self.histograms {
            h.write_str(name);
            h.write_usize(hist.bounds.len());
            for b in hist.bounds {
                h.write_u64(*b);
            }
            for c in &hist.counts {
                h.write_u64(*c);
            }
            h.write_u64(hist.total);
            h.write_u64(hist.sum);
        }
        // Labeled namespaces hash only when populated, so a run that
        // never labels a metric digests exactly as it did before the
        // namespaces existed (pinned fleet digests depend on this).
        if !self.labeled_counters.is_empty() {
            h.write_usize(self.labeled_counters.len());
            for ((name, label), v) in &self.labeled_counters {
                h.write_str(name);
                h.write_str(label);
                h.write_u64(*v);
            }
        }
        if !self.labeled_histograms.is_empty() {
            h.write_usize(self.labeled_histograms.len());
            for ((name, label), hist) in &self.labeled_histograms {
                h.write_str(name);
                h.write_str(label);
                h.write_usize(hist.bounds.len());
                for b in hist.bounds {
                    h.write_u64(*b);
                }
                for c in &hist.counts {
                    h.write_u64(*c);
                }
                h.write_u64(hist.total);
                h.write_u64(hist.sum);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[u64] = &[10, 100, 1_000];

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.count("x", 2);
        m.count("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut m = MetricsRegistry::new();
        for v in [5, 10, 11, 100, 5_000] {
            m.observe("h", BOUNDS, v);
        }
        let h = m.histogram("h").expect("histogram exists");
        assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5_126);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 5_000);
    }

    #[test]
    fn quantile_returns_bucket_upper_bound() {
        let mut m = MetricsRegistry::new();
        for v in [1, 2, 3, 50, 5_000] {
            m.observe("h", BOUNDS, v);
        }
        let h = m.histogram("h").expect("histogram exists");
        assert_eq!(h.quantile(0.5), 10); // 3rd of 5 samples is in <=10
        assert_eq!(h.quantile(0.8), 100);
        assert_eq!(h.quantile(1.0), 5_000); // overflow reports max
        assert_eq!(h.quantile(0.0), 10);
    }

    #[test]
    fn digest_is_order_insensitive_for_same_content() {
        let mut a = MetricsRegistry::new();
        a.count("b", 1);
        a.count("a", 1);
        a.gauge_set("g", 2.5);
        let mut b = MetricsRegistry::new();
        b.count("a", 1);
        b.gauge_set("g", 2.5);
        b.count("b", 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_distinguishes_counter_from_gauge_namespaces() {
        let mut a = MetricsRegistry::new();
        a.count("x", 1);
        let mut b = MetricsRegistry::new();
        b.gauge_set("x", 1.0);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_sees_histogram_shape() {
        let mut a = MetricsRegistry::new();
        a.observe("h", BOUNDS, 5);
        let mut b = MetricsRegistry::new();
        b.observe("h", BOUNDS, 50);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn merge_reproduces_the_sequential_registry() {
        // One registry fed sequentially...
        let mut seq = MetricsRegistry::new();
        seq.count("c", 2);
        seq.gauge_set("g", 1.0);
        seq.observe("h", BOUNDS, 5);
        seq.count("c", 3);
        seq.gauge_set("g", 2.0);
        seq.observe("h", BOUNDS, 5_000);
        // ...must digest identically to two island registries merged
        // in the same order.
        let mut a = MetricsRegistry::new();
        a.count("c", 2);
        a.gauge_set("g", 1.0);
        a.observe("h", BOUNDS, 5);
        let mut b = MetricsRegistry::new();
        b.count("c", 3);
        b.gauge_set("g", 2.0);
        b.observe("h", BOUNDS, 5_000);
        let mut merged = MetricsRegistry::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.digest(), seq.digest());
        assert_eq!(merged.counter("c"), 5);
        assert_eq!(merged.gauge("g"), Some(2.0));
        let h = merged.histogram("h").expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 5_000);
    }

    #[test]
    fn merge_with_mismatched_bounds_keeps_self() {
        const OTHER_BOUNDS: &[u64] = &[7];
        let mut a = MetricsRegistry::new();
        a.observe("h", BOUNDS, 5);
        let mut b = MetricsRegistry::new();
        b.observe("h", OTHER_BOUNDS, 5);
        let before = a.histogram("h").map(|h| h.count());
        a.merge_from(&b);
        assert_eq!(a.histogram("h").map(|h| h.count()), before);
    }

    #[test]
    fn recent_tail_is_bounded_and_merge_appends() {
        let mut m = MetricsRegistry::new();
        for v in 0..(HISTOGRAM_TAIL_CAP as u64 + 5) {
            m.observe("h", BOUNDS, v);
        }
        let h = m.histogram("h").expect("histogram");
        let tail: Vec<u64> = h.recent().collect();
        assert_eq!(tail.len(), HISTOGRAM_TAIL_CAP);
        assert_eq!(tail[0], 5, "oldest samples evicted first");
        assert_eq!(*tail.last().unwrap(), HISTOGRAM_TAIL_CAP as u64 + 4);

        let mut other = MetricsRegistry::new();
        other.observe("h", BOUNDS, 999);
        m.merge_from(&other);
        let tail: Vec<u64> = m.histogram("h").expect("histogram").recent().collect();
        assert_eq!(*tail.last().unwrap(), 999, "merge appends the other tail");
        assert_eq!(tail.len(), HISTOGRAM_TAIL_CAP);
    }

    #[test]
    fn labeled_counters_accumulate_per_label() {
        let mut m = MetricsRegistry::new();
        m.count_labeled("binder.throttled", "ctr2", 1);
        m.count_labeled("binder.throttled", "ctr2", 2);
        m.count_labeled("binder.throttled", "ctr3", 5);
        assert_eq!(m.labeled_counter("binder.throttled", "ctr2"), 3);
        assert_eq!(m.labeled_counter("binder.throttled", "ctr3"), 5);
        assert_eq!(m.labeled_counter("binder.throttled", "ctr4"), 0);
        let all: Vec<_> = m.labeled_counters().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], ("binder.throttled", "ctr2", 3));
    }

    #[test]
    fn labeled_histograms_bucket_per_label() {
        let mut m = MetricsRegistry::new();
        m.observe_labeled("binder.latency_ns", "ctr2", BOUNDS, 5);
        m.observe_labeled("binder.latency_ns", "ctr2", BOUNDS, 5_000);
        m.observe_labeled("binder.latency_ns", "ctr3", BOUNDS, 50);
        let h2 = m.labeled_histogram("binder.latency_ns", "ctr2").expect("ctr2");
        assert_eq!(h2.count(), 2);
        assert_eq!(h2.max(), 5_000);
        let h3 = m.labeled_histogram("binder.latency_ns", "ctr3").expect("ctr3");
        assert_eq!(h3.count(), 1);
        assert!(m.labeled_histogram("binder.latency_ns", "ctr9").is_none());
    }

    #[test]
    fn unlabeled_registry_digests_as_before_labels_existed() {
        // The digest of a label-free registry must not change because
        // the labeled namespaces exist: the pinned fleet digests were
        // taken before labels were introduced.
        let mut a = MetricsRegistry::new();
        a.count("c", 1);
        a.observe("h", BOUNDS, 5);
        let base = a.digest();
        a.count_labeled("c.by_tenant", "ctr2", 1);
        assert_ne!(a.digest(), base, "labels must be digest-visible when present");
    }

    #[test]
    fn merge_folds_labeled_namespaces() {
        let mut a = MetricsRegistry::new();
        a.count_labeled("t", "x", 2);
        a.observe_labeled("lh", "x", BOUNDS, 5);
        let mut b = MetricsRegistry::new();
        b.count_labeled("t", "x", 3);
        b.count_labeled("t", "y", 1);
        b.observe_labeled("lh", "x", BOUNDS, 50);
        a.merge_from(&b);
        assert_eq!(a.labeled_counter("t", "x"), 5);
        assert_eq!(a.labeled_counter("t", "y"), 1);
        assert_eq!(a.labeled_histogram("lh", "x").map(|h| h.count()), Some(2));
    }

    #[test]
    fn recent_tail_does_not_perturb_the_digest() {
        // Same buckets, different tails (two 5s vs a 5 and a 6 both
        // land in the <=10 bucket): the digest must not see the tail,
        // which is diagnostic payload, not aggregate state.
        let mut a = MetricsRegistry::new();
        a.observe("h", BOUNDS, 5);
        a.observe("h", BOUNDS, 5);
        let mut b = MetricsRegistry::new();
        b.observe("h", BOUNDS, 4);
        b.observe("h", BOUNDS, 6);
        assert_eq!(a.digest(), b.digest());
    }
}
