//! The metrics registry: counters, gauges, and fixed-bucket
//! histograms that fold into one FNV digest.
//!
//! Everything here is keyed by `&'static str` and stored in
//! `BTreeMap`s, so iteration order — and therefore the digest — is a
//! pure function of what the simulation did. No wall-clock, no host
//! entropy: values come from sim time and sim state only, which is
//! what lets the dual-run sanitizer demand bit-identical metrics
//! from two runs of the same seed.

use std::collections::BTreeMap;

use androne_simkern::StateHasher;

/// A fixed-bucket histogram over `u64` samples (sim-nanoseconds,
/// byte counts, ...). Bucket bounds are `&'static` and part of the
/// metric's identity: the first `observe` pins them, and they never
/// reallocate or rebalance, so two runs bucket identically.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Upper bounds of the finite buckets.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 before any sample.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 before any sample.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// sample (0.0 ..= 1.0). Samples in the overflow bucket report
    /// the observed max. Returns 0 before any sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// The registry: three namespaces (counters, gauges, histograms),
/// each an ordered map from static name to value.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name` (creating it at 0).
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Records `v` into the histogram `name`. The first call pins
    /// `bounds`; later calls reuse the pinned bounds (passing
    /// different bounds for the same name is a programming error and
    /// the first bounds win).
    pub fn observe(&mut self, name: &'static str, bounds: &'static [u64], v: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Folds every metric — names, values, histogram buckets — into
    /// one FNV-1a digest. Two runs of the same seed must agree on
    /// this bit-for-bit; any drift means a metric was fed from
    /// something the seed does not control.
    pub fn digest(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write_usize(self.counters.len());
        for (name, v) in &self.counters {
            h.write_str(name);
            h.write_u64(*v);
        }
        h.write_usize(self.gauges.len());
        for (name, v) in &self.gauges {
            h.write_str(name);
            h.write_f64(*v);
        }
        h.write_usize(self.histograms.len());
        for (name, hist) in &self.histograms {
            h.write_str(name);
            h.write_usize(hist.bounds.len());
            for b in hist.bounds {
                h.write_u64(*b);
            }
            for c in &hist.counts {
                h.write_u64(*c);
            }
            h.write_u64(hist.total);
            h.write_u64(hist.sum);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[u64] = &[10, 100, 1_000];

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.count("x", 2);
        m.count("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut m = MetricsRegistry::new();
        for v in [5, 10, 11, 100, 5_000] {
            m.observe("h", BOUNDS, v);
        }
        let h = m.histogram("h").expect("histogram exists");
        assert_eq!(h.bucket_counts(), &[2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5_126);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 5_000);
    }

    #[test]
    fn quantile_returns_bucket_upper_bound() {
        let mut m = MetricsRegistry::new();
        for v in [1, 2, 3, 50, 5_000] {
            m.observe("h", BOUNDS, v);
        }
        let h = m.histogram("h").expect("histogram exists");
        assert_eq!(h.quantile(0.5), 10); // 3rd of 5 samples is in <=10
        assert_eq!(h.quantile(0.8), 100);
        assert_eq!(h.quantile(1.0), 5_000); // overflow reports max
        assert_eq!(h.quantile(0.0), 10);
    }

    #[test]
    fn digest_is_order_insensitive_for_same_content() {
        let mut a = MetricsRegistry::new();
        a.count("b", 1);
        a.count("a", 1);
        a.gauge_set("g", 2.5);
        let mut b = MetricsRegistry::new();
        b.count("a", 1);
        b.gauge_set("g", 2.5);
        b.count("b", 1);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_distinguishes_counter_from_gauge_namespaces() {
        let mut a = MetricsRegistry::new();
        a.count("x", 1);
        let mut b = MetricsRegistry::new();
        b.gauge_set("x", 1.0);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_sees_histogram_shape() {
        let mut a = MetricsRegistry::new();
        a.observe("h", BOUNDS, 5);
        let mut b = MetricsRegistry::new();
        b.observe("h", BOUNDS, 50);
        assert_ne!(a.digest(), b.digest());
    }
}
