//! The black-box flight recorder: a frozen window of trace taken at
//! the moment a flight ends abnormally, serializable to JSON for
//! offline figure reconstruction.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::trace::{Subsystem, TraceBus, TraceEvent, TraceRecord};

/// One record inside a snapshot, tagged with its source subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// Source subsystem name (stable lowercase tag).
    pub subsystem: &'static str,
    /// The stamped record.
    pub record: TraceRecord,
}

/// The frozen black box: why the flight ended, when, and every trace
/// record from the final window, in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct BlackBoxSnapshot {
    /// The end reason that triggered the snapshot (e.g. "LinkLost").
    pub end_reason: String,
    /// Sim time at the end of flight.
    pub ended_at_ns: u64,
    /// Window length the snapshot covers, ending at `ended_at_ns`.
    pub window_ns: u64,
    /// Records inside the window, oldest first.
    pub records: Vec<SnapshotRecord>,
    /// Per-subsystem ring evictions over the whole flight — nonzero
    /// means the window may be missing early records.
    pub dropped: Vec<(&'static str, u64)>,
    /// The last raw `binder.latency_ns` samples before the end
    /// (oldest first, at most [`crate::metrics::HISTOGRAM_TAIL_CAP`]):
    /// the exact final transaction latencies, where the histogram
    /// keeps only their bucket shape. Empty when the flight recorded
    /// no Binder latency.
    pub latency_tail: Vec<u64>,
    /// The last raw `flight.jitter_us` samples before the end (the
    /// RT-deadline monitor's fast-loop wakeup jitter, microseconds,
    /// oldest first). Empty when no monitor ran — and then absent
    /// from the JSON, so recorder output predating the monitor is
    /// byte-identical.
    pub jitter_tail: Vec<u64>,
    /// The last per-tick `binder.throttle_trajectory` samples before
    /// the end: how many admissions enforcement rejected each of the
    /// final ticks. Empty (and absent from the JSON) on flights with
    /// no adversarial enforcement.
    pub throttle_tail: Vec<u64>,
    /// The last per-tick `cpu.quota_millicores` samples: the CPU
    /// bandwidth cap enforcement held clamped on attackers over the
    /// final ticks. Empty (and absent from the JSON) without
    /// adversarial enforcement.
    pub cpu_quota_tail: Vec<u64>,
}

/// Takes a snapshot of the last `window_ns` of `bus`. The latency
/// tail starts empty — [`crate::ObsHandle::snapshot_window`] fills it
/// from the metrics registry, which a bare bus does not carry.
pub fn snapshot_window(bus: &TraceBus, window_ns: u64, end_reason: &str) -> BlackBoxSnapshot {
    let ended_at_ns = bus.now_ns();
    let cutoff = ended_at_ns.saturating_sub(window_ns);
    let records = bus
        .window(cutoff)
        .into_iter()
        .map(|(sub, record)| SnapshotRecord {
            subsystem: sub.name(),
            record,
        })
        .collect();
    let dropped = Subsystem::ALL
        .iter()
        .filter(|&&s| bus.dropped(s) > 0)
        .map(|&s| (s.name(), bus.dropped(s)))
        .collect();
    BlackBoxSnapshot {
        end_reason: end_reason.to_string(),
        ended_at_ns,
        window_ns,
        records,
        dropped,
        latency_tail: Vec::new(),
        jitter_tail: Vec::new(),
        throttle_tail: Vec::new(),
        cpu_quota_tail: Vec::new(),
    }
}

fn num(v: u64) -> Value {
    // Sim timestamps and counts stay far below 2^53, where f64 is
    // exact (the stand-in Value stores all numbers as f64).
    Value::Number(v as f64)
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        map.insert(k.to_string(), v);
    }
    Value::Object(map)
}

fn event_value(event: &TraceEvent) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![("kind", Value::String(event.kind().to_string()))];
    match event {
        TraceEvent::FlightPhase { phase, detail } => {
            fields.push(("phase", Value::String(phase.to_string())));
            fields.push(("detail", Value::String(detail.clone())));
        }
        TraceEvent::TickHash { tick, digest } => {
            fields.push(("tick", num(*tick)));
            fields.push(("digest", Value::String(format!("{digest:016x}"))));
        }
        TraceEvent::BinderTxn {
            caller,
            code,
            wire_size,
            cross_container,
            latency_ns,
            ok,
        } => {
            fields.push(("caller", num(u64::from(*caller))));
            fields.push(("code", num(u64::from(*code))));
            fields.push(("wire_size", num(*wire_size)));
            fields.push(("cross_container", Value::Bool(*cross_container)));
            fields.push(("latency_ns", num(*latency_ns)));
            fields.push(("ok", Value::Bool(*ok)));
        }
        TraceEvent::MavCommand { client, verdict } => {
            fields.push(("client", Value::String(client.clone())));
            fields.push(("verdict", Value::String(verdict.to_string())));
        }
        TraceEvent::LinkFailsafe { phase } => {
            fields.push(("phase", Value::String(phase.to_string())));
        }
        TraceEvent::VdcDecision {
            vdrone,
            decision,
            detail,
        } => {
            fields.push(("vdrone", Value::String(vdrone.clone())));
            fields.push(("decision", Value::String(decision.to_string())));
            fields.push(("detail", Value::String(detail.clone())));
        }
        TraceEvent::CloudRetry {
            op,
            attempts,
            backoff_ns,
            gave_up,
        } => {
            fields.push(("op", Value::String(op.to_string())));
            fields.push(("attempts", num(u64::from(*attempts))));
            fields.push(("backoff_ns", num(*backoff_ns)));
            fields.push(("gave_up", Value::Bool(*gave_up)));
        }
        TraceEvent::CloudDegraded { mode, detail } => {
            fields.push(("mode", Value::String(mode.to_string())));
            fields.push(("detail", Value::String(detail.clone())));
        }
        TraceEvent::FaultEdge {
            kind,
            armed,
            detail,
        } => {
            fields.push(("fault", Value::String(kind.to_string())));
            fields.push(("armed", Value::Bool(*armed)));
            fields.push(("detail", Value::String(detail.clone())));
        }
        TraceEvent::BinderThrottle {
            container,
            dimension,
            throttled,
        } => {
            fields.push(("container", num(u64::from(*container))));
            fields.push(("dimension", Value::String(dimension.to_string())));
            fields.push(("throttled", Value::Bool(*throttled)));
        }
        TraceEvent::AttackEdge {
            kind,
            attacker,
            armed,
            detail,
        } => {
            fields.push(("attack", Value::String(kind.to_string())));
            fields.push(("attacker", Value::String(attacker.clone())));
            fields.push(("armed", Value::Bool(*armed)));
            fields.push(("detail", Value::String(detail.clone())));
        }
    }
    object(fields)
}

impl BlackBoxSnapshot {
    /// The snapshot as a JSON value tree.
    pub fn to_json(&self) -> Value {
        let records: Vec<Value> = self
            .records
            .iter()
            .map(|r| {
                object(vec![
                    ("subsystem", Value::String(r.subsystem.to_string())),
                    ("t_ns", num(r.record.t_ns)),
                    ("seq", num(r.record.seq)),
                    ("event", event_value(&r.record.event)),
                ])
            })
            .collect();
        let dropped: Vec<Value> = self
            .dropped
            .iter()
            .map(|(sub, n)| {
                object(vec![
                    ("subsystem", Value::String(sub.to_string())),
                    ("dropped", num(*n)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("end_reason", Value::String(self.end_reason.clone())),
            ("ended_at_ns", num(self.ended_at_ns)),
            ("window_ns", num(self.window_ns)),
            ("records", Value::Array(records)),
            ("dropped", Value::Array(dropped)),
            (
                "latency_tail",
                Value::Array(self.latency_tail.iter().map(|&v| num(v)).collect()),
            ),
        ];
        // Conditional so recorder output from flights without the
        // RT-deadline monitor matches the pre-monitor contract.
        if !self.jitter_tail.is_empty() {
            fields.push((
                "jitter_tail",
                Value::Array(self.jitter_tail.iter().map(|&v| num(v)).collect()),
            ));
        }
        // Likewise conditional: the enforcement-trajectory tails only
        // exist on flights where adversarial enforcement ran.
        if !self.throttle_tail.is_empty() {
            fields.push((
                "throttle_tail",
                Value::Array(self.throttle_tail.iter().map(|&v| num(v)).collect()),
            ));
        }
        if !self.cpu_quota_tail.is_empty() {
            fields.push((
                "cpu_quota_tail",
                Value::Array(self.cpu_quota_tail.iter().map(|&v| num(v)).collect()),
            ));
        }
        object(fields)
    }

    /// The snapshot as pretty-printed JSON text.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).unwrap_or_default()
    }
}

/// Exports a [`crate::MetricsRegistry`] as a JSON value tree —
/// counters, gauges, and histograms (bounds + bucket counts +
/// summary stats) — alongside the black box for offline analysis.
pub fn metrics_to_json(metrics: &crate::MetricsRegistry) -> Value {
    let counters = object(
        metrics
            .counters()
            .map(|(name, v)| (name, num(v)))
            .collect(),
    );
    let gauges = object(
        metrics
            .gauges()
            .map(|(name, v)| (name, Value::Number(v)))
            .collect(),
    );
    let histograms = object(
        metrics
            .histograms()
            .map(|(name, h)| {
                (
                    name,
                    object(vec![
                        (
                            "bounds",
                            Value::Array(h.bounds().iter().map(|&b| num(b)).collect()),
                        ),
                        (
                            "counts",
                            Value::Array(h.bucket_counts().iter().map(|&c| num(c)).collect()),
                        ),
                        ("count", num(h.count())),
                        ("sum", num(h.sum())),
                        ("min", num(h.min())),
                        ("max", num(h.max())),
                        ("p50", num(h.quantile(0.5))),
                        ("p99", num(h.quantile(0.99))),
                    ]),
                )
            })
            .collect(),
    );
    object(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        (
            "digest",
            Value::String(format!("{:016x}", metrics.digest())),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;

    fn bus_with_records() -> TraceBus {
        let mut b = TraceBus::new(TraceConfig::default());
        b.set_now_ns(1_000_000);
        b.emit(
            Subsystem::Binder,
            TraceEvent::BinderTxn {
                caller: 7,
                code: 1,
                wire_size: 64,
                cross_container: true,
                latency_ns: 32_025,
                ok: true,
            },
        );
        b.set_now_ns(5_000_000);
        b.emit(
            Subsystem::Flight,
            TraceEvent::FlightPhase {
                phase: "flight-end",
                detail: "LinkLost".to_string(),
            },
        );
        b
    }

    #[test]
    fn snapshot_keeps_only_the_window() {
        let bus = bus_with_records();
        let snap = snapshot_window(&bus, 2_000_000, "LinkLost");
        assert_eq!(snap.ended_at_ns, 5_000_000);
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].subsystem, "flight");
        assert!(snap.dropped.is_empty());
    }

    #[test]
    fn snapshot_serializes_to_json_with_end_reason() {
        let bus = bus_with_records();
        let snap = snapshot_window(&bus, u64::MAX, "LinkLost");
        assert_eq!(snap.records.len(), 2);
        let text = snap.to_json_pretty();
        assert!(text.contains("\"end_reason\": \"LinkLost\""));
        assert!(text.contains("\"binder_txn\""));
        // Round-trips through the parser.
        let parsed: Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("end_reason").and_then(Value::as_str),
            Some("LinkLost")
        );
        let records = parsed.get("records").and_then(Value::as_array).expect("records");
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn metrics_export_includes_histogram_shape() {
        let mut m = crate::MetricsRegistry::new();
        m.count("binder.transactions", 3);
        m.observe("binder.latency_ns", &[10, 100], 7);
        let v = metrics_to_json(&m);
        let text = serde_json::to_string(&v).expect("serializes");
        assert!(text.contains("\"binder.transactions\":3"));
        assert!(text.contains("\"bounds\":[10,100]"));
    }
}
