//! The trace bus: typed, sim-time-stamped records in bounded
//! per-subsystem rings.

use std::collections::VecDeque;

/// The subsystems that emit trace records. One bounded ring each, so
/// a chatty subsystem (telemetry-rate MAVLink) can never evict a
/// quiet one's records (a single fault edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// Flight-executor phases: launch, handovers, leg ends, landing.
    Flight,
    /// Binder driver transactions.
    Binder,
    /// MAVLink proxy command verdicts and link-failsafe edges.
    Mavlink,
    /// VDC allotment decisions: grants, revocations, watchdog.
    Vdc,
    /// Cloud facade: retries, degraded modes, queue/buffer drains.
    Cloud,
    /// Fault-injector arm/disarm edges.
    Fault,
}

impl Subsystem {
    /// Every subsystem, in ring order.
    pub const ALL: [Subsystem; 6] = [
        Subsystem::Flight,
        Subsystem::Binder,
        Subsystem::Mavlink,
        Subsystem::Vdc,
        Subsystem::Cloud,
        Subsystem::Fault,
    ];

    /// Stable lowercase name (used as the JSON tag).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Flight => "flight",
            Subsystem::Binder => "binder",
            Subsystem::Mavlink => "mavlink",
            Subsystem::Vdc => "vdc",
            Subsystem::Cloud => "cloud",
            Subsystem::Fault => "fault",
        }
    }

    fn index(self) -> usize {
        match self {
            Subsystem::Flight => 0,
            Subsystem::Binder => 1,
            Subsystem::Mavlink => 2,
            Subsystem::Vdc => 3,
            Subsystem::Cloud => 4,
            Subsystem::Fault => 5,
        }
    }
}

/// A typed trace payload. Plain data only — no references into sim
/// state, so records survive the flight that produced them.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A flight-executor phase transition (launched, handover, leg
    /// end, breach, abort, landed, flight end).
    FlightPhase {
        /// Stable phase tag.
        phase: &'static str,
        /// Free-form detail (owner, waypoint, end reason).
        detail: String,
    },
    /// The per-second folded component digest (one per sanitizer
    /// tick) — lets offline tooling line trace records up against
    /// the dual-run hash trace.
    TickHash {
        /// Simulated second.
        tick: u64,
        /// FNV-1a fold of all component hashes at this tick.
        digest: u64,
    },
    /// One Binder transaction through the driver.
    BinderTxn {
        /// Calling process id.
        caller: u32,
        /// Transaction code.
        code: u32,
        /// Serialized parcel size in bytes.
        wire_size: u64,
        /// Whether the call crossed a container boundary.
        cross_container: bool,
        /// Modeled transaction cost in sim-nanoseconds.
        latency_ns: u64,
        /// False when fault injection failed the transaction.
        ok: bool,
    },
    /// A MAVLink command's verdict at the proxy.
    MavCommand {
        /// Client (virtual flight controller) name.
        client: String,
        /// "forwarded", "denied", or "dropped".
        verdict: &'static str,
    },
    /// A link-failsafe ladder transition.
    LinkFailsafe {
        /// "loiter", "rtl", or "restored".
        phase: &'static str,
    },
    /// A VDC allotment or watchdog decision.
    VdcDecision {
        /// Virtual drone name.
        vdrone: String,
        /// Stable decision tag (grant-waypoint, revoke-waypoint,
        /// watchdog-revoke, geofence-breach, low-energy).
        decision: &'static str,
        /// Free-form detail.
        detail: String,
    },
    /// One cloud operation's retry outcome.
    CloudRetry {
        /// Stable operation tag.
        op: &'static str,
        /// Total attempts made (1 = first try succeeded).
        attempts: u32,
        /// Sim-time spent in backoff.
        backoff_ns: u64,
        /// True when every attempt failed and the facade degraded.
        gave_up: bool,
    },
    /// A cloud degraded-mode edge (portal down, VDR outage, queue
    /// merge, buffer drain).
    CloudDegraded {
        /// Stable mode tag.
        mode: &'static str,
        /// Free-form detail.
        detail: String,
    },
    /// A fault-plan transition fired by the injector.
    FaultEdge {
        /// Stable fault-kind tag.
        kind: &'static str,
        /// True on arm, false on disarm.
        armed: bool,
        /// Free-form detail (channel, target, seed).
        detail: String,
    },
    /// A per-tenant Binder QoS throttle edge: the tenant entered
    /// (`throttled == true`) or left the throttled state.
    BinderThrottle {
        /// Throttled tenant's container id.
        container: u32,
        /// Which budget dimension tripped ("rate", "parcel-size",
        /// "fd-budget", "subscription-budget") or "recovered".
        dimension: &'static str,
        /// True on entering throttle, false on recovery.
        throttled: bool,
    },
    /// An attack-plan transition fired by the attack injector.
    AttackEdge {
        /// Stable attack-kind tag.
        kind: &'static str,
        /// The hostile tenant mounting the attack.
        attacker: String,
        /// True on arm, false on disarm.
        armed: bool,
        /// Free-form detail (parameters, enforcement response).
        detail: String,
    },
}

impl TraceEvent {
    /// Stable event-kind tag (used as the JSON tag).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FlightPhase { .. } => "flight_phase",
            TraceEvent::TickHash { .. } => "tick_hash",
            TraceEvent::BinderTxn { .. } => "binder_txn",
            TraceEvent::MavCommand { .. } => "mav_command",
            TraceEvent::LinkFailsafe { .. } => "link_failsafe",
            TraceEvent::VdcDecision { .. } => "vdc_decision",
            TraceEvent::CloudRetry { .. } => "cloud_retry",
            TraceEvent::CloudDegraded { .. } => "cloud_degraded",
            TraceEvent::FaultEdge { .. } => "fault_edge",
            TraceEvent::BinderThrottle { .. } => "binder_throttle",
            TraceEvent::AttackEdge { .. } => "attack_edge",
        }
    }
}

/// One record on the bus: a payload stamped with sim time and a
/// bus-global sequence number (total order across subsystems).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Sim-nanoseconds since flight start when the record was
    /// emitted.
    pub t_ns: u64,
    /// Bus-global sequence number.
    pub seq: u64,
    /// The typed payload.
    pub event: TraceEvent,
}

/// Bounded ring: pushes evict the oldest record past capacity, and
/// evictions are counted so truncation is never silent.
#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, record: TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

/// Trace bus sizing.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Capacity of each subsystem's ring, in records.
    pub per_ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // 4096 records/subsystem holds tens of simulated seconds of
        // the chattiest stream (telemetry-rate Binder traffic) —
        // comfortably more than the recorder's snapshot window.
        TraceConfig {
            per_ring_capacity: 4096,
        }
    }
}

/// The trace bus: one bounded ring per subsystem plus the sim clock
/// stamp used for new records.
#[derive(Debug)]
pub struct TraceBus {
    now_ns: u64,
    seq: u64,
    rings: [Ring; Subsystem::COUNT],
}

impl Subsystem {
    const COUNT: usize = 6;
}

impl TraceBus {
    /// An empty bus with the given per-ring capacity.
    pub fn new(cfg: TraceConfig) -> Self {
        let mut rings: [Ring; Subsystem::COUNT] = Default::default();
        for ring in &mut rings {
            ring.capacity = cfg.per_ring_capacity;
        }
        TraceBus {
            now_ns: 0,
            seq: 0,
            rings,
        }
    }

    /// Advances the sim-time stamp applied to subsequent records.
    pub fn set_now_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// The current sim-time stamp.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Appends a record to `sub`'s ring, stamped with the current
    /// sim time and the next sequence number.
    pub fn emit(&mut self, sub: Subsystem, event: TraceEvent) {
        let record = TraceRecord {
            t_ns: self.now_ns,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.rings[sub.index()].push(record);
    }

    /// Records currently held for `sub`, oldest first.
    pub fn records(&self, sub: Subsystem) -> impl Iterator<Item = &TraceRecord> {
        self.rings[sub.index()].records.iter()
    }

    /// How many records `sub`'s ring has evicted.
    pub fn dropped(&self, sub: Subsystem) -> u64 {
        self.rings[sub.index()].dropped
    }

    /// Total records currently held across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.records.len()).sum()
    }

    /// True when no ring holds any record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records with `t_ns >= cutoff` across every ring, merged
    /// into emission order (by sequence number). `(subsystem,
    /// record)` pairs.
    pub fn window(&self, cutoff_ns: u64) -> Vec<(Subsystem, TraceRecord)> {
        let mut out = Vec::new();
        for sub in Subsystem::ALL {
            for record in self.records(sub) {
                if record.t_ns >= cutoff_ns {
                    out.push((sub, record.clone()));
                }
            }
        }
        out.sort_by_key(|(_, r)| r.seq);
        out
    }

    /// Extracts the records of the named subsystems as a detachable
    /// [`TraceSegment`], in emission order. The bus is not modified:
    /// a worker-thread island exports its segment at the wave barrier
    /// and the island bus dies with the island.
    pub fn segment(&self, subs: &[Subsystem]) -> TraceSegment {
        let mut records = Vec::new();
        for &sub in subs {
            for record in self.records(sub) {
                records.push((sub, record.clone()));
            }
        }
        records.sort_by_key(|(_, r)| r.seq);
        TraceSegment { records }
    }

    /// Absorbs a segment exported from another bus: each record is
    /// re-emitted into the matching local ring with a fresh local
    /// sequence number (the bus-global total order is preserved by
    /// absorption order) while keeping the record's original sim
    /// timestamp. Ring capacities and drop accounting apply as for
    /// local emission, so absorption can never grow a ring past its
    /// bound.
    pub fn absorb(&mut self, segment: &TraceSegment) {
        for (sub, record) in &segment.records {
            let stamped = TraceRecord {
                t_ns: record.t_ns,
                seq: self.seq,
                event: record.event.clone(),
            };
            self.seq += 1;
            self.rings[sub.index()].push(stamped);
        }
    }
}

/// A detachable run of trace records exported from one bus and
/// absorbable into another — the unit the fleet executor uses to
/// carry island-local trace across the wave barrier. Plain data,
/// `Send`, ordered by the source bus's emission order.
#[derive(Debug, Clone, Default)]
pub struct TraceSegment {
    /// `(subsystem, record)` pairs in source-bus emission order.
    pub records: Vec<(Subsystem, TraceRecord)>,
}

impl TraceSegment {
    /// Number of records in the segment.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(cap: usize) -> TraceBus {
        TraceBus::new(TraceConfig {
            per_ring_capacity: cap,
        })
    }

    fn phase(detail: &str) -> TraceEvent {
        TraceEvent::FlightPhase {
            phase: "test",
            detail: detail.to_string(),
        }
    }

    #[test]
    fn records_are_stamped_with_sim_time_and_sequence() {
        let mut b = bus(8);
        b.set_now_ns(1_000);
        b.emit(Subsystem::Flight, phase("a"));
        b.set_now_ns(2_000);
        b.emit(Subsystem::Binder, phase("b"));
        let flight: Vec<_> = b.records(Subsystem::Flight).collect();
        assert_eq!(flight[0].t_ns, 1_000);
        assert_eq!(flight[0].seq, 0);
        let binder: Vec<_> = b.records(Subsystem::Binder).collect();
        assert_eq!(binder[0].t_ns, 2_000);
        assert_eq!(binder[0].seq, 1);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut b = bus(2);
        for i in 0..5 {
            b.set_now_ns(i * 100);
            b.emit(Subsystem::Vdc, phase(&i.to_string()));
        }
        let held: Vec<_> = b.records(Subsystem::Vdc).collect();
        assert_eq!(held.len(), 2);
        assert_eq!(held[0].t_ns, 300);
        assert_eq!(held[1].t_ns, 400);
        assert_eq!(b.dropped(Subsystem::Vdc), 3);
        assert_eq!(b.dropped(Subsystem::Flight), 0);
    }

    #[test]
    fn rings_are_isolated_per_subsystem() {
        let mut b = bus(1);
        b.emit(Subsystem::Mavlink, phase("chatty"));
        b.emit(Subsystem::Mavlink, phase("chattier"));
        b.emit(Subsystem::Fault, phase("rare"));
        assert_eq!(b.records(Subsystem::Mavlink).count(), 1);
        assert_eq!(b.records(Subsystem::Fault).count(), 1);
        assert_eq!(b.dropped(Subsystem::Mavlink), 1);
        assert_eq!(b.dropped(Subsystem::Fault), 0);
    }

    #[test]
    fn window_merges_rings_in_emission_order() {
        let mut b = bus(8);
        b.set_now_ns(100);
        b.emit(Subsystem::Binder, phase("early"));
        b.set_now_ns(200);
        b.emit(Subsystem::Flight, phase("mid"));
        b.set_now_ns(300);
        b.emit(Subsystem::Binder, phase("late"));
        let w = b.window(150);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, Subsystem::Flight);
        assert_eq!(w[1].0, Subsystem::Binder);
        assert!(w[0].1.seq < w[1].1.seq);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut b = bus(0);
        b.emit(Subsystem::Cloud, phase("x"));
        assert!(b.is_empty());
        assert_eq!(b.dropped(Subsystem::Cloud), 1);
    }

    #[test]
    fn segment_exports_named_rings_in_emission_order() {
        let mut b = bus(8);
        b.set_now_ns(100);
        b.emit(Subsystem::Fault, phase("arm"));
        b.emit(Subsystem::Flight, phase("launch"));
        b.set_now_ns(200);
        b.emit(Subsystem::Fault, phase("disarm"));
        let seg = b.segment(&[Subsystem::Fault]);
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.records[0].1.t_ns, 100);
        assert_eq!(seg.records[1].1.t_ns, 200);
        assert!(seg.records.iter().all(|(s, _)| *s == Subsystem::Fault));
        // The source bus is untouched.
        assert_eq!(b.records(Subsystem::Fault).count(), 2);
    }

    #[test]
    fn absorb_resequences_locally_and_keeps_timestamps() {
        let mut island = bus(8);
        island.set_now_ns(1_000);
        island.emit(Subsystem::Fault, phase("arm"));
        let seg = island.segment(&[Subsystem::Fault]);

        let mut fleet = bus(8);
        fleet.emit(Subsystem::Cloud, phase("wave"));
        fleet.absorb(&seg);
        let absorbed: Vec<_> = fleet.records(Subsystem::Fault).collect();
        assert_eq!(absorbed.len(), 1);
        assert_eq!(absorbed[0].t_ns, 1_000, "island sim time preserved");
        assert_eq!(absorbed[0].seq, 1, "re-sequenced after local records");
    }

    #[test]
    fn absorb_respects_ring_capacity() {
        let mut island = bus(8);
        for i in 0..4 {
            island.set_now_ns(i * 10);
            island.emit(Subsystem::Vdc, phase(&i.to_string()));
        }
        let seg = island.segment(&[Subsystem::Vdc]);
        let mut fleet = bus(2);
        fleet.absorb(&seg);
        assert_eq!(fleet.records(Subsystem::Vdc).count(), 2);
        assert_eq!(fleet.dropped(Subsystem::Vdc), 2);
    }
}
