//! The shared, optionally-attached observability handle.

use std::cell::RefCell;
use std::rc::Rc;

use crate::metrics::MetricsRegistry;
use crate::recorder::{snapshot_window, BlackBoxSnapshot};
use crate::trace::{Subsystem, TraceBus, TraceConfig, TraceEvent};

/// One flight's observability state: the trace bus plus the metrics
/// registry, advanced together by the flight executor's sim clock.
#[derive(Debug)]
pub struct Obs {
    /// The trace bus.
    pub trace: TraceBus,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

/// A cheaply-cloneable handle that subsystems hold. Two states:
///
/// - **attached**: shares one [`Obs`] with every other clone (the
///   drone, its Binder driver, its proxy, its VDC);
/// - **detached** (the [`Default`]): every operation is a single
///   branch and a no-op. Bare-constructed subsystems — benches, unit
///   tests — get this, so the hot paths they measure carry no
///   observability cost.
///
/// All accessors go through [`ObsHandle::with`], which uses
/// `try_borrow_mut` — re-entrant emission (a probe that emits while
/// the executor holds the borrow) silently drops the inner record
/// instead of panicking, which is the right failure mode for a
/// diagnostics layer.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    inner: Option<Rc<RefCell<Obs>>>,
}

impl ObsHandle {
    /// A fresh attached handle with default trace sizing.
    pub fn attached() -> Self {
        Self::with_config(TraceConfig::default())
    }

    /// A fresh attached handle with explicit trace sizing.
    pub fn with_config(cfg: TraceConfig) -> Self {
        ObsHandle {
            inner: Some(Rc::new(RefCell::new(Obs {
                trace: TraceBus::new(cfg),
                metrics: MetricsRegistry::new(),
            }))),
        }
    }

    /// A detached handle (same as [`Default`]); every operation is a
    /// no-op.
    pub fn detached() -> Self {
        ObsHandle { inner: None }
    }

    /// True when this handle shares an [`Obs`].
    pub fn is_attached(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f` against the shared state, if attached and not
    /// already borrowed. Returns `None` (doing nothing) otherwise.
    pub fn with<R>(&self, f: impl FnOnce(&mut Obs) -> R) -> Option<R> {
        let rc = self.inner.as_ref()?;
        let mut obs = rc.try_borrow_mut().ok()?;
        Some(f(&mut obs))
    }

    /// Advances the sim-time stamp for subsequent trace records.
    pub fn set_now_ns(&self, now_ns: u64) {
        let _ = self.with(|o| o.trace.set_now_ns(now_ns));
    }

    /// The current sim-time stamp (0 when detached).
    pub fn now_ns(&self) -> u64 {
        self.with(|o| o.trace.now_ns()).unwrap_or(0)
    }

    /// Emits a trace record. `event` is a closure so the payload
    /// (string formatting, clones) is never built when detached.
    pub fn emit(&self, sub: Subsystem, event: impl FnOnce() -> TraceEvent) {
        let _ = self.with(|o| o.trace.emit(sub, event()));
    }

    /// Adds `n` to counter `name`.
    pub fn count(&self, name: &'static str, n: u64) {
        let _ = self.with(|o| o.metrics.count(name, n));
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge(&self, name: &'static str, v: f64) {
        let _ = self.with(|o| o.metrics.gauge_set(name, v));
    }

    /// Raises gauge `name` to `v` if `v` exceeds its current value
    /// (high-water mark).
    pub fn gauge_max(&self, name: &'static str, v: f64) {
        let _ = self.with(|o| o.metrics.gauge_max(name, v));
    }

    /// Records `v` into histogram `name` with the given bounds.
    pub fn observe(&self, name: &'static str, bounds: &'static [u64], v: u64) {
        let _ = self.with(|o| o.metrics.observe(name, bounds, v));
    }

    /// Adds `n` to the `label`ed member of counter family `name`
    /// (per-tenant accounting).
    pub fn count_labeled(&self, name: &'static str, label: &str, n: u64) {
        let _ = self.with(|o| o.metrics.count_labeled(name, label, n));
    }

    /// Records `v` into the `label`ed member of histogram family
    /// `name` (per-tenant latency distributions).
    pub fn observe_labeled(
        &self,
        name: &'static str,
        label: &str,
        bounds: &'static [u64],
        v: u64,
    ) {
        let _ = self.with(|o| o.metrics.observe_labeled(name, label, bounds, v));
    }

    /// The registry digest (0 when detached — a detached run has no
    /// metrics to disagree about).
    pub fn metrics_digest(&self) -> u64 {
        self.with(|o| o.metrics.digest()).unwrap_or(0)
    }

    /// Snapshots the last `window_ns` of trace into a black-box
    /// record (see [`BlackBoxSnapshot`]), folding in the last raw
    /// `binder.latency_ns` samples as the snapshot's latency tail —
    /// the histogram keeps bucket shape, the tail keeps the exact
    /// final transaction latencies. `None` when detached.
    pub fn snapshot_window(&self, window_ns: u64, end_reason: &str) -> Option<BlackBoxSnapshot> {
        self.with(|o| {
            let mut snap = snapshot_window(&o.trace, window_ns, end_reason);
            if let Some(h) = o.metrics.histogram("binder.latency_ns") {
                snap.latency_tail = h.recent().collect();
            }
            // The fast-loop jitter tail rides the same mechanism:
            // the RT-deadline monitor feeds "flight.jitter_us", and
            // flights without the monitor leave the tail empty.
            if let Some(h) = o.metrics.histogram("flight.jitter_us") {
                snap.jitter_tail = h.recent().collect();
            }
            // Enforcement-trajectory tails: per-tick throttle deltas
            // and the armed CPU quota, fed by the attack injectors.
            if let Some(h) = o.metrics.histogram("binder.throttle_trajectory") {
                snap.throttle_tail = h.recent().collect();
            }
            if let Some(h) = o.metrics.histogram("cpu.quota_millicores") {
                snap.cpu_quota_tail = h.recent().collect();
            }
            snap
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handle_is_inert() {
        let h = ObsHandle::default();
        assert!(!h.is_attached());
        h.count("x", 1);
        h.emit(Subsystem::Flight, || panic!("payload built while detached"));
        assert_eq!(h.metrics_digest(), 0);
        assert!(h.snapshot_window(1_000, "Aborted").is_none());
    }

    #[test]
    fn clones_share_one_obs() {
        let a = ObsHandle::attached();
        let b = a.clone();
        a.count("x", 2);
        b.count("x", 3);
        assert_eq!(a.with(|o| o.metrics.counter("x")), Some(5));
        assert_eq!(a.metrics_digest(), b.metrics_digest());
    }

    #[test]
    fn snapshot_carries_the_binder_latency_tail() {
        let h = ObsHandle::attached();
        h.observe("binder.latency_ns", &[100, 1_000], 40);
        h.observe("binder.latency_ns", &[100, 1_000], 250);
        h.observe("other.histogram", &[10], 7);
        let snap = h.snapshot_window(1_000, "LinkLost").expect("attached");
        assert_eq!(snap.latency_tail, vec![40, 250]);
        // The tail rides along in the JSON contract.
        let text = snap.to_json_pretty();
        assert!(text.contains("\"latency_tail\""));
    }

    #[test]
    fn reentrant_access_is_dropped_not_panicked() {
        let h = ObsHandle::attached();
        let h2 = h.clone();
        let out = h.with(|_outer| h2.with(|o| o.metrics.count("inner", 1)));
        assert_eq!(out, Some(None));
        assert_eq!(h.with(|o| o.metrics.counter("inner")), Some(0));
    }
}
