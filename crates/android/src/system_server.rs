//! SystemServer: booting Android instances.
//!
//! Boots the userspace side of an Android Things instance inside a
//! container: the ServiceManager (registered as the namespace's
//! Context Manager), the ActivityManager, and — in the device
//! container only — the Table 1 device services against real
//! hardware. Virtual drone containers have those services disabled
//! ("by modifying init files and Android's SystemServer", paper
//! Section 4.2).

use std::cell::RefCell;
use std::rc::Rc;

use androne_binder::{
    add_service, BinderDriver, BinderError, ServiceManager, ACTIVITY_MANAGER,
};
use androne_container::DeviceNamespaceId;
use androne_hal::SharedBoard;
use androne_simkern::{ContainerId, Euid, Kernel, Pid, SchedPolicy};

use crate::activity_manager::ActivityManager;
use crate::policy::PolicyRef;
use crate::services::{
    names, AudioFlinger, CameraService, LocationManagerService, SensorService,
};

/// A booted Android instance's handles.
pub struct AndroidInstance {
    /// The container this instance runs in.
    pub container: ContainerId,
    /// Its device namespace.
    pub device_ns: DeviceNamespaceId,
    /// The ServiceManager process.
    pub sm_pid: Pid,
    /// The SystemServer process (also hosts the ActivityManager).
    pub system_server_pid: Pid,
    /// Direct handle to the ActivityManager state (how root-side
    /// tooling like the VDC installs apps and grants permissions).
    pub activity_manager: Rc<RefCell<ActivityManager>>,
    /// Device-service pids, if this is the device container.
    pub service_pids: Vec<Pid>,
    /// Typed handle to the CameraService (device container only);
    /// the host pumps open frame streams through it.
    pub camera_service: Option<Rc<RefCell<CameraService>>>,
}

/// Boot configuration.
pub struct SystemServerConfig {
    /// Run the Table 1 device services against hardware (device
    /// container only).
    pub run_device_services: bool,
}

impl SystemServerConfig {
    /// Virtual drone configuration: device services disabled.
    pub fn virtual_drone() -> Self {
        SystemServerConfig {
            run_device_services: false,
        }
    }

    /// Device container configuration.
    pub fn device_container() -> Self {
        SystemServerConfig {
            run_device_services: true,
        }
    }
}

/// Errors from booting an instance.
#[derive(Debug)]
pub enum BootError {
    /// Task spawn failure.
    Kernel(androne_simkern::KernelError),
    /// Binder setup failure.
    Binder(BinderError),
    /// A device-container boot was requested without a hardware board.
    MissingBoard,
}

impl std::fmt::Display for BootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootError::Kernel(e) => write!(f, "boot failed: {e}"),
            BootError::Binder(e) => write!(f, "boot failed: {e}"),
            BootError::MissingBoard => {
                write!(f, "boot failed: device container requires a hardware board")
            }
        }
    }
}

impl std::error::Error for BootError {}

impl From<androne_simkern::KernelError> for BootError {
    fn from(e: androne_simkern::KernelError) -> Self {
        BootError::Kernel(e)
    }
}

impl From<BinderError> for BootError {
    fn from(e: BinderError) -> Self {
        BootError::Binder(e)
    }
}

/// Boots an Android instance inside `container`.
///
/// For the device container (`config.run_device_services`), `board`
/// and `policy` wire the Table 1 services to hardware and to the VDC.
pub fn boot_android_instance(
    kernel: &mut Kernel,
    driver: &mut BinderDriver,
    container: ContainerId,
    device_ns: DeviceNamespaceId,
    config: &SystemServerConfig,
    board: Option<SharedBoard>,
    policy: PolicyRef,
) -> Result<AndroidInstance, BootError> {
    // servicemanager process.
    let sm_pid = kernel
        .tasks
        .spawn("servicemanager", Euid(1000), container, SchedPolicy::DEFAULT)?;
    driver.open(sm_pid, Euid(1000), container, device_ns);
    let sm = if config.run_device_services {
        driver.set_device_container(container, device_ns);
        ServiceManager::new_device_container(
            sm_pid,
            names::TABLE_1.iter().map(|s| s.to_string()),
        )
    } else {
        ServiceManager::new(sm_pid)
    };
    let sm_handle = driver.create_node(sm_pid, Rc::new(RefCell::new(sm)))?;
    driver.set_context_manager(sm_pid, sm_handle)?;

    // system_server process hosting the ActivityManager.
    let system_server_pid = kernel.tasks.spawn(
        "system_server",
        Euid(1000),
        container,
        SchedPolicy::DEFAULT,
    )?;
    driver.open(system_server_pid, Euid(1000), container, device_ns);
    let am = Rc::new(RefCell::new(ActivityManager::new()));
    let am_handle = driver.create_node(system_server_pid, am.clone())?;
    // Registering "activity" triggers PUBLISH_TO_DEV_CON in
    // non-device containers.
    add_service(driver, system_server_pid, ACTIVITY_MANAGER, am_handle)?;

    // Device services (device container only).
    let mut service_pids = Vec::new();
    let mut camera_service = None;
    if config.run_device_services {
        let board = board.ok_or(BootError::MissingBoard)?;
        fn start(
            kernel: &mut Kernel,
            driver: &mut BinderDriver,
            container: ContainerId,
            device_ns: DeviceNamespaceId,
            name: &str,
        ) -> Result<Pid, BootError> {
            let pid =
                kernel
                    .tasks
                    .spawn(name.to_string(), Euid(1000), container, SchedPolicy::DEFAULT)?;
            driver.open(pid, Euid(1000), container, device_ns);
            Ok(pid)
        }
        let cam_pid = start(kernel, driver, container, device_ns, names::CAMERA)?;
        let cam = Rc::new(RefCell::new(CameraService::new(
            cam_pid,
            board.clone(),
            policy.clone(),
        )));
        camera_service = Some(cam.clone());
        let h = driver.create_node(cam_pid, cam)?;
        add_service(driver, cam_pid, names::CAMERA, h)?;
        service_pids.push(cam_pid);

        let loc_pid = start(kernel, driver, container, device_ns, names::LOCATION)?;
        let loc = LocationManagerService::new(loc_pid, board.clone(), policy.clone());
        let h = driver.create_node(loc_pid, Rc::new(RefCell::new(loc)))?;
        add_service(driver, loc_pid, names::LOCATION, h)?;
        service_pids.push(loc_pid);

        let sen_pid = start(kernel, driver, container, device_ns, names::SENSORS)?;
        let sen = SensorService::new(sen_pid, board.clone(), policy.clone());
        let h = driver.create_node(sen_pid, Rc::new(RefCell::new(sen)))?;
        add_service(driver, sen_pid, names::SENSORS, h)?;
        service_pids.push(sen_pid);

        let aud_pid = start(kernel, driver, container, device_ns, names::AUDIO)?;
        let aud = AudioFlinger::new(aud_pid, board, policy);
        let h = driver.create_node(aud_pid, Rc::new(RefCell::new(aud)))?;
        add_service(driver, aud_pid, names::AUDIO, h)?;
        service_pids.push(aud_pid);
    }

    Ok(AndroidInstance {
        container,
        device_ns,
        sm_pid,
        system_server_pid,
        activity_manager: am,
        service_pids,
        camera_service,
    })
}
