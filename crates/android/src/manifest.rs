//! AnDrone app manifests.
//!
//! Every AnDrone app ships an XML manifest alongside the Android one
//! (paper Section 5), declaring the device permissions it needs —
//! with a `type` of `waypoint` or `continuous` — and the arguments it
//! expects from the user at ordering time. The portal uses the
//! manifest to prompt for arguments; the flight planner uses it to
//! avoid device conflicts.

use std::collections::BTreeMap;

use crate::policy::DeviceClass;

/// When an app needs access to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessType {
    /// Only while operating at the virtual drone's waypoints.
    Waypoint,
    /// Also between waypoints (suspendable near other parties'
    /// waypoints).
    Continuous,
}

/// One declared device permission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevicePermission {
    /// The device class.
    pub device: DeviceClass,
    /// Requested access type.
    pub access: AccessType,
}

/// One declared user argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgumentDecl {
    /// Argument name.
    pub name: String,
    /// Free-form type label shown by the portal ("geo-list",
    /// "string", "int").
    pub arg_type: String,
    /// Whether ordering requires a value.
    pub required: bool,
}

/// A parsed AnDrone manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AndroneManifest {
    /// The app's package name.
    pub package: String,
    /// Declared device permissions.
    pub permissions: Vec<DevicePermission>,
    /// Declared user arguments.
    pub arguments: Vec<ArgumentDecl>,
}

/// Manifest parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Structural XML problem.
    Malformed(String),
    /// Unknown device name in a `<uses-permission>`.
    UnknownDevice(String),
    /// Unknown access type.
    UnknownAccessType(String),
    /// Missing required attribute.
    MissingAttribute(&'static str),
    /// Flight control declared as a continuous device (forbidden:
    /// "flight control can only be specified as a waypoint device").
    ContinuousFlightControl,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Malformed(why) => write!(f, "malformed manifest: {why}"),
            ManifestError::UnknownDevice(d) => write!(f, "unknown device '{d}'"),
            ManifestError::UnknownAccessType(t) => write!(f, "unknown access type '{t}'"),
            ManifestError::MissingAttribute(a) => write!(f, "missing attribute '{a}'"),
            ManifestError::ContinuousFlightControl => {
                write!(f, "flight-control cannot be a continuous device")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

impl AndroneManifest {
    /// Parses a manifest from its XML text.
    pub fn parse(xml: &str) -> Result<Self, ManifestError> {
        let mut manifest = AndroneManifest::default();
        let mut saw_root = false;
        for tag in iter_tags(xml)? {
            let (name, attrs) = tag;
            match name.as_str() {
                "androne-manifest" => {
                    saw_root = true;
                    manifest.package = attrs
                        .get("package")
                        .cloned()
                        .ok_or(ManifestError::MissingAttribute("package"))?;
                }
                "uses-permission" => {
                    let dev_name = attrs
                        .get("name")
                        .ok_or(ManifestError::MissingAttribute("name"))?;
                    let device = DeviceClass::parse(dev_name)
                        .ok_or_else(|| ManifestError::UnknownDevice(dev_name.clone()))?;
                    let access = match attrs.get("type").map(String::as_str) {
                        Some("waypoint") | None => AccessType::Waypoint,
                        Some("continuous") => AccessType::Continuous,
                        Some(other) => {
                            return Err(ManifestError::UnknownAccessType(other.to_string()))
                        }
                    };
                    if device == DeviceClass::FlightControl && access == AccessType::Continuous {
                        return Err(ManifestError::ContinuousFlightControl);
                    }
                    manifest.permissions.push(DevicePermission { device, access });
                }
                "argument" => {
                    let name = attrs
                        .get("name")
                        .cloned()
                        .ok_or(ManifestError::MissingAttribute("name"))?;
                    let arg_type = attrs.get("type").cloned().unwrap_or_else(|| "string".into());
                    let required = attrs.get("required").map(String::as_str) == Some("true");
                    manifest.arguments.push(ArgumentDecl {
                        name,
                        arg_type,
                        required,
                    });
                }
                _ => {}
            }
        }
        if !saw_root {
            return Err(ManifestError::Malformed(
                "missing <androne-manifest> root".into(),
            ));
        }
        Ok(manifest)
    }

    /// Device classes requested at waypoints.
    pub fn waypoint_devices(&self) -> Vec<DeviceClass> {
        self.permissions
            .iter()
            .filter(|p| p.access == AccessType::Waypoint)
            .map(|p| p.device)
            .collect()
    }

    /// Device classes requested continuously.
    pub fn continuous_devices(&self) -> Vec<DeviceClass> {
        self.permissions
            .iter()
            .filter(|p| p.access == AccessType::Continuous)
            .map(|p| p.device)
            .collect()
    }

    /// Required argument names the portal must prompt for.
    pub fn required_arguments(&self) -> Vec<&str> {
        self.arguments
            .iter()
            .filter(|a| a.required)
            .map(|a| a.name.as_str())
            .collect()
    }
}

/// A parsed tag: name plus attribute map.
type Tag = (String, BTreeMap<String, String>);

/// Iterates `(tag_name, attributes)` over a simple XML subset
/// (no nesting semantics needed; attribute values are quoted).
fn iter_tags(xml: &str) -> Result<Vec<Tag>, ManifestError> {
    let mut out = Vec::new();
    let mut rest = xml;
    while let Some(start) = rest.find('<') {
        let Some(end_rel) = rest[start..].find('>') else {
            return Err(ManifestError::Malformed("unterminated tag".into()));
        };
        let inner = &rest[start + 1..start + end_rel];
        rest = &rest[start + end_rel + 1..];
        let inner = inner.trim().trim_end_matches('/').trim();
        if inner.starts_with('/') || inner.starts_with('?') || inner.starts_with('!') {
            continue; // Closing tags, declarations, comments.
        }
        let mut parts = inner.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or("").to_string();
        if name.is_empty() {
            return Err(ManifestError::Malformed("empty tag".into()));
        }
        let mut attrs = BTreeMap::new();
        if let Some(attr_str) = parts.next() {
            let mut s = attr_str.trim();
            while !s.is_empty() {
                let Some(eq) = s.find('=') else {
                    return Err(ManifestError::Malformed(format!(
                        "attribute without value near '{s}'"
                    )));
                };
                let key = s[..eq].trim().to_string();
                let after = s[eq + 1..].trim_start();
                let Some(q) = after.strip_prefix('"') else {
                    return Err(ManifestError::Malformed("unquoted attribute value".into()));
                };
                let Some(close) = q.find('"') else {
                    return Err(ManifestError::Malformed("unterminated attribute".into()));
                };
                attrs.insert(key, q[..close].to_string());
                s = q[close + 1..].trim_start();
            }
        }
        out.push((name, attrs));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SURVEY: &str = r#"
        <?xml version="1.0"?>
        <androne-manifest package="com.example.survey">
            <uses-permission name="camera" type="waypoint"/>
            <uses-permission name="flight-control" type="waypoint"/>
            <uses-permission name="gps" type="continuous"/>
            <argument name="survey-areas" type="geo-list" required="true"/>
            <argument name="overlap" type="int" required="false"/>
        </androne-manifest>
    "#;

    #[test]
    fn parses_the_survey_manifest() {
        let m = AndroneManifest::parse(SURVEY).unwrap();
        assert_eq!(m.package, "com.example.survey");
        assert_eq!(
            m.waypoint_devices(),
            vec![DeviceClass::Camera, DeviceClass::FlightControl]
        );
        assert_eq!(m.continuous_devices(), vec![DeviceClass::Gps]);
        assert_eq!(m.required_arguments(), vec!["survey-areas"]);
        assert_eq!(m.arguments.len(), 2);
        assert_eq!(m.arguments[1].arg_type, "int");
    }

    #[test]
    fn type_defaults_to_waypoint() {
        let xml = r#"<androne-manifest package="p"><uses-permission name="camera"/></androne-manifest>"#;
        let m = AndroneManifest::parse(xml).unwrap();
        assert_eq!(m.permissions[0].access, AccessType::Waypoint);
    }

    #[test]
    fn continuous_flight_control_is_rejected() {
        let xml = r#"<androne-manifest package="p">
            <uses-permission name="flight-control" type="continuous"/>
        </androne-manifest>"#;
        assert_eq!(
            AndroneManifest::parse(xml),
            Err(ManifestError::ContinuousFlightControl)
        );
    }

    #[test]
    fn unknown_device_is_rejected() {
        let xml = r#"<androne-manifest package="p"><uses-permission name="laser"/></androne-manifest>"#;
        assert!(matches!(
            AndroneManifest::parse(xml),
            Err(ManifestError::UnknownDevice(_))
        ));
    }

    #[test]
    fn missing_root_is_rejected() {
        assert!(matches!(
            AndroneManifest::parse("<uses-permission name=\"camera\"/>"),
            Err(ManifestError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_attributes_are_rejected() {
        assert!(AndroneManifest::parse("<androne-manifest package=p/>").is_err());
        assert!(AndroneManifest::parse("<androne-manifest package=\"p\"").is_err());
    }
}
