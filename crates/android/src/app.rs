//! Installed apps and the Android activity lifecycle.
//!
//! AnDrone saves and restores virtual drone state through the
//! standard Android activity lifecycle rather than checkpointing
//! (paper Section 4.4): apps are told they are about to be terminated
//! via `onSaveInstanceState()`, persist a state bundle, and restore
//! from it on the next launch — possibly on different physical drone
//! hardware.

use std::collections::BTreeMap;

use androne_simkern::{Euid, Pid};

use crate::manifest::AndroneManifest;

/// The saved-state bundle apps write in `onSaveInstanceState()`.
pub type Bundle = BTreeMap<String, String>;

/// Lifecycle state of an installed app.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppState {
    /// Installed, not running.
    Stopped,
    /// Running.
    Running,
}

/// One installed app inside a virtual drone container.
#[derive(Debug, Clone)]
pub struct InstalledApp {
    /// Package name.
    pub package: String,
    /// The app's AnDrone manifest.
    pub manifest: AndroneManifest,
    /// Sandbox euid assigned at install.
    pub euid: Euid,
    /// Main process pid while running.
    pub pid: Option<Pid>,
    /// Lifecycle state.
    pub state: AppState,
    /// The saved instance state bundle.
    pub saved_state: Bundle,
    /// Arguments supplied by the user at ordering time.
    pub args: BTreeMap<String, String>,
}

/// Per-container app registry (the package manager's bookkeeping).
#[derive(Debug, Default)]
pub struct AppRegistry {
    apps: BTreeMap<String, InstalledApp>,
    next_euid: u32,
}

impl AppRegistry {
    /// Creates an empty registry. App euids start at Android's
    /// first application UID (10000).
    pub fn new() -> Self {
        AppRegistry {
            apps: BTreeMap::new(),
            next_euid: 10_000,
        }
    }

    /// Installs an app from its manifest, assigning a fresh euid.
    pub fn install(&mut self, manifest: AndroneManifest) -> Euid {
        let euid = Euid(self.next_euid);
        self.next_euid += 1;
        let package = manifest.package.clone();
        self.apps.insert(
            package.clone(),
            InstalledApp {
                package,
                manifest,
                euid,
                pid: None,
                state: AppState::Stopped,
                saved_state: Bundle::new(),
                args: BTreeMap::new(),
            },
        );
        euid
    }

    /// Looks up an app.
    pub fn get(&self, package: &str) -> Option<&InstalledApp> {
        self.apps.get(package)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, package: &str) -> Option<&mut InstalledApp> {
        self.apps.get_mut(package)
    }

    /// Marks an app as running under `pid`.
    pub fn mark_running(&mut self, package: &str, pid: Pid) {
        if let Some(app) = self.apps.get_mut(package) {
            app.pid = Some(pid);
            app.state = AppState::Running;
        }
    }

    /// Delivers `onSaveInstanceState()`: stores the bundle and stops
    /// the app.
    pub fn save_instance_state(&mut self, package: &str, bundle: Bundle) {
        if let Some(app) = self.apps.get_mut(package) {
            app.saved_state = bundle;
            app.pid = None;
            app.state = AppState::Stopped;
        }
    }

    /// The bundle an app restores from when starting again.
    pub fn restore_bundle(&self, package: &str) -> Bundle {
        self.apps
            .get(package)
            .map(|a| a.saved_state.clone())
            .unwrap_or_default()
    }

    /// Iterates installed apps.
    pub fn iter(&self) -> impl Iterator<Item = &InstalledApp> {
        self.apps.values()
    }

    /// Serializes all saved bundles for offline storage in the
    /// container image (one line per key).
    pub fn serialize_saved_state(&self) -> String {
        let mut out = String::new();
        for app in self.apps.values() {
            for (k, v) in &app.saved_state {
                out.push_str(&format!("{}\t{}\t{}\n", app.package, k, v));
            }
        }
        out
    }

    /// Restores saved bundles from [`Self::serialize_saved_state`]
    /// output (apps must already be installed).
    pub fn deserialize_saved_state(&mut self, data: &str) {
        for line in data.lines() {
            let mut parts = line.splitn(3, '\t');
            if let (Some(pkg), Some(k), Some(v)) = (parts.next(), parts.next(), parts.next()) {
                if let Some(app) = self.apps.get_mut(pkg) {
                    app.saved_state.insert(k.to_string(), v.to_string());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(pkg: &str) -> AndroneManifest {
        AndroneManifest {
            package: pkg.into(),
            permissions: Vec::new(),
            arguments: Vec::new(),
        }
    }

    #[test]
    fn install_assigns_distinct_android_euids() {
        let mut reg = AppRegistry::new();
        let a = reg.install(manifest("a"));
        let b = reg.install(manifest("b"));
        assert_ne!(a, b);
        assert!(a.0 >= 10_000, "app UIDs start at 10000");
    }

    #[test]
    fn lifecycle_save_restore_round_trip() {
        let mut reg = AppRegistry::new();
        reg.install(manifest("com.example.survey"));
        reg.mark_running("com.example.survey", Pid(42));
        assert_eq!(reg.get("com.example.survey").unwrap().state, AppState::Running);

        let mut bundle = Bundle::new();
        bundle.insert("next-waypoint".into(), "2".into());
        bundle.insert("frames-captured".into(), "117".into());
        reg.save_instance_state("com.example.survey", bundle.clone());

        let app = reg.get("com.example.survey").unwrap();
        assert_eq!(app.state, AppState::Stopped);
        assert_eq!(app.pid, None);
        assert_eq!(reg.restore_bundle("com.example.survey"), bundle);
    }

    #[test]
    fn saved_state_serialization_round_trips() {
        let mut reg = AppRegistry::new();
        reg.install(manifest("a"));
        reg.install(manifest("b"));
        let mut ba = Bundle::new();
        ba.insert("k1".into(), "v1".into());
        reg.save_instance_state("a", ba);
        let mut bb = Bundle::new();
        bb.insert("k2".into(), "v with spaces".into());
        reg.save_instance_state("b", bb);

        let blob = reg.serialize_saved_state();
        let mut fresh = AppRegistry::new();
        fresh.install(manifest("a"));
        fresh.install(manifest("b"));
        fresh.deserialize_saved_state(&blob);
        assert_eq!(fresh.restore_bundle("a")["k1"], "v1");
        assert_eq!(fresh.restore_bundle("b")["k2"], "v with spaces");
    }
}
