//! Device classes and the VDC policy hook.
//!
//! AnDrone extends Android's service permission model so that the
//! `checkPermission()` path a device service takes "also queries the
//! VDC" (paper Section 4.4). Device services are handed a
//! [`DevicePolicy`] implementation; in the full system that is the
//! VDC, which answers based on the virtual drone definition and the
//! flight's current waypoint.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use androne_simkern::ContainerId;

/// User-facing device classes as they appear in virtual drone
/// definitions (`continuous-devices` / `waypoint-devices`, paper
/// Figure 2) and AnDrone manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceClass {
    /// The camera.
    Camera,
    /// Microphone capture.
    Microphone,
    /// Speaker output.
    Speakers,
    /// GPS / location.
    Gps,
    /// Motion and environmental sensors.
    Sensors,
    /// The camera gimbal.
    Gimbal,
    /// Drone flight control (waypoint-only; never continuous).
    FlightControl,
}

impl DeviceClass {
    /// All device classes.
    pub const ALL: [DeviceClass; 7] = [
        DeviceClass::Camera,
        DeviceClass::Microphone,
        DeviceClass::Speakers,
        DeviceClass::Gps,
        DeviceClass::Sensors,
        DeviceClass::Gimbal,
        DeviceClass::FlightControl,
    ];

    /// Parses the spec-file spelling.
    pub fn parse(s: &str) -> Option<DeviceClass> {
        Some(match s {
            "camera" => DeviceClass::Camera,
            "microphone" => DeviceClass::Microphone,
            "speakers" => DeviceClass::Speakers,
            "gps" => DeviceClass::Gps,
            "sensors" => DeviceClass::Sensors,
            "gimbal" => DeviceClass::Gimbal,
            "flight-control" => DeviceClass::FlightControl,
            _ => return None,
        })
    }

    /// The Android permission string guarding this device class.
    pub fn android_permission(self) -> &'static str {
        match self {
            DeviceClass::Camera => "android.permission.CAMERA",
            DeviceClass::Microphone => "android.permission.RECORD_AUDIO",
            DeviceClass::Speakers => "android.permission.MODIFY_AUDIO_SETTINGS",
            DeviceClass::Gps => "android.permission.ACCESS_FINE_LOCATION",
            DeviceClass::Sensors => "android.permission.BODY_SENSORS",
            DeviceClass::Gimbal => "androne.permission.GIMBAL",
            DeviceClass::FlightControl => "androne.permission.FLIGHT_CONTROL",
        }
    }

    /// Maps an Android permission string back to a device class.
    pub fn from_android_permission(p: &str) -> Option<DeviceClass> {
        DeviceClass::ALL
            .into_iter()
            .find(|d| d.android_permission() == p)
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::Camera => "camera",
            DeviceClass::Microphone => "microphone",
            DeviceClass::Speakers => "speakers",
            DeviceClass::Gps => "gps",
            DeviceClass::Sensors => "sensors",
            DeviceClass::Gimbal => "gimbal",
            DeviceClass::FlightControl => "flight-control",
        };
        f.write_str(s)
    }
}

/// The VDC-side policy consulted on every device-service permission
/// check.
pub trait DevicePolicy {
    /// Whether `container` currently has access to `device`.
    fn allows(&self, container: ContainerId, device: DeviceClass) -> bool;
}

/// Shared policy handle.
pub type PolicyRef = Rc<RefCell<dyn DevicePolicy>>;

/// Permissive policy for tests and the device container itself.
#[derive(Debug, Default)]
pub struct AllowAll;

impl DevicePolicy for AllowAll {
    fn allows(&self, _container: ContainerId, _device: DeviceClass) -> bool {
        true
    }
}

/// Deny-everything policy.
#[derive(Debug, Default)]
pub struct DenyAll;

impl DevicePolicy for DenyAll {
    fn allows(&self, _container: ContainerId, _device: DeviceClass) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_round_trip() {
        for d in DeviceClass::ALL {
            assert_eq!(DeviceClass::parse(&d.to_string()), Some(d));
        }
        assert_eq!(DeviceClass::parse("warp-drive"), None);
    }

    #[test]
    fn android_permissions_round_trip() {
        for d in DeviceClass::ALL {
            assert_eq!(
                DeviceClass::from_android_permission(d.android_permission()),
                Some(d)
            );
        }
    }
}
