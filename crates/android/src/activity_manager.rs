//! The per-container ActivityManager.
//!
//! Holds app records and answers `checkPermission()` queries. Each
//! container's ServiceManager forwards the ActivityManager
//! registration to the device container (`PUBLISH_TO_DEV_CON`), so
//! shared device services can resolve the *calling* container's
//! ActivityManager by its scoped name and ask it about the calling
//! app's grants (paper Section 4.2).

use std::collections::{BTreeMap, BTreeSet};

use androne_binder::{BinderDriver, BinderError, BinderService, Parcel, TransactionContext};
use androne_simkern::Euid;

/// ActivityManager transaction codes.
pub mod codes {
    /// `{str permission, i32 euid}` → `{i32 granted(0|1)}`.
    pub const CHECK_PERMISSION: u32 = 1;
    /// `{str package, i32 euid}` → `{}` — register an app record.
    pub const REGISTER_APP: u32 = 2;
    /// `{str package, str permission}` → `{}` — grant.
    pub const GRANT_PERMISSION: u32 = 3;
    /// `{str package, str permission}` → `{}` — revoke.
    pub const REVOKE_PERMISSION: u32 = 4;
}

/// Result value for a granted permission (Android's
/// `PERMISSION_GRANTED`).
pub const PERMISSION_GRANTED: i32 = 0;
/// Result value for a denied permission (`PERMISSION_DENIED`).
pub const PERMISSION_DENIED: i32 = -1;

#[derive(Debug, Default)]
struct AppRecord {
    euid: u32,
    granted: BTreeSet<String>,
}

/// One container's ActivityManager.
#[derive(Debug, Default)]
pub struct ActivityManager {
    apps: BTreeMap<String, AppRecord>,
}

impl ActivityManager {
    /// Creates an empty ActivityManager.
    pub fn new() -> Self {
        ActivityManager::default()
    }

    /// Registers an app with its sandbox euid.
    pub fn register_app(&mut self, package: impl Into<String>, euid: Euid) {
        self.apps.insert(
            package.into(),
            AppRecord {
                euid: euid.0,
                granted: BTreeSet::new(),
            },
        );
    }

    /// Grants a permission to a package.
    pub fn grant(&mut self, package: &str, permission: impl Into<String>) {
        if let Some(app) = self.apps.get_mut(package) {
            app.granted.insert(permission.into());
        }
    }

    /// Revokes a permission from a package.
    pub fn revoke(&mut self, package: &str, permission: &str) {
        if let Some(app) = self.apps.get_mut(package) {
            app.granted.remove(permission);
        }
    }

    /// Android-style permission check by euid.
    pub fn check_permission(&self, permission: &str, euid: Euid) -> i32 {
        let granted = self
            .apps
            .values()
            .any(|a| a.euid == euid.0 && a.granted.contains(permission));
        if granted {
            PERMISSION_GRANTED
        } else {
            PERMISSION_DENIED
        }
    }

    /// Packages registered (diagnostics).
    pub fn packages(&self) -> Vec<String> {
        self.apps.keys().cloned().collect()
    }
}

impl BinderService for ActivityManager {
    fn on_transact(
        &mut self,
        code: u32,
        data: &Parcel,
        _ctx: &TransactionContext,
        _driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        let mut reply = Parcel::new();
        match code {
            codes::CHECK_PERMISSION => {
                let permission = data.str_at(0)?;
                let euid = Euid(data.i32_at(1)? as u32);
                reply.push_i32(self.check_permission(permission, euid));
            }
            codes::REGISTER_APP => {
                let package = data.str_at(0)?.to_string();
                let euid = Euid(data.i32_at(1)? as u32);
                self.register_app(package, euid);
            }
            codes::GRANT_PERMISSION => {
                let package = data.str_at(0)?.to_string();
                let permission = data.str_at(1)?.to_string();
                self.grant(&package, permission);
            }
            codes::REVOKE_PERMISSION => {
                let package = data.str_at(0)?.to_string();
                let permission = data.str_at(1)?;
                self.revoke(&package, permission);
            }
            other => {
                return Err(BinderError::TransactionFailed(format!(
                    "unknown ActivityManager code {other}"
                )))
            }
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_per_euid() {
        let mut am = ActivityManager::new();
        am.register_app("com.example.survey", Euid(10_050));
        am.register_app("com.example.other", Euid(10_051));
        am.grant("com.example.survey", "android.permission.CAMERA");
        assert_eq!(
            am.check_permission("android.permission.CAMERA", Euid(10_050)),
            PERMISSION_GRANTED
        );
        assert_eq!(
            am.check_permission("android.permission.CAMERA", Euid(10_051)),
            PERMISSION_DENIED
        );
    }

    #[test]
    fn revoke_removes_grant() {
        let mut am = ActivityManager::new();
        am.register_app("app", Euid(10_001));
        am.grant("app", "p");
        am.revoke("app", "p");
        assert_eq!(am.check_permission("p", Euid(10_001)), PERMISSION_DENIED);
    }

    #[test]
    fn unknown_package_operations_are_noops() {
        let mut am = ActivityManager::new();
        am.grant("ghost", "p");
        am.revoke("ghost", "p");
        assert_eq!(am.check_permission("p", Euid(1)), PERMISSION_DENIED);
    }
}
