//! The device container's shared system services (paper Table 1).
//!
//! | Service                  | Device(s)                        |
//! |--------------------------|----------------------------------|
//! | AudioFlinger             | Microphone, Speakers             |
//! | CameraService            | Camera                           |
//! | LocationManagerService   | GPS                              |
//! | SensorService            | Motion, Environmental Sensors    |
//!
//! Only these services run against real hardware, inside the device
//! container; they already multiplex multiple client processes, which
//! is exactly the property AnDrone leverages to multiplex multiple
//! *containers*. On every sensitive call a service performs the
//! paper's two-stage permission check: (1) resolve the **calling
//! container's** ActivityManager through its scoped name
//! (`activity#ctrN`, registered via `PUBLISH_TO_DEV_CON`) and ask it
//! about the calling app's grant; (2) consult the VDC policy for the
//! flight-state decision (waypoint devices only at waypoints, etc.).

use std::collections::{BTreeMap, BTreeSet};

use androne_binder::{
    new_stream, scoped_service_name, sm_codes, BinderDriver, BinderError, BinderService,
    FilePayload, Parcel, TransactionContext, ACTIVITY_MANAGER,
};
use androne_hal::SharedBoard;
use androne_simkern::{ContainerId, Pid};

use crate::activity_manager::{codes as am_codes, PERMISSION_GRANTED};
use crate::policy::{DeviceClass, PolicyRef};

/// Service names as registered with the ServiceManager (and listed in
/// the device container's shared list).
pub mod names {
    /// AudioFlinger.
    pub const AUDIO: &str = "media.audio_flinger";
    /// CameraService.
    pub const CAMERA: &str = "media.camera";
    /// LocationManagerService.
    pub const LOCATION: &str = "location";
    /// SensorService.
    pub const SENSORS: &str = "sensorservice";

    /// The full Table 1 shared-service list.
    pub const TABLE_1: [&str; 4] = [AUDIO, CAMERA, LOCATION, SENSORS];
}

/// Transaction codes shared by the device services.
pub mod codes {
    /// Open a session with the service (records the caller as a user
    /// of the device).
    pub const CONNECT: u32 = 1;
    /// Close the caller's session.
    pub const DISCONNECT: u32 = 2;
    /// `{i32 container}` → `{i32 n, i32 pid...}`: which processes of
    /// a container currently hold sessions (VDC enforcement).
    pub const QUERY_USERS: u32 = 3;
    /// Service-specific primary operation (capture/sample/etc.).
    pub const OP: u32 = 16;
    /// Secondary operation (e.g. camera stream open, audio play).
    pub const OP2: u32 = 17;
}

/// Common state and checks shared by every device service.
struct ServiceCore {
    /// The service's own process (in the device container).
    own_pid: Pid,
    /// The device class this service gates.
    device: DeviceClass,
    /// VDC policy hook.
    policy: PolicyRef,
    /// Sessions: container → pids with open sessions.
    sessions: BTreeMap<ContainerId, BTreeSet<Pid>>,
}

impl ServiceCore {
    fn new(own_pid: Pid, device: DeviceClass, policy: PolicyRef) -> Self {
        ServiceCore {
            own_pid,
            device,
            policy,
            sessions: BTreeMap::new(),
        }
    }

    /// The paper's extended `checkPermission()`: calling container's
    /// ActivityManager (app grant) + VDC policy (flight state).
    fn check_permission(
        &self,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Result<(), BinderError> {
        // Stage 1: app-level grant via the calling container's
        // ActivityManager, resolved by scoped name from the device
        // container's ServiceManager. Containers without an
        // ActivityManager (the native-Linux flight container) skip
        // this stage; the VDC policy is their sole gate.
        let scoped = scoped_service_name(ACTIVITY_MANAGER, ctx.sender_container);
        let mut lookup = Parcel::new();
        lookup.push_str(scoped);
        match driver.transact(self.own_pid, 0, sm_codes::GET_SERVICE, lookup) {
            Ok(reply) => {
                let am = reply.binder_at(0)?;
                let mut q = Parcel::new();
                q.push_str(self.device.android_permission());
                q.push_i32(ctx.sender_euid.0 as i32);
                let verdict =
                    driver.transact(self.own_pid, am, am_codes::CHECK_PERMISSION, q)?;
                if verdict.i32_at(0)? != PERMISSION_GRANTED {
                    return Err(BinderError::PermissionDenied(
                        "app lacks the Android permission",
                    ));
                }
            }
            Err(BinderError::ServiceNotFound(_)) => {
                // Native container: no ActivityManager registered.
            }
            Err(e) => return Err(e),
        }

        // Stage 2: the VDC flight-state policy.
        if !self
            .policy
            .borrow()
            .allows(ctx.sender_container, self.device)
        {
            return Err(BinderError::PermissionDenied(
                "VDC denies device access in the current flight state",
            ));
        }
        Ok(())
    }

    fn connect(&mut self, ctx: &TransactionContext) {
        self.sessions
            .entry(ctx.sender_container)
            .or_default()
            .insert(ctx.sender_pid);
    }

    fn disconnect(&mut self, ctx: &TransactionContext) {
        if let Some(pids) = self.sessions.get_mut(&ctx.sender_container) {
            pids.remove(&ctx.sender_pid);
            if pids.is_empty() {
                self.sessions.remove(&ctx.sender_container);
            }
        }
    }

    fn query_users(&self, container: ContainerId) -> Parcel {
        let mut reply = Parcel::new();
        match self.sessions.get(&container) {
            Some(pids) => {
                reply.push_i32(pids.len() as i32);
                for pid in pids {
                    reply.push_i32(pid.0 as i32);
                }
            }
            None => {
                reply.push_i32(0);
            }
        }
        reply
    }

    /// Handles the common codes; returns `None` for service-specific
    /// ones.
    fn dispatch_common(
        &mut self,
        code: u32,
        data: &Parcel,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Option<Result<Parcel, BinderError>> {
        match code {
            codes::CONNECT => Some(self.check_permission(ctx, driver).map(|()| {
                self.connect(ctx);
                Parcel::new()
            })),
            codes::DISCONNECT => {
                self.disconnect(ctx);
                Some(Ok(Parcel::new()))
            }
            codes::QUERY_USERS => {
                let container = match data.i32_at(0) {
                    Ok(c) => ContainerId(c as u32),
                    Err(e) => return Some(Err(e)),
                };
                Some(Ok(self.query_users(container)))
            }
            _ => None,
        }
    }
}

/// CameraService: multiplexes the single physical camera.
pub struct CameraService {
    core: ServiceCore,
    board: SharedBoard,
    /// Open frame streams: the owning container and the queue behind
    /// the client's fd. Pumped by [`CameraService::pump_frames`];
    /// streams of containers that lose camera access are closed.
    open_streams: Vec<(ContainerId, std::rc::Rc<std::cell::RefCell<std::collections::VecDeque<bytes::Bytes>>>)>,
}

impl CameraService {
    /// Creates the service (device container only).
    pub fn new(own_pid: Pid, board: SharedBoard, policy: PolicyRef) -> Self {
        CameraService {
            core: ServiceCore::new(own_pid, DeviceClass::Camera, policy),
            board,
            open_streams: Vec::new(),
        }
    }

    /// Captures one frame into every open stream whose owner still
    /// has camera access; streams of revoked containers are closed
    /// (the feed a virtual drone forwards to its user's phone stops
    /// the moment it leaves its waypoint).
    pub fn pump_frames(&mut self) {
        if self.open_streams.is_empty() {
            return;
        }
        let policy = self.core.policy.clone();
        self.open_streams
            .retain(|(container, _)| policy.borrow().allows(*container, DeviceClass::Camera));
        if self.open_streams.is_empty() {
            return;
        }
        let mut board = self.board.borrow_mut();
        let truth = *board.truth.borrow();
        let frame = board.camera.capture(&truth);
        for (_, queue) in &self.open_streams {
            queue.borrow_mut().push_back(frame.data.clone());
        }
    }

    /// Number of currently open streams (diagnostics).
    pub fn open_stream_count(&self) -> usize {
        self.open_streams.len()
    }
}

impl BinderService for CameraService {
    fn on_transact(
        &mut self,
        code: u32,
        data: &Parcel,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        if let Some(r) = self.core.dispatch_common(code, data, ctx, driver) {
            return r;
        }
        match code {
            // OP: capture one frame, returned inline with its geotag.
            codes::OP => {
                self.core.check_permission(ctx, driver)?;
                let mut board = self.board.borrow_mut();
                let truth = *board.truth.borrow();
                let frame = board.camera.capture(&truth);
                let mut reply = Parcel::new();
                reply
                    .push_i64(frame.seq as i64)
                    .push_f64(frame.geotag.latitude)
                    .push_f64(frame.geotag.longitude)
                    .push_f64(frame.geotag.altitude)
                    .push_blob(frame.data);
                Ok(reply)
            }
            // OP2: open a frame stream; returns an fd the client
            // reads frames from (fd passing through Binder).
            codes::OP2 => {
                self.core.check_permission(ctx, driver)?;
                let (file, queue) = new_stream(format!("camera-stream-{}", ctx.sender_pid));
                // Prime the stream with one frame so clients can
                // read immediately, then keep it registered for
                // pumping.
                {
                    let mut board = self.board.borrow_mut();
                    let truth = *board.truth.borrow();
                    let frame = board.camera.capture(&truth);
                    queue.borrow_mut().push_back(frame.data);
                }
                self.open_streams.push((ctx.sender_container, queue));
                let fd = driver.install_fd(self.core.own_pid, file)?;
                let mut reply = Parcel::new();
                reply.push_fd(fd);
                Ok(reply)
            }
            other => Err(BinderError::TransactionFailed(format!(
                "unknown CameraService code {other}"
            ))),
        }
    }
}

/// LocationManagerService: multiplexes the GPS.
pub struct LocationManagerService {
    core: ServiceCore,
    board: SharedBoard,
}

impl LocationManagerService {
    /// Creates the service (device container only).
    pub fn new(own_pid: Pid, board: SharedBoard, policy: PolicyRef) -> Self {
        LocationManagerService {
            core: ServiceCore::new(own_pid, DeviceClass::Gps, policy),
            board,
        }
    }
}

impl BinderService for LocationManagerService {
    fn on_transact(
        &mut self,
        code: u32,
        data: &Parcel,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        if let Some(r) = self.core.dispatch_common(code, data, ctx, driver) {
            return r;
        }
        match code {
            // OP: last known location.
            codes::OP => {
                self.core.check_permission(ctx, driver)?;
                let mut board = self.board.borrow_mut();
                let truth = *board.truth.borrow();
                let rng = &mut board.rng;
                let fix = {
                    let gps = androne_hal::Gps::default();
                    gps.fix(&truth, rng)
                };
                let mut reply = Parcel::new();
                reply
                    .push_f64(fix.position.latitude)
                    .push_f64(fix.position.longitude)
                    .push_f64(fix.position.altitude)
                    .push_f64(fix.ground_speed);
                Ok(reply)
            }
            other => Err(BinderError::TransactionFailed(format!(
                "unknown LocationManagerService code {other}"
            ))),
        }
    }
}

/// SensorService: motion and environmental sensors.
pub struct SensorService {
    core: ServiceCore,
    board: SharedBoard,
}

/// Sensor type selectors for [`SensorService`] `OP` calls (Android
/// sensor type values).
pub mod sensor_types {
    /// TYPE_ACCELEROMETER.
    pub const ACCELEROMETER: i32 = 1;
    /// TYPE_GYROSCOPE.
    pub const GYROSCOPE: i32 = 4;
    /// TYPE_PRESSURE.
    pub const PRESSURE: i32 = 6;
    /// TYPE_MAGNETIC_FIELD (heading).
    pub const MAGNETIC: i32 = 2;
}

impl SensorService {
    /// Creates the service (device container only).
    pub fn new(own_pid: Pid, board: SharedBoard, policy: PolicyRef) -> Self {
        SensorService {
            core: ServiceCore::new(own_pid, DeviceClass::Sensors, policy),
            board,
        }
    }
}

impl BinderService for SensorService {
    fn on_transact(
        &mut self,
        code: u32,
        data: &Parcel,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        if let Some(r) = self.core.dispatch_common(code, data, ctx, driver) {
            return r;
        }
        match code {
            // OP {i32 sensor_type} -> sample values.
            codes::OP => {
                self.core.check_permission(ctx, driver)?;
                let sensor = data.i32_at(0)?;
                let mut board = self.board.borrow_mut();
                let truth = *board.truth.borrow();
                let mut reply = Parcel::new();
                match sensor {
                    sensor_types::ACCELEROMETER => {
                        let s = {
                            let imu = board.imu.clone();
                            imu.sample(&truth, &mut board.rng)
                        };
                        reply.push_f64(s.accel.x).push_f64(s.accel.y).push_f64(s.accel.z);
                    }
                    sensor_types::GYROSCOPE => {
                        let s = {
                            let imu = board.imu.clone();
                            imu.sample(&truth, &mut board.rng)
                        };
                        reply.push_f64(s.gyro.x).push_f64(s.gyro.y).push_f64(s.gyro.z);
                    }
                    sensor_types::PRESSURE => {
                        let baro = board.barometer.clone();
                        reply.push_f64(baro.pressure_pa(&truth, &mut board.rng));
                    }
                    sensor_types::MAGNETIC => {
                        let mag = board.magnetometer.clone();
                        reply.push_f64(mag.heading(&truth, &mut board.rng));
                    }
                    other => {
                        return Err(BinderError::TransactionFailed(format!(
                            "unknown sensor type {other}"
                        )))
                    }
                }
                Ok(reply)
            }
            other => Err(BinderError::TransactionFailed(format!(
                "unknown SensorService code {other}"
            ))),
        }
    }
}

/// AudioFlinger: microphone and speakers.
pub struct AudioFlinger {
    core: ServiceCore,
    board: SharedBoard,
}

impl AudioFlinger {
    /// Creates the service (device container only).
    pub fn new(own_pid: Pid, board: SharedBoard, policy: PolicyRef) -> Self {
        AudioFlinger {
            core: ServiceCore::new(own_pid, DeviceClass::Microphone, policy),
            board,
        }
    }
}

impl BinderService for AudioFlinger {
    fn on_transact(
        &mut self,
        code: u32,
        data: &Parcel,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        if let Some(r) = self.core.dispatch_common(code, data, ctx, driver) {
            return r;
        }
        match code {
            // OP: record one microphone chunk.
            codes::OP => {
                self.core.check_permission(ctx, driver)?;
                let chunk = self.board.borrow_mut().microphone.record_chunk();
                let mut reply = Parcel::new();
                reply.push_blob(chunk);
                Ok(reply)
            }
            // OP2 {blob}: play a chunk through the speaker.
            codes::OP2 => {
                let chunk = data.blob_at(0)?;
                self.board.borrow_mut().speaker.play(&chunk);
                Ok(Parcel::new())
            }
            other => Err(BinderError::TransactionFailed(format!(
                "unknown AudioFlinger code {other}"
            ))),
        }
    }
}

/// Reads all currently queued frames from a camera stream fd.
pub fn read_stream_frames(
    driver: &BinderDriver,
    pid: Pid,
    fd: u32,
) -> Result<Vec<bytes::Bytes>, BinderError> {
    let file = driver.file(pid, fd)?;
    match &file.payload {
        FilePayload::Stream(q) => Ok(q.borrow_mut().drain(..).collect()),
        _ => Err(BinderError::BadFd(fd)),
    }
}
