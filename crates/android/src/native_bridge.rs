//! Native HAL bridge for the flight container.
//!
//! The flight controller runs on real-time Linux, not Android, yet
//! its sensors (GPS, barometer, IMU) are owned by the device
//! container. The paper adds "hardware abstraction layer (HAL)
//! support to the flight container to provide a Binder based bridge
//! between the controller and the device container's device
//! services" (Section 4.3): sensor access rides the NDK path, and a
//! native interface to `LocationManagerService` had to be created
//! because the NDK exposes no GPS API.
//!
//! [`NativeHalBridge`] is that bridge: a native (no ActivityManager)
//! Binder client that resolves the Table 1 services and exposes
//! plain-Rust sensor calls to the flight stack. The device-service
//! permission path treats containers without an ActivityManager as
//! native and gates them on the VDC policy alone — which allows the
//! flight container exactly GPS and sensors.

use androne_simkern::Pid;

use androne_binder::{get_service, BinderDriver, BinderError, Parcel};

use crate::services::{codes, names, sensor_types};

/// A GPS fix as the native bridge returns it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BridgeGpsFix {
    /// Latitude, degrees.
    pub latitude: f64,
    /// Longitude, degrees.
    pub longitude: f64,
    /// Altitude, meters.
    pub altitude: f64,
    /// Ground speed, m/s.
    pub ground_speed: f64,
}

/// An IMU sample as the native bridge returns it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BridgeImuSample {
    /// Specific force, body frame, m/s².
    pub accel: [f64; 3],
    /// Body rates, rad/s.
    pub gyro: [f64; 3],
}

/// The flight container's native Binder bridge.
pub struct NativeHalBridge {
    /// The bridging process (runs inside the flight container).
    pid: Pid,
    location_handle: Option<u32>,
    sensor_handle: Option<u32>,
}

impl NativeHalBridge {
    /// Creates a bridge for a process already opened on the Binder
    /// driver inside the flight container.
    pub fn new(pid: Pid) -> Self {
        NativeHalBridge {
            pid,
            location_handle: None,
            sensor_handle: None,
        }
    }

    fn location(&mut self, driver: &mut BinderDriver) -> Result<u32, BinderError> {
        if let Some(h) = self.location_handle {
            return Ok(h);
        }
        let h = get_service(driver, self.pid, names::LOCATION)?;
        self.location_handle = Some(h);
        Ok(h)
    }

    fn sensors(&mut self, driver: &mut BinderDriver) -> Result<u32, BinderError> {
        if let Some(h) = self.sensor_handle {
            return Ok(h);
        }
        let h = get_service(driver, self.pid, names::SENSORS)?;
        self.sensor_handle = Some(h);
        Ok(h)
    }

    /// Fetches a GPS fix through the device container (the paper's
    /// new native `LocationManagerService` interface).
    pub fn gps_fix(&mut self, driver: &mut BinderDriver) -> Result<BridgeGpsFix, BinderError> {
        let h = self.location(driver)?;
        let reply = driver.transact(self.pid, h, codes::OP, Parcel::new())?;
        Ok(BridgeGpsFix {
            latitude: reply.f64_at(0)?,
            longitude: reply.f64_at(1)?,
            altitude: reply.f64_at(2)?,
            ground_speed: reply.f64_at(3)?,
        })
    }

    /// Fetches barometric pressure (NDK sensor path), pascals.
    pub fn baro_pressure_pa(&mut self, driver: &mut BinderDriver) -> Result<f64, BinderError> {
        let h = self.sensors(driver)?;
        let mut q = Parcel::new();
        q.push_i32(sensor_types::PRESSURE);
        let reply = driver.transact(self.pid, h, codes::OP, q)?;
        reply.f64_at(0)
    }

    /// Fetches one IMU sample (NDK sensor path).
    pub fn imu_sample(&mut self, driver: &mut BinderDriver) -> Result<BridgeImuSample, BinderError> {
        let h = self.sensors(driver)?;
        let mut q = Parcel::new();
        q.push_i32(sensor_types::ACCELEROMETER);
        let acc = driver.transact(self.pid, h, codes::OP, q)?;
        let mut q = Parcel::new();
        q.push_i32(sensor_types::GYROSCOPE);
        let gyr = driver.transact(self.pid, h, codes::OP, q)?;
        Ok(BridgeImuSample {
            accel: [acc.f64_at(0)?, acc.f64_at(1)?, acc.f64_at(2)?],
            gyro: [gyr.f64_at(0)?, gyr.f64_at(1)?, gyr.f64_at(2)?],
        })
    }

    /// Fetches the magnetometer heading, radians.
    pub fn heading(&mut self, driver: &mut BinderDriver) -> Result<f64, BinderError> {
        let h = self.sensors(driver)?;
        let mut q = Parcel::new();
        q.push_i32(sensor_types::MAGNETIC);
        let reply = driver.transact(self.pid, h, codes::OP, q)?;
        reply.f64_at(0)
    }
}
