//! # androne-android
//!
//! The Android Things environment of the AnDrone reproduction: the
//! userspace half of the paper's device-container design (Sections
//! 4.1–4.2, Table 1).
//!
//! - [`policy`]: device classes and the VDC policy hook consulted on
//!   every permission check.
//! - [`activity_manager`]: per-container ActivityManagers with
//!   Android-style `checkPermission`.
//! - [`services`]: the Table 1 device services (AudioFlinger,
//!   CameraService, LocationManagerService, SensorService) running in
//!   the device container against real hardware, with cross-container
//!   permission routing.
//! - [`system_server`]: boots Android instances (device services
//!   enabled only in the device container).
//! - [`app`]: installed apps and the activity-lifecycle save/restore
//!   AnDrone uses to migrate virtual drones.
//! - [`manifest`]: the AnDrone XML manifest (device permissions with
//!   waypoint/continuous access types, user arguments).
//! - [`native_bridge`]: the flight container's Binder HAL bridge to
//!   the device container's GPS and sensors (paper Section 4.3).

pub mod activity_manager;
pub mod app;
pub mod manifest;
pub mod native_bridge;
pub mod policy;
pub mod services;
pub mod system_server;

pub use activity_manager::{
    codes as am_codes, ActivityManager, PERMISSION_DENIED, PERMISSION_GRANTED,
};
pub use app::{AppRegistry, AppState, Bundle, InstalledApp};
pub use manifest::{AccessType, AndroneManifest, ArgumentDecl, DevicePermission, ManifestError};
pub use native_bridge::{BridgeGpsFix, BridgeImuSample, NativeHalBridge};
pub use policy::{AllowAll, DenyAll, DeviceClass, DevicePolicy, PolicyRef};
pub use services::{
    codes as svc_codes, names as svc_names, read_stream_frames, sensor_types, AudioFlinger,
    CameraService, LocationManagerService, SensorService,
};
pub use system_server::{boot_android_instance, AndroidInstance, BootError, SystemServerConfig};
