//! End-to-end device container tests: Table 1 services multiplexed
//! across virtual drone containers, with the paper's two-stage
//! permission routing (calling container's ActivityManager + VDC
//! policy).

use std::cell::RefCell;
use std::rc::Rc;

use androne_android::{
    boot_android_instance, read_stream_frames, sensor_types, svc_codes, svc_names, AllowAll,
    AndroidInstance, DeviceClass, DevicePolicy, SystemServerConfig,
};
use androne_binder::{get_service, BinderDriver, BinderError, Parcel};
use androne_container::DeviceNamespaceId;
use androne_hal::{share, GeoPoint, HardwareBoard, SharedBoard};
use androne_simkern::{ContainerId, Euid, Kernel, KernelConfig, Pid, SchedPolicy};

/// A policy that denies one container's camera access (the VDC
/// between waypoints).
struct DenyCameraFor(ContainerId);

impl DevicePolicy for DenyCameraFor {
    fn allows(&self, container: ContainerId, device: DeviceClass) -> bool {
        !(container == self.0 && device == DeviceClass::Camera)
    }
}

struct TestBoard {
    kernel: Kernel,
    driver: BinderDriver,
    board: SharedBoard,
    device: AndroidInstance,
}

fn boot(policy: androne_android::PolicyRef) -> TestBoard {
    let mut kernel = Kernel::boot(KernelConfig::ANDRONE_DEFAULT, 99);
    let mut driver = BinderDriver::new();
    let board = share(HardwareBoard::new(GeoPoint::new(43.6, -85.8, 12.0), 7));
    let device = boot_android_instance(
        &mut kernel,
        &mut driver,
        ContainerId(1),
        DeviceNamespaceId(1),
        &SystemServerConfig::device_container(),
        Some(board.clone()),
        policy,
    )
    .unwrap();
    TestBoard {
        kernel,
        driver,
        board,
        device,
    }
}

fn boot_vdrone(tb: &mut TestBoard, id: u32) -> AndroidInstance {
    boot_android_instance(
        &mut tb.kernel,
        &mut tb.driver,
        ContainerId(id),
        DeviceNamespaceId(id),
        &SystemServerConfig::virtual_drone(),
        None,
        Rc::new(RefCell::new(AllowAll)),
    )
    .unwrap()
}

/// Spawns an app process in a container and opens Binder for it.
fn spawn_app(tb: &mut TestBoard, container: ContainerId, euid: Euid) -> Pid {
    let pid = tb
        .kernel
        .tasks
        .spawn("app", euid, container, SchedPolicy::DEFAULT)
        .unwrap();
    tb.driver
        .open(pid, euid, container, DeviceNamespaceId(container.0));
    pid
}

/// Grants an app a device permission in its container's AM.
fn grant(vd: &AndroidInstance, package: &str, euid: Euid, device: DeviceClass) {
    let mut am = vd.activity_manager.borrow_mut();
    am.register_app(package, euid);
    am.grant(package, device.android_permission());
}

#[test]
fn app_in_vdrone_captures_camera_frame_through_device_container() {
    let mut tb = boot(Rc::new(RefCell::new(AllowAll)));
    let vd = boot_vdrone(&mut tb, 10);
    let euid = Euid(10_050);
    let app = spawn_app(&mut tb, vd.container, euid);
    grant(&vd, "com.example.survey", euid, DeviceClass::Camera);

    let cam = get_service(&mut tb.driver, app, svc_names::CAMERA).unwrap();
    let reply = tb
        .driver
        .transact(app, cam, svc_codes::OP, Parcel::new())
        .unwrap();
    assert_eq!(reply.i64_at(0).unwrap(), 1, "first frame");
    assert!((reply.f64_at(1).unwrap() - 43.6).abs() < 1e-9, "geotag");
    let payload = reply.blob_at(4).unwrap();
    assert!(std::str::from_utf8(&payload).unwrap().starts_with("JPEG"));
}

#[test]
fn app_without_android_permission_is_denied() {
    let mut tb = boot(Rc::new(RefCell::new(AllowAll)));
    let vd = boot_vdrone(&mut tb, 10);
    let euid = Euid(10_051);
    let app = spawn_app(&mut tb, vd.container, euid);
    // App registered but no camera grant.
    vd.activity_manager
        .borrow_mut()
        .register_app("com.example.nogrant", euid);

    let cam = get_service(&mut tb.driver, app, svc_names::CAMERA).unwrap();
    let err = tb
        .driver
        .transact(app, cam, svc_codes::OP, Parcel::new())
        .unwrap_err();
    assert!(matches!(err, BinderError::PermissionDenied(_)), "{err}");
}

#[test]
fn vdc_policy_denies_between_waypoints() {
    let vd_container = ContainerId(10);
    let mut tb = boot(Rc::new(RefCell::new(DenyCameraFor(vd_container))));
    let vd = boot_vdrone(&mut tb, 10);
    let euid = Euid(10_052);
    let app = spawn_app(&mut tb, vd.container, euid);
    grant(&vd, "com.example.survey", euid, DeviceClass::Camera);
    grant(&vd, "com.example.survey", euid, DeviceClass::Gps);

    // Camera: denied by the VDC despite the app-level grant.
    let cam = get_service(&mut tb.driver, app, svc_names::CAMERA).unwrap();
    assert!(matches!(
        tb.driver.transact(app, cam, svc_codes::OP, Parcel::new()),
        Err(BinderError::PermissionDenied(_))
    ));

    // GPS: allowed (the policy only blocks the camera).
    let loc = get_service(&mut tb.driver, app, svc_names::LOCATION).unwrap();
    let fix = tb
        .driver
        .transact(app, loc, svc_codes::OP, Parcel::new())
        .unwrap();
    assert!((fix.f64_at(0).unwrap() - 43.6).abs() < 0.01);
}

#[test]
fn two_vdrones_share_the_camera_service() {
    let mut tb = boot(Rc::new(RefCell::new(AllowAll)));
    let vd_a = boot_vdrone(&mut tb, 10);
    let vd_b = boot_vdrone(&mut tb, 11);
    let (ea, eb) = (Euid(10_060), Euid(10_061));
    let app_a = spawn_app(&mut tb, vd_a.container, ea);
    let app_b = spawn_app(&mut tb, vd_b.container, eb);
    grant(&vd_a, "a.app", ea, DeviceClass::Camera);
    grant(&vd_b, "b.app", eb, DeviceClass::Camera);

    let cam_a = get_service(&mut tb.driver, app_a, svc_names::CAMERA).unwrap();
    let cam_b = get_service(&mut tb.driver, app_b, svc_names::CAMERA).unwrap();
    let f1 = tb
        .driver
        .transact(app_a, cam_a, svc_codes::OP, Parcel::new())
        .unwrap();
    let f2 = tb
        .driver
        .transact(app_b, cam_b, svc_codes::OP, Parcel::new())
        .unwrap();
    // One physical camera: frame sequence numbers interleave.
    assert_eq!(f1.i64_at(0).unwrap(), 1);
    assert_eq!(f2.i64_at(0).unwrap(), 2);
}

#[test]
fn camera_stream_fd_crosses_containers() {
    let mut tb = boot(Rc::new(RefCell::new(AllowAll)));
    let vd = boot_vdrone(&mut tb, 10);
    let euid = Euid(10_070);
    let app = spawn_app(&mut tb, vd.container, euid);
    grant(&vd, "stream.app", euid, DeviceClass::Camera);

    let cam = get_service(&mut tb.driver, app, svc_names::CAMERA).unwrap();
    let reply = tb
        .driver
        .transact(app, cam, svc_codes::OP2, Parcel::new())
        .unwrap();
    let fd = reply.fd_at(0).unwrap();
    // The fd is valid in the *app's* table after translation.
    let frames = read_stream_frames(&tb.driver, app, fd).unwrap();
    assert_eq!(frames.len(), 1);
    assert!(std::str::from_utf8(&frames[0]).unwrap().starts_with("JPEG"));
}

#[test]
fn sensor_service_serves_all_sensor_types() {
    let mut tb = boot(Rc::new(RefCell::new(AllowAll)));
    let vd = boot_vdrone(&mut tb, 10);
    let euid = Euid(10_080);
    let app = spawn_app(&mut tb, vd.container, euid);
    grant(&vd, "sensors.app", euid, DeviceClass::Sensors);

    let svc = get_service(&mut tb.driver, app, svc_names::SENSORS).unwrap();
    for (sensor, n_values) in [
        (sensor_types::ACCELEROMETER, 3),
        (sensor_types::GYROSCOPE, 3),
        (sensor_types::PRESSURE, 1),
        (sensor_types::MAGNETIC, 1),
    ] {
        let mut p = Parcel::new();
        p.push_i32(sensor);
        let reply = tb.driver.transact(app, svc, svc_codes::OP, p).unwrap();
        assert_eq!(reply.len(), n_values, "sensor {sensor}");
    }
    // At rest the accelerometer reads ~-g on body z.
    let mut p = Parcel::new();
    p.push_i32(sensor_types::ACCELEROMETER);
    let reply = tb.driver.transact(app, svc, svc_codes::OP, p).unwrap();
    assert!((reply.f64_at(2).unwrap() + 9.8).abs() < 1.0);
}

#[test]
fn audio_records_and_plays_through_the_device_container() {
    let mut tb = boot(Rc::new(RefCell::new(AllowAll)));
    let vd = boot_vdrone(&mut tb, 10);
    let euid = Euid(10_090);
    let app = spawn_app(&mut tb, vd.container, euid);
    grant(&vd, "audio.app", euid, DeviceClass::Microphone);

    let audio = get_service(&mut tb.driver, app, svc_names::AUDIO).unwrap();
    let rec = tb
        .driver
        .transact(app, audio, svc_codes::OP, Parcel::new())
        .unwrap();
    let chunk = rec.blob_at(0).unwrap();
    assert!(std::str::from_utf8(&chunk).unwrap().starts_with("PCM16"));

    let mut play = Parcel::new();
    play.push_blob(chunk);
    tb.driver.transact(app, audio, svc_codes::OP2, play).unwrap();
    assert_eq!(tb.board.borrow().speaker.chunks_played(), 1);
}

#[test]
fn query_users_reports_sessions_for_vdc_enforcement() {
    let mut tb = boot(Rc::new(RefCell::new(AllowAll)));
    let vd = boot_vdrone(&mut tb, 10);
    let euid = Euid(10_100);
    let app = spawn_app(&mut tb, vd.container, euid);
    grant(&vd, "cam.app", euid, DeviceClass::Camera);

    let cam = get_service(&mut tb.driver, app, svc_names::CAMERA).unwrap();
    tb.driver
        .transact(app, cam, svc_codes::CONNECT, Parcel::new())
        .unwrap();

    // The VDC (device container side) asks who is using the camera.
    let dev_pid = tb.device.system_server_pid;
    let cam_from_dev = get_service(&mut tb.driver, dev_pid, svc_names::CAMERA).unwrap();
    let mut q = Parcel::new();
    q.push_i32(vd.container.0 as i32);
    let reply = tb
        .driver
        .transact(dev_pid, cam_from_dev, svc_codes::QUERY_USERS, q)
        .unwrap();
    assert_eq!(reply.i32_at(0).unwrap(), 1);
    assert_eq!(reply.i32_at(1).unwrap(), app.0 as i32);

    // After disconnect, no sessions remain.
    tb.driver
        .transact(app, cam, svc_codes::DISCONNECT, Parcel::new())
        .unwrap();
    let mut q = Parcel::new();
    q.push_i32(vd.container.0 as i32);
    let reply = tb
        .driver
        .transact(dev_pid, cam_from_dev, svc_codes::QUERY_USERS, q)
        .unwrap();
    assert_eq!(reply.i32_at(0).unwrap(), 0);
}

#[test]
fn table_1_services_visible_in_every_vdrone() {
    let mut tb = boot(Rc::new(RefCell::new(AllowAll)));
    for id in [10, 11, 12] {
        let vd = boot_vdrone(&mut tb, id);
        let app = spawn_app(&mut tb, vd.container, Euid(10_110 + id));
        for name in svc_names::TABLE_1 {
            assert!(
                get_service(&mut tb.driver, app, name).is_ok(),
                "{name} missing in vdrone {id}"
            );
        }
    }
}
