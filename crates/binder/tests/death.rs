//! Death-notification (`linkToDeath`) tests: how clients learn that
//! a service they depend on has died.

use std::cell::RefCell;
use std::rc::Rc;

use androne_binder::{
    BinderDriver, BinderError, BinderService, Parcel, TransactionContext,
};
use androne_container::DeviceNamespaceId;
use androne_simkern::{ContainerId, Euid, Pid};

struct Null;

impl BinderService for Null {
    fn on_transact(
        &mut self,
        _code: u32,
        _data: &Parcel,
        _ctx: &TransactionContext,
        _driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        Ok(Parcel::new())
    }
}

fn setup() -> (BinderDriver, Pid, Pid, u32) {
    let mut d = BinderDriver::new();
    let server = Pid(10);
    let client = Pid(20);
    d.open(server, Euid(1000), ContainerId(1), DeviceNamespaceId(1));
    d.open(client, Euid(10_000), ContainerId(2), DeviceNamespaceId(2));
    let server_handle = d.create_node(server, Rc::new(RefCell::new(Null))).unwrap();

    // Distribute the handle as AnDrone does: the server's namespace
    // is the device container; the service is published into the
    // client's namespace via PUBLISH_TO_ALL_NS and resolved through
    // the client's own ServiceManager.
    use androne_binder::{add_service, get_service, ServiceManager};
    d.set_device_container(ContainerId(1), DeviceNamespaceId(1));
    let sm = ServiceManager::new_device_container(server, ["svc".to_string()]);
    let smh = d.create_node(server, Rc::new(RefCell::new(sm))).unwrap();
    d.set_context_manager(server, smh).unwrap();
    let sm2_pid = Pid(21);
    d.open(sm2_pid, Euid(1000), ContainerId(2), DeviceNamespaceId(2));
    let sm2 = ServiceManager::new(sm2_pid);
    let smh2 = d.create_node(sm2_pid, Rc::new(RefCell::new(sm2))).unwrap();
    d.set_context_manager(sm2_pid, smh2).unwrap();
    add_service(&mut d, server, "svc", server_handle).unwrap();
    let client_handle = get_service(&mut d, client, "svc").unwrap();
    (d, server, client, client_handle)
}

#[test]
fn watcher_is_notified_when_the_node_dies() {
    let (mut d, server, client, handle) = setup();
    d.link_to_death(client, handle).unwrap();
    assert!(d.poll_death_notifications(client).is_empty());
    d.kill_process(server);
    assert_eq!(d.poll_death_notifications(client), vec![handle]);
    // The queue drains once.
    assert!(d.poll_death_notifications(client).is_empty());
}

#[test]
fn unlinked_clients_get_no_notification() {
    let (mut d, server, client, _) = setup();
    d.kill_process(server);
    assert!(d.poll_death_notifications(client).is_empty());
}

#[test]
fn linking_to_a_dead_node_fails_fast() {
    let (mut d, server, client, handle) = setup();
    d.kill_process(server);
    assert_eq!(
        d.link_to_death(client, handle),
        Err(BinderError::DeadObject)
    );
}

#[test]
fn double_kill_notifies_once() {
    let (mut d, server, client, handle) = setup();
    d.link_to_death(client, handle).unwrap();
    d.kill_process(server);
    d.kill_process(server);
    assert_eq!(d.poll_death_notifications(client).len(), 1);
}
