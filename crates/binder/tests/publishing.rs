//! End-to-end tests of the paper's Figure 6 flows: device-container
//! service publishing (`PUBLISH_TO_ALL_NS`) and per-container
//! ActivityManager forwarding (`PUBLISH_TO_DEV_CON`).

use std::cell::RefCell;
use std::rc::Rc;

use androne_binder::{
    add_service, get_service, scoped_service_name, sm_codes, BinderDriver, BinderError,
    BinderService, Parcel, ServiceManager, TransactionContext, ACTIVITY_MANAGER,
};
use androne_container::DeviceNamespaceId;
use androne_simkern::{ContainerId, Euid, Pid};

/// A stand-in device service that replies with its own tag and the
/// sender's container id.
struct TagService(&'static str);

impl BinderService for TagService {
    fn on_transact(
        &mut self,
        _code: u32,
        _data: &Parcel,
        ctx: &TransactionContext,
        _driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        let mut reply = Parcel::new();
        reply.push_str(self.0);
        reply.push_i32(ctx.sender_container.0 as i32);
        Ok(reply)
    }
}

/// Test fixture: a board with a device container and helpers to add
/// virtual drone containers.
struct Board {
    driver: BinderDriver,
    dev_sm_pid: Pid,
    next_pid: u32,
    next_ctr: u32,
}

impl Board {
    fn new(shared: &[&str]) -> Self {
        let mut driver = BinderDriver::new();
        let dev_container = ContainerId(1);
        let dev_ns = DeviceNamespaceId(1);
        driver.set_device_container(dev_container, dev_ns);

        let dev_sm_pid = Pid(100);
        driver.open(dev_sm_pid, Euid(1000), dev_container, dev_ns);
        let sm = ServiceManager::new_device_container(
            dev_sm_pid,
            shared.iter().map(|s| s.to_string()),
        );
        let sm_handle = driver
            .create_node(dev_sm_pid, Rc::new(RefCell::new(sm)))
            .unwrap();
        driver.set_context_manager(dev_sm_pid, sm_handle).unwrap();

        Board {
            driver,
            dev_sm_pid,
            next_pid: 200,
            next_ctr: 10,
        }
    }

    /// Boots a virtual drone container: opens a ServiceManager and
    /// registers it as the namespace's Context Manager.
    fn boot_vdrone(&mut self) -> (ContainerId, Pid) {
        let ctr = ContainerId(self.next_ctr);
        let ns = DeviceNamespaceId(self.next_ctr);
        self.next_ctr += 1;
        let sm_pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.driver.open(sm_pid, Euid(1000), ctr, ns);
        let sm = ServiceManager::new(sm_pid);
        let handle = self
            .driver
            .create_node(sm_pid, Rc::new(RefCell::new(sm)))
            .unwrap();
        self.driver.set_context_manager(sm_pid, handle).unwrap();
        (ctr, sm_pid)
    }

    /// Spawns an app process inside an existing container.
    fn spawn_app(&mut self, ctr: ContainerId) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.driver
            .open(pid, Euid(10_000 + pid.0), ctr, DeviceNamespaceId(ctr.0));
        pid
    }

    /// Registers a device service in the device container.
    fn register_device_service(&mut self, name: &str, tag: &'static str) {
        let svc_pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.driver
            .open(svc_pid, Euid(1000), ContainerId(1), DeviceNamespaceId(1));
        let handle = self
            .driver
            .create_node(svc_pid, Rc::new(RefCell::new(TagService(tag))))
            .unwrap();
        add_service(&mut self.driver, svc_pid, name, handle).unwrap();
    }
}

#[test]
fn shared_service_is_published_to_existing_namespaces() {
    let mut board = Board::new(&["sensorservice"]);
    let (vd_ctr, _) = board.boot_vdrone();
    board.register_device_service("sensorservice", "sensors");

    // An app inside the virtual drone can resolve and call the
    // device container's service through its own ServiceManager.
    let app = board.spawn_app(vd_ctr);
    let handle = get_service(&mut board.driver, app, "sensorservice").unwrap();
    let reply = board.driver.transact(app, handle, 7, Parcel::new()).unwrap();
    assert_eq!(reply.str_at(0).unwrap(), "sensors");
    assert_eq!(
        reply.i32_at(1).unwrap(),
        vd_ctr.0 as i32,
        "device service sees the calling container id"
    );
}

#[test]
fn shared_service_is_replayed_into_future_namespaces() {
    let mut board = Board::new(&["camera"]);
    board.register_device_service("camera", "camera");

    // The virtual drone boots *after* the service was published.
    let (vd_ctr, _) = board.boot_vdrone();
    let app = board.spawn_app(vd_ctr);
    let handle = get_service(&mut board.driver, app, "camera").unwrap();
    let reply = board.driver.transact(app, handle, 1, Parcel::new()).unwrap();
    assert_eq!(reply.str_at(0).unwrap(), "camera");
}

#[test]
fn non_shared_services_stay_private_to_the_device_container() {
    let mut board = Board::new(&["camera"]);
    board.register_device_service("surfaceflinger", "private");
    let (vd_ctr, _) = board.boot_vdrone();
    let app = board.spawn_app(vd_ctr);
    assert!(matches!(
        get_service(&mut board.driver, app, "surfaceflinger"),
        Err(BinderError::ServiceNotFound(_))
    ));
}

#[test]
fn vdrone_services_are_isolated_from_each_other() {
    let mut board = Board::new(&[]);
    let (ctr_a, _) = board.boot_vdrone();
    let (ctr_b, _) = board.boot_vdrone();

    // Container A registers a private service.
    let svc_pid = board.spawn_app(ctr_a);
    let handle = board
        .driver
        .create_node(svc_pid, Rc::new(RefCell::new(TagService("a-private"))))
        .unwrap();
    add_service(&mut board.driver, svc_pid, "a.service", handle).unwrap();

    // Visible inside A.
    let app_a = board.spawn_app(ctr_a);
    assert!(get_service(&mut board.driver, app_a, "a.service").is_ok());

    // Invisible inside B: each namespace has its own Context Manager.
    let app_b = board.spawn_app(ctr_b);
    assert!(matches!(
        get_service(&mut board.driver, app_b, "a.service"),
        Err(BinderError::ServiceNotFound(_))
    ));
}

#[test]
fn activity_manager_is_forwarded_to_device_container() {
    let mut board = Board::new(&[]);
    let (vd_ctr, _) = board.boot_vdrone();

    // The virtual drone's ActivityManager registers locally; its
    // ServiceManager forwards it via PUBLISH_TO_DEV_CON.
    let am_pid = board.spawn_app(vd_ctr);
    let am_handle = board
        .driver
        .create_node(am_pid, Rc::new(RefCell::new(TagService("vd-am"))))
        .unwrap();
    add_service(&mut board.driver, am_pid, ACTIVITY_MANAGER, am_handle).unwrap();

    // A device-container process can now resolve the *scoped* name.
    let scoped = scoped_service_name(ACTIVITY_MANAGER, vd_ctr);
    let handle = get_service(&mut board.driver, board.dev_sm_pid, &scoped).unwrap();
    let reply = board
        .driver
        .transact(board.dev_sm_pid, handle, 1, Parcel::new())
        .unwrap();
    assert_eq!(reply.str_at(0).unwrap(), "vd-am");
}

#[test]
fn publish_to_all_ns_is_restricted_to_the_device_container() {
    let mut board = Board::new(&[]);
    let (vd_ctr, _) = board.boot_vdrone();
    let evil = board.spawn_app(vd_ctr);
    let handle = board
        .driver
        .create_node(evil, Rc::new(RefCell::new(TagService("evil"))))
        .unwrap();
    assert!(matches!(
        board.driver.publish_to_all_ns(evil, "sensorservice", handle),
        Err(BinderError::PermissionDenied(_))
    ));
}

#[test]
fn second_context_manager_in_a_namespace_is_rejected() {
    let mut board = Board::new(&[]);
    let (vd_ctr, _) = board.boot_vdrone();
    let usurper = board.spawn_app(vd_ctr);
    let handle = board
        .driver
        .create_node(usurper, Rc::new(RefCell::new(TagService("fake-sm"))))
        .unwrap();
    assert_eq!(
        board.driver.set_context_manager(usurper, handle),
        Err(BinderError::ContextManagerExists)
    );
}

#[test]
fn list_services_reflects_publishing() {
    let mut board = Board::new(&["gps", "camera"]);
    board.register_device_service("gps", "gps");
    let (vd_ctr, _) = board.boot_vdrone();
    board.register_device_service("camera", "camera");

    let app = board.spawn_app(vd_ctr);
    let reply = board
        .driver
        .transact(app, 0, sm_codes::LIST_SERVICES, Parcel::new())
        .unwrap();
    let n = reply.i32_at(0).unwrap() as usize;
    let names: Vec<&str> = (0..n).map(|i| reply.str_at(1 + i).unwrap()).collect();
    assert!(names.contains(&"gps"), "replayed service listed: {names:?}");
    assert!(names.contains(&"camera"), "published service listed: {names:?}");
}
