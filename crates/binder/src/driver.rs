//! The Binder driver.
//!
//! This is the reproduction of the paper's central kernel
//! modification set (Section 4.1–4.2):
//!
//! - **Device-namespaced Context Managers.** Vanilla Binder allows one
//!   Context Manager (handle 0). AnDrone adds device namespaces so
//!   each container's ServiceManager can register as *its* namespace's
//!   Context Manager, isolating every container's service registry.
//! - **`PUBLISH_TO_ALL_NS`.** Callable only from the device container:
//!   registers one of its services into every other namespace's
//!   ServiceManager (and, via replay, into namespaces created later).
//! - **`PUBLISH_TO_DEV_CON`.** Callable from any container: registers
//!   that container's ActivityManager into the device container's
//!   ServiceManager under a name suffixed with the container id, so
//!   shared device services can route permission checks back to the
//!   *calling* container's ActivityManager.
//! - **Container id in transaction data.** Every transaction carries
//!   the sender's PID, EUID, and — the paper's small addition —
//!   container identifier.
//!
//! Transactions are synchronous: the driver routes a parcel to the
//! target node's handler, translating binder references and file
//! descriptors between per-process tables in flight.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use androne_container::DeviceNamespaceId;
use androne_obs::{ObsHandle, Subsystem, TraceEvent};
use androne_simkern::{refill_jitter_ns, ContainerId, Euid, Pid, SimDuration, StateHash, StateHasher};

use crate::error::BinderError;
use crate::fd::FileRef;
use crate::parcel::{PValue, Parcel};

/// The PID the driver reports for kernel-originated registrations
/// (the `PUBLISH_*` ioctl paths).
pub const KERNEL_PID: Pid = Pid(0);

/// Global node identifier (kernel-side identity of a binder object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

/// Context passed to a service alongside each transaction.
///
/// Mirrors `binder_transaction_data`: sender PID and EUID, plus
/// AnDrone's addition of the sender's container identifier.
#[derive(Debug, Clone, Copy)]
pub struct TransactionContext {
    /// Sending process.
    pub sender_pid: Pid,
    /// Sending process's effective UID.
    pub sender_euid: Euid,
    /// Sending process's container (AnDrone's addition).
    pub sender_container: ContainerId,
}

impl TransactionContext {
    /// The kernel's own context, used for ioctl-originated calls.
    pub const KERNEL: TransactionContext = TransactionContext {
        sender_pid: KERNEL_PID,
        sender_euid: Euid(0),
        sender_container: ContainerId::HOST,
    };
}

/// A Binder service implementation: the userspace side of a node.
pub trait BinderService {
    /// Handles one transaction, returning the reply parcel.
    ///
    /// Handles and fds inside `data` are already valid in this
    /// service's process; handles and fds pushed into the reply must
    /// be valid in this service's process and are translated for the
    /// caller by the driver.
    fn on_transact(
        &mut self,
        code: u32,
        data: &Parcel,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError>;
}

/// Shared handler reference stored on a node.
pub type ServiceRef = Rc<RefCell<dyn BinderService>>;

struct Node {
    owner: Pid,
    handler: ServiceRef,
    alive: bool,
}

/// Sentinel in the node→handle and translation-cache slabs meaning
/// "no handle yet" (real handles start at 1; 0 is the Context Manager
/// alias and is never cached).
const NO_HANDLE: u32 = 0;

struct ProcState {
    euid: Euid,
    container: ContainerId,
    device_ns: DeviceNamespaceId,
    /// handle -> node, indexed by handle number. Handle 0 is
    /// reserved for the Context Manager, so slot 0 stays `None`.
    /// Handles are allocated densely and never freed, which keeps
    /// the table a flat slab: resolution is one bounds-checked load
    /// instead of a tree walk.
    handles: Vec<Option<NodeId>>,
    /// Reverse slab: node id -> handle (`NO_HANDLE` = none), keeping
    /// handle allocation stable per node. Node ids are dense
    /// (allocated sequentially by the driver), so indexing by
    /// `NodeId.0` wastes at most slot 0.
    by_node: Vec<u32>,
    next_handle: u32,
    /// fd -> open file, indexed by fd number. fds 0-2 are reserved.
    fds: Vec<Option<FileRef>>,
    next_fd: u32,
    alive: bool,
    /// Handles whose nodes died while a death link was registered
    /// (drained by `poll_death_notifications`).
    death_queue: Vec<u32>,
}

impl ProcState {
    fn handle_for(&self, node: NodeId) -> Option<u32> {
        match self.by_node.get(node.0 as usize) {
            Some(&h) if h != NO_HANDLE => Some(h),
            _ => None,
        }
    }

    fn node_for(&self, handle: u32) -> Option<NodeId> {
        self.handles.get(handle as usize).copied().flatten()
    }

    fn insert_handle(&mut self, node: NodeId) -> u32 {
        if let Some(h) = self.handle_for(node) {
            return h;
        }
        let h = self.next_handle;
        self.next_handle += 1;
        if self.handles.len() <= h as usize {
            self.handles.resize(h as usize + 1, None);
        }
        self.handles[h as usize] = Some(node);
        let idx = node.0 as usize;
        if self.by_node.len() <= idx {
            self.by_node.resize(idx + 1, NO_HANDLE);
        }
        self.by_node[idx] = h;
        h
    }

    fn file_for(&self, fd: u32) -> Option<&FileRef> {
        self.fds.get(fd as usize).and_then(|f| f.as_ref())
    }

    fn insert_fd(&mut self, file: FileRef) -> u32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        if self.fds.len() <= fd as usize {
            self.fds.resize(fd as usize + 1, None);
        }
        self.fds[fd as usize] = Some(file);
        fd
    }
}

/// Per-parcel checkout of the fd tables involved in translation (the
/// fd-side sibling of the handle translation-cache slab checkout):
/// `translate_values` takes the source and destination processes' fd
/// slabs out of the proc map once per fd-bearing parcel, runs every
/// fd against the local vectors, and restores them on exit. While
/// checked out, the owning `ProcState`s hold empty fd tables —
/// nothing else reads them mid-parcel (transactions are synchronous
/// and non-reentrant through translation).
struct FdSlabCheckout {
    from: Pid,
    to: Pid,
    /// Source fd table; `None` when `from == to` (lookups then
    /// resolve against `dst`, which *is* the source table).
    src: Option<Vec<Option<FileRef>>>,
    dst: Vec<Option<FileRef>>,
    next_fd: u32,
}

impl FdSlabCheckout {
    /// Resolves `fd` in the source table and installs the file in
    /// the destination table, mirroring `ProcState::file_for` +
    /// `ProcState::insert_fd` exactly.
    fn translate(&mut self, fd: u32) -> Result<u32, BinderError> {
        let file = match &self.src {
            Some(src) => src.get(fd as usize).and_then(|f| f.as_ref()),
            None => self.dst.get(fd as usize).and_then(|f| f.as_ref()),
        }
        .cloned()
        .ok_or(BinderError::BadFd(fd))?;
        let new_fd = self.next_fd;
        self.next_fd += 1;
        if self.dst.len() <= new_fd as usize {
            self.dst.resize(new_fd as usize + 1, None);
        }
        self.dst[new_fd as usize] = Some(file);
        Ok(new_fd)
    }
}

/// Counters for the evaluation ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverStats {
    /// Total transactions routed.
    pub transactions: u64,
    /// Transactions whose sender and target were in different
    /// containers (the device-container indirection path).
    pub cross_container: u64,
    /// Total parcel payload bytes moved.
    pub payload_bytes: u64,
}

/// Cost model for one transaction on Cortex-A53-class hardware:
/// two context switches plus a copy of the payload.
pub fn transaction_cost(wire_size: usize) -> SimDuration {
    // ~32 us fixed (measured binder round-trips on ARM SBCs run tens
    // of microseconds) + ~0.4 ns/byte copy cost.
    SimDuration::from_nanos(32_000 + (wire_size as u64 * 2) / 5)
}

/// Bucket bounds for the `binder.latency_ns` histogram,
/// sim-nanoseconds. The floor bucket sits at the fixed 32 us
/// round-trip cost; the tail resolves large-payload copies.
pub const BINDER_LATENCY_BOUNDS: &[u64] = &[
    32_000, 33_000, 35_000, 40_000, 50_000, 75_000, 100_000, 250_000, 1_000_000,
];

/// Per-tenant QoS budget. Entirely opt-in: a tenant without a budget
/// is unlimited, and a driver with no budgets configured runs the
/// exact pre-QoS code path (and hashes identically to it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQos {
    /// Token-bucket refill: transactions admitted per sim-second.
    pub rate_per_s: u64,
    /// Token-bucket capacity (burst headroom).
    pub burst: u64,
    /// Per-transaction parcel size ceiling, bytes.
    pub max_parcel_bytes: u64,
    /// File descriptors one tenant may install, lifetime total.
    pub max_fds: u32,
    /// Concurrent telemetry subscriptions one tenant may hold.
    pub max_subscriptions: u32,
}

impl TenantQos {
    /// A budget generous enough that well-behaved tenants (telemetry
    /// at MAVLink rates, a camera stream, waypoint traffic) never
    /// notice it, while floods, bombs, and storms trip it within one
    /// observer tick.
    pub const DEFENSIVE_DEFAULT: TenantQos = TenantQos {
        rate_per_s: 120,
        burst: 240,
        max_parcel_bytes: 65_536,
        max_fds: 256,
        max_subscriptions: 32,
    };
}

/// Aggregate (all-tenant) admission pressure cap: one token bucket
/// shared by every *budgeted* tenant, charged after the per-tenant
/// bucket admits. Per-tenant budgets bound each attacker alone;
/// this bounds what colluding attackers can admit *together* —
/// tenants that rotate or synchronize bursts so that no individual
/// bucket rejects still cannot push the aggregate admitted load
/// past the cap. Unbudgeted (trusted mission) traffic is never
/// charged, so the cap cannot be weaponized to starve victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateQos {
    /// Aggregate token-bucket refill: admissions per sim-second
    /// across all budgeted tenants.
    pub rate_per_s: u64,
    /// Aggregate bucket capacity (the hard per-tick admission
    /// ceiling, which bounds the kernel interference any admitted
    /// adversarial load can generate).
    pub burst: u64,
}

impl AggregateQos {
    /// The hardened default: roomy enough for one well-behaved
    /// budgeted tenant at [`TenantQos::DEFENSIVE_DEFAULT`] rates,
    /// tight enough that the worst admitted burst keeps the
    /// admitted-load interference ceiling under the 2500 µs
    /// fast-loop deadline (see
    /// `androne_simkern::latency::profiles::attack_admitted`).
    pub const HARDENED_DEFAULT: AggregateQos = AggregateQos {
        rate_per_s: 200,
        burst: 300,
    };
}

/// Runtime state for the aggregate admission bucket.
#[derive(Debug, Clone)]
struct AggregateState {
    cfg: AggregateQos,
    tokens: u64,
    last_refill_ns: u64,
}

impl AggregateState {
    /// Plain whole-second refill (the defender's own bucket carries
    /// no jitter; only per-tenant refill boundaries are jittered).
    fn refill(&mut self, now_ns: u64) {
        const NANOS_PER_SEC: u64 = 1_000_000_000;
        let whole_s = now_ns.saturating_sub(self.last_refill_ns) / NANOS_PER_SEC;
        if whole_s > 0 {
            self.tokens = self
                .tokens
                .saturating_add(whole_s.saturating_mul(self.cfg.rate_per_s))
                .min(self.cfg.burst);
            self.last_refill_ns += whole_s * NANOS_PER_SEC;
        }
    }
}

/// Runtime QoS state for one budgeted tenant.
#[derive(Debug, Clone)]
struct TenantQosState {
    cfg: TenantQos,
    /// The budget as originally armed, before any escalation-ladder
    /// halving — what [`BinderDriver::restore_tenant_rate`] steps
    /// back to when the hysteresis decay walks a quiet tenant down.
    base: TenantQos,
    /// Tokens currently in the bucket.
    tokens: u64,
    /// Sim time of the last whole-second refill.
    last_refill_ns: u64,
    /// File descriptors installed so far.
    fds_installed: u32,
    /// Telemetry subscriptions currently held.
    subscriptions: u32,
    /// Whether the tenant is currently in the throttled state (edge
    /// detection for the `BinderThrottle` trace event).
    throttled: bool,
    /// Total admissions rejected for this tenant.
    throttle_events: u64,
}

/// Upper bound on the per-epoch refill-boundary jitter. 1.5 sim
/// seconds — deliberately *longer* than the refill period, so at the
/// 1 Hz granularity an attacker can observe (ticks), the visible
/// refill quantum per tick wobbles between zero, one, and two
/// quanta. A sub-second jitter would shift the boundary within a
/// tick and change nothing a tick-granular prober can see.
const REFILL_JITTER_MAX_NS: u64 = 1_500_000_000;

impl TenantQosState {
    /// Lazily refills the token bucket for whole elapsed sim-seconds.
    /// Integer-only, so refill is a pure function of `(cfg, last
    /// refill, now)` — no float drift across thread widths.
    fn refill(&mut self, now_ns: u64) {
        const NANOS_PER_SEC: u64 = 1_000_000_000;
        let whole_s = now_ns.saturating_sub(self.last_refill_ns) / NANOS_PER_SEC;
        if whole_s > 0 {
            self.tokens = self
                .tokens
                .saturating_add(whole_s.saturating_mul(self.cfg.rate_per_s))
                .min(self.cfg.burst);
            self.last_refill_ns += whole_s * NANOS_PER_SEC;
        }
    }

    /// Jittered refill: epochs stay on the absolute-second grid, but
    /// epoch `e` only pays out once `e*1s + jitter(seed, tenant, e)`
    /// has passed. Epochs are processed in index order and the scan
    /// stops at the first not-yet-due epoch, so the refill remains a
    /// pure function of `(cfg, seed, tenant, now)` — identical on
    /// every same-seed run — while the *cadence* an adaptive tenant
    /// observes through its own admissions is no longer learnable.
    fn refill_jittered(&mut self, now_ns: u64, seed: u64, tenant_key: u64) {
        const NANOS_PER_SEC: u64 = 1_000_000_000;
        loop {
            let epoch = self.last_refill_ns / NANOS_PER_SEC + 1;
            let due = epoch * NANOS_PER_SEC
                + refill_jitter_ns(seed, tenant_key, epoch, REFILL_JITTER_MAX_NS);
            if now_ns < due {
                return;
            }
            self.tokens = self
                .tokens
                .saturating_add(self.cfg.rate_per_s)
                .min(self.cfg.burst);
            self.last_refill_ns = epoch * NANOS_PER_SEC;
        }
    }
}

/// The metrics label for one tenant's labeled counter/histogram
/// members ("ctr3" for container 3).
pub fn tenant_label(container: ContainerId) -> String {
    format!("ctr{}", container.0)
}

/// The Binder driver instance for one board.
pub struct BinderDriver {
    /// Per-process state, ordered by PID so every iteration (and
    /// every state hash) visits processes in the same order on every
    /// same-seed run (dronelint R1).
    procs: BTreeMap<Pid, ProcState>,
    /// Node slab: `NodeId(n)` lives at `nodes[n - 1]`. Node ids are
    /// allocated sequentially from 1 and nodes are never removed
    /// (death only clears `alive`), so lookups are direct indexing.
    nodes: Vec<Node>,
    context_managers: BTreeMap<DeviceNamespaceId, NodeId>,
    /// The container allowed to call `PUBLISH_TO_ALL_NS`.
    device_container: Option<(ContainerId, DeviceNamespaceId)>,
    /// Shared services already published, replayed into namespaces
    /// that register a Context Manager later.
    published_shared: Vec<(String, NodeId)>,
    /// Death links: node -> processes watching it (`linkToDeath`).
    death_links: BTreeMap<NodeId, Vec<Pid>>,
    /// Memoized handle translations: (src, dst) -> src handle -> dst
    /// handle. Sound because handle tables grow monotonically — a
    /// handle, once allocated, refers to the same node forever.
    /// Handle 0 (the per-namespace Context Manager alias) is never
    /// cached since a namespace's CM can be replaced after death.
    ///
    /// The inner table is a dense slab indexed by source handle
    /// (handles are allocated sequentially), with [`NO_HANDLE`]
    /// marking untranslated slots: deterministic iteration order
    /// (dronelint R1) and a plain bounds-checked load on the hot
    /// path. Revisit the monotonic-growth assumption if handle
    /// recycling or teardown compaction is ever added.
    translation_cache: BTreeMap<(Pid, Pid), Vec<u32>>,
    stats: DriverStats,
    /// Injected transaction faults (chaos testing); `None` is a
    /// healthy driver.
    fault: Option<BinderFaultInjection>,
    /// Transactions attempted since boot, counted whether or not a
    /// fault fired — the deterministic clock fault injection runs on.
    transact_attempts: u64,
    /// Observability handle; detached (free) unless the owning drone
    /// attached one.
    obs: ObsHandle,
    /// Per-tenant QoS budgets (empty = the pre-QoS driver). Keyed by
    /// container so one hostile app cannot dodge its budget by
    /// spreading load across processes.
    qos: BTreeMap<ContainerId, TenantQosState>,
    /// Aggregate (all-budgeted-tenant) admission cap; `None` is the
    /// per-tenant-only posture.
    aggregate: Option<AggregateState>,
    /// Seed for refill-boundary jitter; `None` keeps the exact
    /// whole-second refill grid (the pre-jitter driver, byte-exact).
    refill_jitter_seed: Option<u64>,
    /// Sim time the token buckets refill against, advanced by the
    /// flight executor via [`Self::set_now_ns`].
    now_ns: u64,
}

/// Counter-based deterministic Binder fault injection: every
/// `period`-th transaction attempt fails. No randomness — the same
/// call sequence fails at the same calls on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinderFaultInjection {
    /// Fail every `period`-th transact (0 disables).
    pub period: u32,
    /// `true` to fail with [`BinderError::TimedOut`] instead of
    /// [`BinderError::TransactionFailed`].
    pub timeout: bool,
}

impl Default for BinderDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl BinderDriver {
    /// Creates an empty driver.
    pub fn new() -> Self {
        BinderDriver {
            procs: BTreeMap::new(),
            nodes: Vec::new(),
            context_managers: BTreeMap::new(),
            device_container: None,
            published_shared: Vec::new(),
            death_links: BTreeMap::new(),
            translation_cache: BTreeMap::new(),
            stats: DriverStats::default(),
            fault: None,
            transact_attempts: 0,
            obs: ObsHandle::default(),
            qos: BTreeMap::new(),
            aggregate: None,
            refill_jitter_seed: None,
            now_ns: 0,
        }
    }

    /// Attaches the shared observability handle; every transaction is
    /// traced and counted from then on.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn node(&self, id: NodeId) -> Option<&Node> {
        // NodeId(0) is never allocated; the subtraction cannot wrap
        // for valid ids and an id of 0 misses via checked_sub.
        self.nodes.get(usize::try_from(id.0).ok()?.checked_sub(1)?)
    }

    /// Marks `container` (in `ns`) as the device container, enabling
    /// its `PUBLISH_TO_ALL_NS` privilege.
    pub fn set_device_container(&mut self, container: ContainerId, ns: DeviceNamespaceId) {
        self.device_container = Some((container, ns));
    }

    /// Driver statistics.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Arms (or with `None` disarms) deterministic transaction fault
    /// injection.
    pub fn set_fault_injection(&mut self, fault: Option<BinderFaultInjection>) {
        self.fault = fault;
    }

    /// The currently armed fault injection, if any.
    pub fn fault_injection(&self) -> Option<BinderFaultInjection> {
        self.fault
    }

    /// Advances the sim time token buckets refill against. The
    /// flight executor calls this once per observer tick; with no
    /// budgets configured it is a plain store with no hashed effect.
    pub fn set_now_ns(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    /// Arms a QoS budget for `container`. The bucket starts full at
    /// the current sim time.
    pub fn set_tenant_budget(&mut self, container: ContainerId, cfg: TenantQos) {
        let now_ns = self.now_ns;
        self.qos.insert(
            container,
            TenantQosState {
                cfg,
                base: cfg,
                tokens: cfg.burst,
                last_refill_ns: now_ns,
                fds_installed: 0,
                subscriptions: 0,
                throttled: false,
                throttle_events: 0,
            },
        );
    }

    /// Arms (or with `None` disarms) the aggregate admission cap
    /// shared by every budgeted tenant. The bucket starts full.
    pub fn set_aggregate_cap(&mut self, cfg: Option<AggregateQos>) {
        let now_ns = self.now_ns;
        self.aggregate = cfg.map(|cfg| AggregateState {
            cfg,
            tokens: cfg.burst,
            last_refill_ns: now_ns,
        });
    }

    /// The aggregate cap currently armed, if any.
    pub fn aggregate_cap(&self) -> Option<AggregateQos> {
        self.aggregate.as_ref().map(|s| s.cfg)
    }

    /// Arms (or with `None` disarms) refill-boundary jitter: each
    /// tenant's token-bucket refill epoch `e` lands at
    /// `e*1s + refill_jitter_ns(seed, tenant, e)` instead of exactly
    /// on the second, so an adaptive tenant cannot learn the refill
    /// cadence from its own admission feedback. Disarmed, refill is
    /// byte-exact with the pre-jitter driver.
    pub fn set_refill_jitter(&mut self, seed: Option<u64>) {
        self.refill_jitter_seed = seed;
    }

    /// The refill-jitter seed currently armed, if any.
    pub fn refill_jitter(&self) -> Option<u64> {
        self.refill_jitter_seed
    }

    /// Disarms `container`'s budget (back to unlimited). Returns
    /// whether a budget was armed.
    pub fn clear_tenant_budget(&mut self, container: &ContainerId) -> bool {
        self.qos.remove(container).is_some()
    }

    /// The budget currently armed for `container`, if any.
    pub fn tenant_budget(&self, container: &ContainerId) -> Option<TenantQos> {
        self.qos.get(container).map(|s| s.cfg)
    }

    /// Total admissions rejected for `container` so far.
    pub fn throttle_count(&self, container: &ContainerId) -> u64 {
        self.qos.get(container).map_or(0, |s| s.throttle_events)
    }

    /// Escalation-ladder step: halves `container`'s transaction rate
    /// and burst (floored at 1/s so the tenant can still make
    /// progress toward a terminal outcome). Returns whether a budget
    /// was armed to halve.
    pub fn halve_tenant_rate(&mut self, container: &ContainerId) -> bool {
        match self.qos.get_mut(container) {
            Some(s) => {
                s.cfg.rate_per_s = (s.cfg.rate_per_s / 2).max(1);
                s.cfg.burst = (s.cfg.burst / 2).max(1);
                s.tokens = s.tokens.min(s.cfg.burst);
                true
            }
            None => false,
        }
    }

    /// Hysteresis-decay step: restores `container`'s budget to the
    /// rate/burst it was originally armed with, undoing any
    /// escalation-ladder halving. Tokens are clamped, never granted —
    /// stepping down cannot mint a burst. Returns whether a halved
    /// budget was actually restored.
    pub fn restore_tenant_rate(&mut self, container: &ContainerId) -> bool {
        match self.qos.get_mut(container) {
            Some(s) if s.cfg != s.base => {
                s.cfg = s.base;
                s.tokens = s.tokens.min(s.cfg.burst);
                true
            }
            _ => false,
        }
    }

    /// Marks one rejected admission for `container`: bumps the
    /// counters and, on the un-throttled -> throttled edge, emits the
    /// [`TraceEvent::BinderThrottle`] record. Returns the error for
    /// the caller to surface.
    fn throttle(&mut self, container: ContainerId, dimension: &'static str) -> BinderError {
        let edge = match self.qos.get_mut(&container) {
            Some(s) => {
                s.throttle_events += 1;
                let edge = !s.throttled;
                s.throttled = true;
                edge
            }
            None => false,
        };
        let label = tenant_label(container);
        self.obs.count("binder.throttled", 1);
        self.obs.count_labeled("binder.throttled.by_tenant", &label, 1);
        if edge {
            self.obs.emit(Subsystem::Binder, || TraceEvent::BinderThrottle {
                container: container.0,
                dimension,
                throttled: true,
            });
        }
        BinderError::Throttled(dimension)
    }

    /// Token-bucket + parcel-ceiling admission for one transaction
    /// from `container`. Tenants without a budget pass untouched; a
    /// budget-free driver is one `is_empty` branch.
    fn admit(&mut self, container: ContainerId, wire: u64) -> Result<(), BinderError> {
        if self.qos.is_empty() {
            return Ok(());
        }
        let now_ns = self.now_ns;
        let jitter_seed = self.refill_jitter_seed;
        let verdict = match self.qos.get_mut(&container) {
            None => return Ok(()),
            Some(s) => {
                match jitter_seed {
                    Some(seed) => s.refill_jittered(now_ns, seed, u64::from(container.0)),
                    None => s.refill(now_ns),
                }
                if wire > s.cfg.max_parcel_bytes {
                    Err("parcel-size")
                } else if s.tokens == 0 {
                    Err("rate")
                } else {
                    s.tokens -= 1;
                    let recovered = s.throttled;
                    s.throttled = false;
                    Ok(recovered)
                }
            }
        };
        // Aggregate cap: charged only after the per-tenant bucket
        // admits, and only for budgeted tenants — trusted unbudgeted
        // traffic never touches it, so colluders cannot starve the
        // mission by draining the shared bucket.
        let verdict = match (verdict, self.aggregate.as_mut()) {
            (Ok(recovered), Some(agg)) => {
                agg.refill(now_ns);
                if agg.tokens == 0 {
                    Err("aggregate-rate")
                } else {
                    agg.tokens -= 1;
                    Ok(recovered)
                }
            }
            (v, _) => v,
        };
        match verdict {
            Ok(recovered) => {
                if recovered {
                    self.obs.emit(Subsystem::Binder, || TraceEvent::BinderThrottle {
                        container: container.0,
                        dimension: "recovered",
                        throttled: false,
                    });
                }
                Ok(())
            }
            Err(dimension) => Err(self.throttle(container, dimension)),
        }
    }

    /// Charges one installed fd against `container`'s budget.
    fn charge_fd(&mut self, container: ContainerId) -> Result<(), BinderError> {
        if self.qos.is_empty() {
            return Ok(());
        }
        let over = match self.qos.get_mut(&container) {
            None => return Ok(()),
            Some(s) => {
                if s.fds_installed >= s.cfg.max_fds {
                    true
                } else {
                    s.fds_installed += 1;
                    false
                }
            }
        };
        if over {
            Err(self.throttle(container, "fd-budget"))
        } else {
            Ok(())
        }
    }

    /// Takes one telemetry subscription slot for `container`.
    /// Unbudgeted tenants subscribe freely (and untracked).
    pub fn try_subscribe(&mut self, container: ContainerId) -> Result<(), BinderError> {
        if self.qos.is_empty() {
            return Ok(());
        }
        let over = match self.qos.get_mut(&container) {
            None => return Ok(()),
            Some(s) => {
                if s.subscriptions >= s.cfg.max_subscriptions {
                    true
                } else {
                    s.subscriptions += 1;
                    false
                }
            }
        };
        if over {
            Err(self.throttle(container, "subscription-budget"))
        } else {
            Ok(())
        }
    }

    /// Releases every subscription slot `container` holds (attack
    /// disarm, tenant teardown).
    pub fn release_subscriptions(&mut self, container: &ContainerId) {
        if let Some(s) = self.qos.get_mut(container) {
            s.subscriptions = 0;
        }
    }

    /// A synthetic adversarial transaction: runs the real admission
    /// path (token bucket, parcel ceiling) and, when admitted, the
    /// real accounting (stats, latency histogram, per-tenant labels)
    /// — without routing to a handler. The attack injector uses this
    /// to model flood/bomb load without standing up a victim service
    /// per hostile parcel.
    pub fn attack_transact(
        &mut self,
        container: ContainerId,
        wire_size: usize,
    ) -> Result<(), BinderError> {
        self.admit(container, wire_size as u64)?;
        self.stats.transactions += 1;
        self.stats.payload_bytes += wire_size as u64;
        let latency_ns = transaction_cost(wire_size).as_nanos();
        let label = tenant_label(container);
        self.obs.count("binder.txn", 1);
        self.obs.count("binder.attack.txn", 1);
        self.obs
            .observe("binder.latency_ns", BINDER_LATENCY_BOUNDS, latency_ns);
        self.obs.count_labeled("binder.txn.by_tenant", &label, 1);
        self.obs.observe_labeled(
            "binder.latency_ns.by_tenant",
            &label,
            BINDER_LATENCY_BOUNDS,
            latency_ns,
        );
        Ok(())
    }

    /// A synthetic adversarial fd install: charges `container`'s fd
    /// budget without touching a real process table.
    pub fn attack_install_fd(&mut self, container: ContainerId) -> Result<(), BinderError> {
        self.charge_fd(container)?;
        self.obs.count("binder.attack.fd", 1);
        Ok(())
    }

    /// Opens the binder device for a process.
    pub fn open(
        &mut self,
        pid: Pid,
        euid: Euid,
        container: ContainerId,
        device_ns: DeviceNamespaceId,
    ) {
        self.procs.entry(pid).or_insert(ProcState {
            euid,
            container,
            device_ns,
            handles: Vec::new(),
            by_node: Vec::new(),
            next_handle: 1,
            fds: Vec::new(),
            next_fd: 3,
            alive: true,
            death_queue: Vec::new(),
        });
    }

    fn proc(&self, pid: Pid) -> Result<&ProcState, BinderError> {
        match self.procs.get(&pid) {
            Some(p) if p.alive => Ok(p),
            _ => Err(BinderError::NotOpened(pid)),
        }
    }

    fn proc_mut(&mut self, pid: Pid) -> Result<&mut ProcState, BinderError> {
        match self.procs.get_mut(&pid) {
            Some(p) if p.alive => Ok(p),
            _ => Err(BinderError::NotOpened(pid)),
        }
    }

    /// Creates a node owned by `pid` with the given handler, returning
    /// a handle valid in the owner's table.
    pub fn create_node(&mut self, pid: Pid, handler: ServiceRef) -> Result<u32, BinderError> {
        self.proc(pid)?;
        self.nodes.push(Node {
            owner: pid,
            handler,
            alive: true,
        });
        let id = NodeId(self.nodes.len() as u64);
        Ok(self.proc_mut(pid)?.insert_handle(id))
    }

    /// Registers the node behind `handle` as the Context Manager of
    /// the caller's device namespace (`BINDER_SET_CONTEXT_MGR`).
    ///
    /// AnDrone's device-namespace extension: each namespace gets its
    /// own Context Manager; handle 0 resolves per caller namespace.
    /// Shared services published earlier are replayed into the new
    /// namespace, which is how freshly created virtual drones see the
    /// device container's services.
    pub fn set_context_manager(&mut self, pid: Pid, handle: u32) -> Result<(), BinderError> {
        let ns = self.proc(pid)?.device_ns;
        let node = self.resolve_handle(pid, handle)?;
        if let Some(&existing) = self.context_managers.get(&ns) {
            if self.node(existing).is_some_and(|n| n.alive) {
                return Err(BinderError::ContextManagerExists);
            }
        }
        self.context_managers.insert(ns, node);

        // Replay previously published shared services into the new
        // namespace, unless this *is* the device container's own
        // namespace.
        let is_device_ns = self.device_container.is_some_and(|(_, dns)| dns == ns);
        if !is_device_ns {
            let replay: Vec<(String, NodeId)> = self
                .published_shared
                .iter()
                .filter(|(_, n)| self.node(*n).is_some_and(|node| node.alive))
                .cloned()
                .collect();
            for (name, service_node) in replay {
                self.register_with_cm(node, &name, service_node)?;
            }
        }
        Ok(())
    }

    /// Returns the Context Manager node for a namespace, if any.
    pub fn context_manager(&self, ns: DeviceNamespaceId) -> Option<NodeId> {
        self.context_managers.get(&ns).copied()
    }

    fn resolve_handle(&self, pid: Pid, handle: u32) -> Result<NodeId, BinderError> {
        let proc = self.proc(pid)?;
        if handle == 0 {
            return self
                .context_managers
                .get(&proc.device_ns)
                .copied()
                .ok_or(BinderError::NoContextManager);
        }
        proc.node_for(handle).ok_or(BinderError::BadHandle(handle))
    }

    /// Translates one binder handle from `from`'s table into `to`'s,
    /// memoizing the result in the caller-held `slab` (the
    /// `(from, to)` translation-cache entry, checked out once per
    /// parcel by [`Self::translate_parcel`]). Handle 0 is excluded
    /// from the cache because the Context Manager it aliases can
    /// change.
    fn translate_handle(
        &mut self,
        from: Pid,
        to: Pid,
        handle: u32,
        slab: &mut Option<Vec<u32>>,
    ) -> Result<u32, BinderError> {
        if handle != 0 {
            if let Some(&dst) = slab.as_ref().and_then(|s| s.get(handle as usize)) {
                if dst != NO_HANDLE {
                    return Ok(dst);
                }
            }
        }
        let node = self.resolve_handle(from, handle)?;
        let dst = self.proc_mut(to)?.insert_handle(node);
        if handle != 0 {
            let s = slab.get_or_insert_with(Vec::new);
            let idx = handle as usize;
            if s.len() <= idx {
                s.resize(idx + 1, NO_HANDLE);
            }
            s[idx] = dst;
        }
        Ok(dst)
    }

    /// Translates a parcel's binder handles and fds from `from`'s
    /// tables into `to`'s tables.
    ///
    /// Scalar-only parcels (no handles, no fds — the bulk of sensor
    /// and telemetry traffic) return immediately without touching
    /// the parcel's copy-on-write storage.
    ///
    /// Handle-bearing parcels check the `(from, to)` cache slab out
    /// of the translation cache **once** and run every handle in the
    /// parcel against the local `Vec` — one tree lookup per parcel
    /// instead of one (two, on a miss) per handle.
    fn translate_parcel(
        &mut self,
        parcel: &mut Parcel,
        from: Pid,
        to: Pid,
    ) -> Result<(), BinderError> {
        if !parcel.has_object_refs() {
            // Fast path: nothing to rewrite, but still verify both
            // endpoints exist (matching the slow path's checks).
            self.proc(from)?;
            self.proc(to)?;
            return Ok(());
        }
        let mut slab = self.translation_cache.remove(&(from, to));
        let result = self.translate_values(parcel, from, to, &mut slab);
        // Restore the slab before surfacing any error, so entries
        // written for handles earlier in a failing parcel persist
        // exactly as the per-handle path left them. Slabs are only
        // ever created non-empty, so a None→None round trip leaves
        // the cache's key set (and its state hash) untouched.
        if let Some(slab) = slab {
            self.translation_cache.insert((from, to), slab);
        }
        result
    }

    fn translate_values(
        &mut self,
        parcel: &mut Parcel,
        from: Pid,
        to: Pid,
        slab: &mut Option<Vec<u32>>,
    ) -> Result<(), BinderError> {
        if !parcel.has_fds() {
            // Handle-only fast path (the common case for service
            // fanout): no fd-slab checkout, no restore bookkeeping —
            // just the handle rewrites against the cache slab.
            for v in parcel.values_mut() {
                if let PValue::Binder(h) = v {
                    *h = self.translate_handle(from, to, *h, slab)?;
                }
            }
            return Ok(());
        }
        // fd tables are checked out of the proc map lazily on the
        // first fd in the parcel (mirroring the handle-cache slab
        // checkout above): every subsequent fd is a local Vec
        // operation instead of two proc-map tree walks.
        let mut fds: Option<FdSlabCheckout> = None;
        let result = (|| {
            for v in parcel.values_mut() {
                match v {
                    PValue::Binder(h) => *h = self.translate_handle(from, to, *h, slab)?,
                    PValue::Fd(fd) => {
                        let co = match fds.as_mut() {
                            Some(co) => co,
                            None => fds.insert(self.checkout_fd_slabs(from, to)?),
                        };
                        *fd = co.translate(*fd)?;
                    }
                    _ => {}
                }
            }
            Ok(())
        })();
        // Restore before surfacing any error, so fds installed for
        // values earlier in a failing parcel persist exactly as the
        // per-fd path would have left them.
        if let Some(fds) = fds {
            self.restore_fd_slabs(fds);
        }
        result
    }

    /// Checks both processes' fd state out of the proc map for one
    /// parcel's worth of fd translations. Verifies liveness up front
    /// so the takes below cannot half-apply.
    fn checkout_fd_slabs(&mut self, from: Pid, to: Pid) -> Result<FdSlabCheckout, BinderError> {
        let src = if from == to {
            None
        } else {
            let Some(p) = self.procs.get_mut(&from) else {
                return Err(BinderError::NotOpened(from));
            };
            Some(std::mem::take(&mut p.fds))
        };
        let Some(p) = self.procs.get_mut(&to) else {
            // Undo the src take before surfacing the error so a dead
            // receiver cannot strand the sender's fd table.
            if let (Some(src), Some(p)) = (src, self.procs.get_mut(&from)) {
                p.fds = src;
            }
            return Err(BinderError::NotOpened(to));
        };
        Ok(FdSlabCheckout {
            from,
            to,
            src,
            dst: std::mem::take(&mut p.fds),
            next_fd: p.next_fd,
        })
    }

    /// Returns a checkout's fd tables to the proc map (all paths,
    /// success or error).
    fn restore_fd_slabs(&mut self, co: FdSlabCheckout) {
        if let Some(src) = co.src {
            if let Some(p) = self.procs.get_mut(&co.from) {
                p.fds = src;
            }
        }
        if let Some(p) = self.procs.get_mut(&co.to) {
            p.fds = co.dst;
            p.next_fd = co.next_fd;
        }
    }

    /// Performs a synchronous transaction from `caller` to the node
    /// behind `handle`, returning the translated reply.
    pub fn transact(
        &mut self,
        caller: Pid,
        handle: u32,
        code: u32,
        mut data: Parcel,
    ) -> Result<Parcel, BinderError> {
        self.transact_attempts += 1;
        if let Some(f) = self.fault {
            if f.period > 0 && self.transact_attempts.is_multiple_of(u64::from(f.period)) {
                let wire = data.wire_size() as u64;
                self.obs.count("binder.txn.injected_fail", 1);
                self.obs.emit(Subsystem::Binder, || TraceEvent::BinderTxn {
                    caller: caller.0,
                    code,
                    wire_size: wire,
                    cross_container: false,
                    latency_ns: 0,
                    ok: false,
                });
                return Err(if f.timeout {
                    BinderError::TimedOut
                } else {
                    BinderError::TransactionFailed("injected fault".into())
                });
            }
        }
        let caller_container = self.proc(caller)?.container;
        self.admit(caller_container, data.wire_size() as u64)?;
        let node_id = self.resolve_handle(caller, handle)?;
        let (target_pid, handler) = {
            let node = self.node(node_id).ok_or(BinderError::DeadObject)?;
            if !node.alive {
                return Err(BinderError::DeadObject);
            }
            (node.owner, Rc::clone(&node.handler))
        };
        let caller_state = self.proc(caller)?;
        let ctx = TransactionContext {
            sender_pid: caller,
            sender_euid: caller_state.euid,
            sender_container: caller_state.container,
        };
        let cross = caller_state.container != self.proc(target_pid)?.container;

        self.translate_parcel(&mut data, caller, target_pid)?;
        self.stats.transactions += 1;
        self.stats.payload_bytes += data.wire_size() as u64;
        if cross {
            self.stats.cross_container += 1;
        }
        let wire = data.wire_size() as u64;
        let latency_ns = transaction_cost(data.wire_size()).as_nanos();
        self.obs.count("binder.txn", 1);
        if cross {
            self.obs.count("binder.txn.cross_container", 1);
        }
        self.obs
            .observe("binder.latency_ns", BINDER_LATENCY_BOUNDS, latency_ns);
        // Per-tenant labels only for budgeted tenants: labeling every
        // tenant unconditionally would perturb the metrics digest of
        // runs with no QoS configured (the pinned baselines).
        if self.qos.contains_key(&caller_container) {
            let label = tenant_label(caller_container);
            self.obs.count_labeled("binder.txn.by_tenant", &label, 1);
            self.obs.observe_labeled(
                "binder.latency_ns.by_tenant",
                &label,
                BINDER_LATENCY_BOUNDS,
                latency_ns,
            );
        }
        self.obs.emit(Subsystem::Binder, || TraceEvent::BinderTxn {
            caller: caller.0,
            code,
            wire_size: wire,
            cross_container: cross,
            latency_ns,
            ok: true,
        });

        let mut reply = {
            let mut guard = handler.try_borrow_mut().map_err(|_| BinderError::Reentrant)?;
            guard.on_transact(code, &data, &ctx, self)?
        };
        self.translate_parcel(&mut reply, target_pid, caller)?;
        Ok(reply)
    }

    /// Kernel-originated transaction to a node, with `data` already in
    /// the target process's handle space. Used by the publish ioctls.
    fn transact_as_kernel(
        &mut self,
        node_id: NodeId,
        code: u32,
        data: Parcel,
    ) -> Result<Parcel, BinderError> {
        let handler = {
            let node = self.node(node_id).ok_or(BinderError::DeadObject)?;
            if !node.alive {
                return Err(BinderError::DeadObject);
            }
            Rc::clone(&node.handler)
        };
        self.stats.transactions += 1;
        let mut guard = handler.try_borrow_mut().map_err(|_| BinderError::Reentrant)?;
        guard.on_transact(code, &data, &TransactionContext::KERNEL, self)
    }

    /// Registers `(name, service_node)` with the Context Manager node
    /// `cm`, crafting the parcel in the CM owner's handle space.
    fn register_with_cm(
        &mut self,
        cm: NodeId,
        name: &str,
        service_node: NodeId,
    ) -> Result<(), BinderError> {
        let cm_owner = self.node(cm).ok_or(BinderError::DeadObject)?.owner;
        let handle = self.proc_mut(cm_owner)?.insert_handle(service_node);
        let mut data = Parcel::new();
        data.push_str(name).push_binder(handle);
        self.transact_as_kernel(cm, crate::service_manager::codes::ADD_SERVICE, data)?;
        Ok(())
    }

    /// The `PUBLISH_TO_ALL_NS` ioctl (paper Figure 6, steps ❶–❹).
    ///
    /// Callable only from the device container. Registers the service
    /// behind `handle` under `name` in every *other* namespace that
    /// has a Context Manager, and records it for replay into future
    /// namespaces. Returns how many namespaces received it.
    pub fn publish_to_all_ns(
        &mut self,
        caller: Pid,
        name: &str,
        handle: u32,
    ) -> Result<usize, BinderError> {
        let caller_container = self.proc(caller)?.container;
        let (dev_container, dev_ns) = self
            .device_container
            .ok_or(BinderError::PermissionDenied("no device container configured"))?;
        if caller_container != dev_container {
            return Err(BinderError::PermissionDenied(
                "PUBLISH_TO_ALL_NS is restricted to the device container",
            ));
        }
        let node = self.resolve_handle(caller, handle)?;
        self.published_shared.push((name.to_string(), node));
        let targets: Vec<NodeId> = self
            .context_managers
            .iter()
            .filter(|(ns, _)| **ns != dev_ns)
            .map(|(_, cm)| *cm)
            .collect();
        let mut count = 0;
        for cm in targets {
            self.register_with_cm(cm, name, node)?;
            count += 1;
        }
        Ok(count)
    }

    /// The `PUBLISH_TO_DEV_CON` ioctl (paper Figure 6, steps ①–②).
    ///
    /// Appends the caller's container identifier to `name` and
    /// registers the service behind `handle` with the device
    /// container's ServiceManager. Returns the suffixed name device
    /// services will look up (e.g. `activity#ctr3`).
    pub fn publish_to_dev_con(
        &mut self,
        caller: Pid,
        name: &str,
        handle: u32,
    ) -> Result<String, BinderError> {
        let caller_container = self.proc(caller)?.container;
        let (_, dev_ns) = self
            .device_container
            .ok_or(BinderError::PermissionDenied("no device container configured"))?;
        let node = self.resolve_handle(caller, handle)?;
        let cm = self
            .context_managers
            .get(&dev_ns)
            .copied()
            .ok_or(BinderError::NoContextManager)?;
        let suffixed = scoped_service_name(name, caller_container);
        self.register_with_cm(cm, &suffixed, node)?;
        Ok(suffixed)
    }

    /// Reads the file description behind a process's fd.
    pub fn file(&self, pid: Pid, fd: u32) -> Result<FileRef, BinderError> {
        self.proc(pid)?
            .file_for(fd)
            .cloned()
            .ok_or(BinderError::BadFd(fd))
    }

    /// Installs a file description into a process's fd table (as a
    /// device would on `open()`), returning the fd. Charges the
    /// owning tenant's fd budget when one is armed; fds arriving via
    /// parcel translation (dup semantics into the *receiver*) are
    /// deliberately not charged — the receiver did not choose them.
    pub fn install_fd(&mut self, pid: Pid, file: FileRef) -> Result<u32, BinderError> {
        let container = self.proc(pid)?.container;
        self.charge_fd(container)?;
        Ok(self.proc_mut(pid)?.insert_fd(file))
    }

    /// Registers a death link (`linkToDeath`): when the node behind
    /// `handle` dies, the caller receives a death notification.
    pub fn link_to_death(&mut self, watcher: Pid, handle: u32) -> Result<(), BinderError> {
        let node = self.resolve_handle(watcher, handle)?;
        if !self.node(node).is_some_and(|n| n.alive) {
            return Err(BinderError::DeadObject);
        }
        let watchers = self.death_links.entry(node).or_default();
        if !watchers.contains(&watcher) {
            watchers.push(watcher);
        }
        Ok(())
    }

    /// Drains pending death notifications for `pid`: the handles (in
    /// `pid`'s table) of linked nodes that have died.
    pub fn poll_death_notifications(&mut self, pid: Pid) -> Vec<u32> {
        match self.procs.get_mut(&pid) {
            Some(p) => std::mem::take(&mut p.death_queue),
            None => Vec::new(),
        }
    }

    /// Kills a process: its nodes die, later transactions to them
    /// return [`BinderError::DeadObject`], and death-linked watchers
    /// are notified.
    pub fn kill_process(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.alive = false;
        }
        let mut died = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.owner == pid && node.alive {
                node.alive = false;
                died.push(NodeId(i as u64 + 1));
            }
        }
        for node in died {
            let Some(watchers) = self.death_links.remove(&node) else {
                continue;
            };
            for watcher in watchers {
                if let Some(p) = self.procs.get_mut(&watcher) {
                    if !p.alive {
                        continue;
                    }
                    if let Some(handle) = p.handle_for(node) {
                        p.death_queue.push(handle);
                    }
                }
            }
        }
    }

    /// Whether a node is still alive (diagnostics).
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.node(node).is_some_and(|n| n.alive)
    }
}

/// The name under which a container's ActivityManager is registered
/// in the device container (paper: "appends the ActivityManager
/// service name with the container identifier").
pub fn scoped_service_name(name: &str, container: ContainerId) -> String {
    format!("{name}#ctr{}", container.0)
}

impl StateHash for BinderDriver {
    fn state_hash(&self, h: &mut StateHasher) {
        h.write_usize(self.procs.len());
        for (pid, p) in &self.procs {
            pid.state_hash(h);
            p.euid.state_hash(h);
            p.container.state_hash(h);
            h.write_u32(p.device_ns.0);
            h.write_usize(p.handles.len());
            for node in &p.handles {
                h.write_u64(node.map_or(0, |n| n.0));
            }
            // `by_node` is the exact inverse of `handles`; hashing it
            // too would be redundant.
            h.write_u32(p.next_handle);
            h.write_usize(p.fds.len());
            for fd in &p.fds {
                match fd {
                    Some(file) => h.write_str(&file.label),
                    None => h.write_u8(0),
                }
            }
            h.write_u32(p.next_fd);
            h.write_bool(p.alive);
            h.write_usize(p.death_queue.len());
            for handle in &p.death_queue {
                h.write_u32(*handle);
            }
        }
        h.write_usize(self.nodes.len());
        for node in &self.nodes {
            node.owner.state_hash(h);
            h.write_bool(node.alive);
        }
        h.write_usize(self.context_managers.len());
        for (ns, node) in &self.context_managers {
            h.write_u32(ns.0);
            h.write_u64(node.0);
        }
        match self.device_container {
            Some((c, ns)) => {
                c.state_hash(h);
                h.write_u32(ns.0);
            }
            None => h.write_u8(0),
        }
        h.write_usize(self.published_shared.len());
        for (name, node) in &self.published_shared {
            h.write_str(name);
            h.write_u64(node.0);
        }
        h.write_usize(self.death_links.len());
        for (node, watchers) in &self.death_links {
            h.write_u64(node.0);
            h.write_usize(watchers.len());
            for w in watchers {
                w.state_hash(h);
            }
        }
        // The translation cache is state: same-seed runs must build
        // identical caches, or a later structural change (e.g. cache
        // eviction) could make cached and uncached runs diverge.
        h.write_usize(self.translation_cache.len());
        for ((from, to), slab) in &self.translation_cache {
            from.state_hash(h);
            to.state_hash(h);
            h.write_usize(slab.len());
            for dst in slab {
                h.write_u32(*dst);
            }
        }
        h.write_u64(self.stats.transactions);
        h.write_u64(self.stats.cross_container);
        h.write_u64(self.stats.payload_bytes);
        match self.fault {
            Some(f) => {
                h.write_u8(1);
                h.write_u32(f.period);
                h.write_bool(f.timeout);
            }
            None => h.write_u8(0),
        }
        h.write_u64(self.transact_attempts);
        // QoS state hashes only when configured: a budget-free driver
        // appends nothing, so the pinned pre-QoS digests hold.
        if !self.qos.is_empty() {
            h.write_usize(self.qos.len());
            for (container, s) in &self.qos {
                container.state_hash(h);
                h.write_u64(s.cfg.rate_per_s);
                h.write_u64(s.cfg.burst);
                h.write_u64(s.cfg.max_parcel_bytes);
                h.write_u32(s.cfg.max_fds);
                h.write_u32(s.cfg.max_subscriptions);
                h.write_u64(s.tokens);
                h.write_u64(s.last_refill_ns);
                h.write_u32(s.fds_installed);
                h.write_u32(s.subscriptions);
                h.write_bool(s.throttled);
                h.write_u64(s.throttle_events);
            }
            h.write_u64(self.now_ns);
        }
        // Same discipline for the PR-10 hardening state: each block
        // hashes only when armed, so every pre-existing digest —
        // budget-free *and* per-tenant-only — holds unchanged.
        if let Some(agg) = &self.aggregate {
            h.write_u64(agg.cfg.rate_per_s);
            h.write_u64(agg.cfg.burst);
            h.write_u64(agg.tokens);
            h.write_u64(agg.last_refill_ns);
        }
        if let Some(seed) = self.refill_jitter_seed {
            h.write_u64(seed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A service that echoes the parcel back with an extra i32.
    struct Echo;

    impl BinderService for Echo {
        fn on_transact(
            &mut self,
            _code: u32,
            data: &Parcel,
            ctx: &TransactionContext,
            _driver: &mut BinderDriver,
        ) -> Result<Parcel, BinderError> {
            let mut reply = data.clone();
            reply.push_i32(ctx.sender_pid.0 as i32);
            Ok(reply)
        }
    }

    fn setup() -> (BinderDriver, Pid, Pid, u32) {
        let mut d = BinderDriver::new();
        let server = Pid(10);
        let client = Pid(20);
        d.open(server, Euid(1000), ContainerId(1), DeviceNamespaceId(1));
        d.open(client, Euid(10_050), ContainerId(2), DeviceNamespaceId(2));
        let server_handle = d.create_node(server, Rc::new(RefCell::new(Echo))).unwrap();
        // Hand the client a handle by translating a parcel.
        let mut p = Parcel::new();
        p.push_binder(server_handle);
        d.translate_parcel(&mut p, server, client).unwrap();
        let client_handle = p.binder_at(0).unwrap();
        (d, server, client, client_handle)
    }

    #[test]
    fn transaction_carries_sender_identity() {
        let (mut d, _, client, handle) = setup();
        let mut data = Parcel::new();
        data.push_str("ping");
        let reply = d.transact(client, handle, 1, data).unwrap();
        assert_eq!(reply.str_at(0).unwrap(), "ping");
        assert_eq!(reply.i32_at(1).unwrap(), client.0 as i32);
    }

    #[test]
    fn cross_container_transactions_are_counted() {
        let (mut d, _, client, handle) = setup();
        d.transact(client, handle, 1, Parcel::new()).unwrap();
        assert_eq!(d.stats().transactions, 1);
        assert_eq!(d.stats().cross_container, 1);
    }

    #[test]
    fn dead_nodes_refuse_transactions() {
        let (mut d, server, client, handle) = setup();
        d.kill_process(server);
        assert_eq!(
            d.transact(client, handle, 1, Parcel::new()),
            Err(BinderError::DeadObject)
        );
    }

    #[test]
    fn handles_are_stable_per_node() {
        let (mut d, server, client, handle) = setup();
        // Re-translating the same node yields the same client handle.
        let mut p = Parcel::new();
        p.push_binder(1);
        d.translate_parcel(&mut p, server, client).unwrap();
        assert_eq!(p.binder_at(0).unwrap(), handle);
    }

    #[test]
    fn unopened_process_cannot_transact() {
        let (mut d, _, _, _) = setup();
        assert!(matches!(
            d.transact(Pid(99), 1, 1, Parcel::new()),
            Err(BinderError::NotOpened(_))
        ));
    }

    #[test]
    fn transaction_cost_scales_with_payload() {
        assert!(transaction_cost(4096) > transaction_cost(8));
        assert!(transaction_cost(8).as_micros() >= 32);
    }

    #[test]
    fn scalar_parcels_skip_translation_without_copying() {
        let (mut d, server, client, _) = setup();
        let mut p = Parcel::new();
        p.push_i32(7).push_str("telemetry").push_f64(1.5);
        let snapshot = p.clone();
        d.translate_parcel(&mut p, server, client).unwrap();
        assert!(
            p.shares_storage_with(&snapshot),
            "no-objref parcels must not be rewritten (or copied)"
        );
    }

    #[test]
    fn fast_path_still_validates_endpoints() {
        let (mut d, server, _, _) = setup();
        let mut p = Parcel::new();
        p.push_i32(1);
        assert!(matches!(
            d.translate_parcel(&mut p, server, Pid(404)),
            Err(BinderError::NotOpened(_))
        ));
    }

    #[test]
    fn repeated_translations_hit_the_cache() {
        let (mut d, server, client, handle) = setup();
        // Prime + repeat: the same (src, dst, handle) triple must
        // keep resolving to the same destination handle.
        for _ in 0..3 {
            let mut p = Parcel::new();
            p.push_binder(1);
            d.translate_parcel(&mut p, server, client).unwrap();
            assert_eq!(p.binder_at(0).unwrap(), handle);
        }
        let cached = d
            .translation_cache
            .get(&(server, client))
            .and_then(|slab| slab.get(1))
            .copied()
            .filter(|&dst| dst != NO_HANDLE);
        assert_eq!(cached, Some(handle));
    }

    #[test]
    fn fds_are_duplicated_per_translation() {
        let (mut d, server, client, _) = setup();
        let (file, _producer) = crate::fd::new_stream("cam0");
        let fd = d.install_fd(server, file).unwrap();
        let mut first = Parcel::new();
        first.push_fd(fd);
        d.translate_parcel(&mut first, server, client).unwrap();
        let mut second = Parcel::new();
        second.push_fd(fd);
        d.translate_parcel(&mut second, server, client).unwrap();
        // fd transfer installs a fresh descriptor each time (dup
        // semantics), unlike binder handles which stay stable.
        assert_ne!(first.fd_at(0).unwrap(), second.fd_at(0).unwrap());
        // Both descriptors refer to the same open file description.
        let a = d.file(client, first.fd_at(0).unwrap()).unwrap();
        let b = d.file(client, second.fd_at(0).unwrap()).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn fd_translation_handles_self_and_mixed_parcels() {
        let (mut d, server, client, _) = setup();
        let (file, _producer) = crate::fd::new_stream("cam0");
        let fd = d.install_fd(server, file).unwrap();
        // Self-translation (from == to): the checkout holds a single
        // table that serves both lookup and install.
        let mut selfp = Parcel::new();
        selfp.push_fd(fd);
        selfp.push_fd(fd);
        d.translate_parcel(&mut selfp, server, server).unwrap();
        let (a, b) = (selfp.fd_at(0).unwrap(), selfp.fd_at(1).unwrap());
        assert_ne!(a, fd);
        assert_ne!(a, b);
        assert!(Rc::ptr_eq(
            &d.file(server, a).unwrap(),
            &d.file(server, fd).unwrap()
        ));
        // A bad fd later in the parcel keeps the earlier install, as
        // the per-fd path did (restore-on-error).
        let mut bad = Parcel::new();
        bad.push_fd(fd);
        bad.push_fd(9_999);
        assert_eq!(
            d.translate_parcel(&mut bad, server, client),
            Err(BinderError::BadFd(9_999))
        );
        let good = bad.fd_at(0).unwrap();
        assert!(d.file(client, good).is_ok());
    }
}

#[cfg(test)]
mod qos_tests {
    use super::*;
    use androne_simkern::StateHash;

    const TIGHT: TenantQos = TenantQos {
        rate_per_s: 2,
        burst: 3,
        max_parcel_bytes: 1_024,
        max_fds: 2,
        max_subscriptions: 2,
    };

    fn driver_with_budget() -> (BinderDriver, ContainerId) {
        let mut d = BinderDriver::new();
        let attacker = ContainerId(7);
        d.set_tenant_budget(attacker, TIGHT);
        (d, attacker)
    }

    #[test]
    fn token_bucket_rejects_past_burst_and_refills_on_sim_time() {
        let (mut d, attacker) = driver_with_budget();
        for _ in 0..TIGHT.burst {
            d.attack_transact(attacker, 64).unwrap();
        }
        assert_eq!(
            d.attack_transact(attacker, 64),
            Err(BinderError::Throttled("rate"))
        );
        assert_eq!(d.throttle_count(&attacker), 1);
        // One sim-second refills rate_per_s tokens.
        d.set_now_ns(1_000_000_000);
        d.attack_transact(attacker, 64).unwrap();
        d.attack_transact(attacker, 64).unwrap();
        assert_eq!(
            d.attack_transact(attacker, 64),
            Err(BinderError::Throttled("rate"))
        );
    }

    #[test]
    fn oversized_parcels_are_rejected_without_spending_tokens() {
        let (mut d, attacker) = driver_with_budget();
        assert_eq!(
            d.attack_transact(attacker, 1_000_000),
            Err(BinderError::Throttled("parcel-size"))
        );
        // The bucket is untouched: the full burst still clears.
        for _ in 0..TIGHT.burst {
            d.attack_transact(attacker, 64).unwrap();
        }
    }

    #[test]
    fn fd_budget_caps_lifetime_installs() {
        let (mut d, attacker) = driver_with_budget();
        d.attack_install_fd(attacker).unwrap();
        d.attack_install_fd(attacker).unwrap();
        assert_eq!(
            d.attack_install_fd(attacker),
            Err(BinderError::Throttled("fd-budget"))
        );
    }

    #[test]
    fn subscription_budget_caps_concurrent_subscribers() {
        let (mut d, attacker) = driver_with_budget();
        d.try_subscribe(attacker).unwrap();
        d.try_subscribe(attacker).unwrap();
        assert_eq!(
            d.try_subscribe(attacker),
            Err(BinderError::Throttled("subscription-budget"))
        );
        d.release_subscriptions(&attacker);
        d.try_subscribe(attacker).unwrap();
    }

    #[test]
    fn unbudgeted_tenants_pass_admission_untouched() {
        let (mut d, _) = driver_with_budget();
        let bystander = ContainerId(3);
        for _ in 0..1_000 {
            d.attack_transact(bystander, 64).unwrap();
        }
        assert_eq!(d.throttle_count(&bystander), 0);
    }

    #[test]
    fn throttle_edges_emit_one_trace_record_per_transition() {
        let (mut d, attacker) = driver_with_budget();
        let obs = ObsHandle::attached();
        d.set_obs(obs.clone());
        for _ in 0..TIGHT.burst {
            d.attack_transact(attacker, 64).unwrap();
        }
        // Three rejections in the throttled state: one edge record.
        for _ in 0..3 {
            assert!(d.attack_transact(attacker, 64).is_err());
        }
        d.set_now_ns(2_000_000_000);
        d.attack_transact(attacker, 64).unwrap(); // recovery edge
        let edges: Vec<(u32, bool)> = obs
            .with(|o| {
                o.trace
                    .records(Subsystem::Binder)
                    .filter_map(|r| match &r.event {
                        TraceEvent::BinderThrottle { container, throttled, .. } => {
                            Some((*container, *throttled))
                        }
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        assert_eq!(edges, vec![(7, true), (7, false)]);
        let throttled = obs
            .with(|o| o.metrics.counter("binder.throttled"))
            .unwrap_or(0);
        assert_eq!(throttled, 3);
        let by_tenant = obs
            .with(|o| o.metrics.labeled_counter("binder.throttled.by_tenant", "ctr7"))
            .unwrap_or(0);
        assert_eq!(by_tenant, 3);
    }

    #[test]
    fn halving_the_rate_floors_at_one() {
        let (mut d, attacker) = driver_with_budget();
        for _ in 0..10 {
            d.halve_tenant_rate(&attacker);
        }
        let cfg = d.tenant_budget(&attacker).expect("budget armed");
        assert_eq!(cfg.rate_per_s, 1);
        assert_eq!(cfg.burst, 1);
        assert!(!d.halve_tenant_rate(&ContainerId(99)));
    }

    #[test]
    fn restore_tenant_rate_undoes_halving_without_minting_tokens() {
        let (mut d, attacker) = driver_with_budget();
        // Spend the bucket down to 1 token, then halve twice.
        for _ in 0..TIGHT.burst - 1 {
            d.attack_transact(attacker, 64).unwrap();
        }
        d.halve_tenant_rate(&attacker);
        d.halve_tenant_rate(&attacker);
        assert!(d.restore_tenant_rate(&attacker));
        let cfg = d.tenant_budget(&attacker).expect("budget armed");
        assert_eq!((cfg.rate_per_s, cfg.burst), (TIGHT.rate_per_s, TIGHT.burst));
        // Tokens were clamped by the halvings and restore does not
        // grant them back: exactly the 1 remaining token clears.
        d.attack_transact(attacker, 64).unwrap();
        assert_eq!(
            d.attack_transact(attacker, 64),
            Err(BinderError::Throttled("rate"))
        );
        // Idempotent: an unhalved budget reports nothing to restore.
        assert!(!d.restore_tenant_rate(&attacker));
        assert!(!d.restore_tenant_rate(&ContainerId(99)));
    }

    #[test]
    fn aggregate_cap_bounds_colluding_tenants_but_not_the_mission() {
        let mut d = BinderDriver::new();
        let (a, b) = (ContainerId(7), ContainerId(8));
        d.set_tenant_budget(a, TIGHT);
        d.set_tenant_budget(b, TIGHT);
        d.set_aggregate_cap(Some(AggregateQos { rate_per_s: 2, burst: 4 }));
        // Each tenant alone is within budget (burst 3), but together
        // they exhaust the aggregate bucket after 4 admissions.
        let mut admitted = 0;
        let mut aggregate_rejects = 0;
        for _ in 0..3 {
            for t in [a, b] {
                match d.attack_transact(t, 64) {
                    Ok(()) => admitted += 1,
                    Err(BinderError::Throttled("aggregate-rate")) => aggregate_rejects += 1,
                    Err(e) => panic!("unexpected rejection {e:?}"),
                }
            }
        }
        assert_eq!(admitted, 4);
        assert_eq!(aggregate_rejects, 2);
        // The unbudgeted mission container never touches the bucket.
        for _ in 0..100 {
            d.attack_transact(ContainerId(1), 64).unwrap();
        }
        // Refill restores the aggregate rate, not the full burst.
        d.set_now_ns(1_000_000_000);
        d.attack_transact(a, 64).unwrap();
        d.attack_transact(b, 64).unwrap();
        assert_eq!(
            d.attack_transact(a, 64),
            Err(BinderError::Throttled("aggregate-rate"))
        );
    }

    #[test]
    fn refill_jitter_delays_epochs_without_changing_long_run_rate() {
        // burst = 2×rate (the DEFENSIVE_DEFAULT shape): two
        // jitter-delayed quanta landing in the same second fit in
        // the bucket, so jitter shifts admissions without clipping.
        let cfg = TenantQos { rate_per_s: 2, burst: 4, ..TIGHT };
        let run = |seed: Option<u64>| -> Vec<u64> {
            let mut d = BinderDriver::new();
            let attacker = ContainerId(7);
            d.set_tenant_budget(attacker, cfg);
            d.set_refill_jitter(seed);
            // Observed admissions per sim-second, the exact signal a
            // refill-probing adversary watches.
            (0..8u64)
                .map(|s| {
                    d.set_now_ns(s * 1_000_000_000);
                    let mut ok = 0;
                    while d.attack_transact(attacker, 64).is_ok() {
                        ok += 1;
                    }
                    ok
                })
                .collect()
        };
        let exact = run(None);
        let jittered = run(Some(0xA11CE));
        let jittered_again = run(Some(0xA11CE));
        assert_eq!(jittered, jittered_again, "jitter must be deterministic");
        // Exact refill pays the same quantum every second after the
        // initial burst drains; jitter makes some epochs pay late
        // (0 then 2), so the per-second trace differs...
        assert_ne!(exact, jittered);
        // ...but the long-run admitted volume converges: at most two
        // quanta (the 1.5 s max delay) are still in flight at the
        // horizon.
        let total = |v: &[u64]| v.iter().sum::<u64>();
        assert!(total(&exact).abs_diff(total(&jittered)) <= 2 * cfg.rate_per_s);
    }

    #[test]
    fn hardening_state_hashes_only_when_armed() {
        let mut d = BinderDriver::new();
        let baseline = d.hash_value();
        d.set_aggregate_cap(Some(AggregateQos::HARDENED_DEFAULT));
        let with_cap = d.hash_value();
        assert_ne!(with_cap, baseline);
        d.set_refill_jitter(Some(9));
        assert_ne!(d.hash_value(), with_cap);
        d.set_aggregate_cap(None);
        d.set_refill_jitter(None);
        assert_eq!(d.hash_value(), baseline);
    }

    #[test]
    fn budget_free_driver_hashes_identically_to_pre_qos_layout() {
        // A driver that never arms a budget must hash exactly as the
        // pre-QoS driver did, even after sim time advances: the
        // pinned chaos/fleet digests depend on it.
        let mut a = BinderDriver::new();
        let baseline = a.hash_value();
        a.set_now_ns(5_000_000_000);
        assert_eq!(a.hash_value(), baseline);
        // Arming (and even clearing) a budget is hash-visible while
        // armed.
        a.set_tenant_budget(ContainerId(7), TIGHT);
        assert_ne!(a.hash_value(), baseline);
        a.clear_tenant_budget(&ContainerId(7));
        assert_eq!(a.hash_value(), baseline);
    }

    #[test]
    fn real_transactions_respect_the_sender_budget() {
        let mut d = BinderDriver::new();
        let server = Pid(10);
        let client = Pid(20);
        d.open(server, Euid(1000), ContainerId(1), DeviceNamespaceId(1));
        d.open(client, Euid(10_050), ContainerId(7), DeviceNamespaceId(2));
        let server_handle = d
            .create_node(server, Rc::new(RefCell::new(tests_support::Echo)))
            .unwrap();
        let mut p = Parcel::new();
        p.push_binder(server_handle);
        d.translate_parcel(&mut p, server, client).unwrap();
        let handle = p.binder_at(0).unwrap();
        d.set_tenant_budget(ContainerId(7), TIGHT);
        for _ in 0..TIGHT.burst {
            d.transact(client, handle, 1, Parcel::new()).unwrap();
        }
        assert_eq!(
            d.transact(client, handle, 1, Parcel::new()),
            Err(BinderError::Throttled("rate"))
        );
        // The server's own (unbudgeted) container is unaffected.
        assert_eq!(d.throttle_count(&ContainerId(1)), 0);
    }
}

#[cfg(test)]
mod tests_support {
    use super::*;

    /// A service that echoes the parcel back (shared by QoS tests).
    pub struct Echo;

    impl BinderService for Echo {
        fn on_transact(
            &mut self,
            _code: u32,
            data: &Parcel,
            _ctx: &TransactionContext,
            _driver: &mut BinderDriver,
        ) -> Result<Parcel, BinderError> {
            Ok(data.clone())
        }
    }
}

#[cfg(test)]
mod reentrancy_tests {
    use super::*;
    use androne_container::DeviceNamespaceId;

    /// A service that calls back into itself through the driver.
    struct SelfCaller {
        own_handle: u32,
        own_pid: Pid,
    }

    impl BinderService for SelfCaller {
        fn on_transact(
            &mut self,
            code: u32,
            _data: &Parcel,
            _ctx: &TransactionContext,
            driver: &mut BinderDriver,
        ) -> Result<Parcel, BinderError> {
            if code == 1 {
                // Re-enter ourselves: must fail cleanly, not deadlock
                // or panic (analogous to binder thread exhaustion).
                return driver.transact(self.own_pid, self.own_handle, 2, Parcel::new());
            }
            Ok(Parcel::new())
        }
    }

    #[test]
    fn self_transaction_fails_cleanly() {
        let mut d = BinderDriver::new();
        let pid = Pid(1);
        d.open(pid, Euid(1000), ContainerId(1), DeviceNamespaceId(1));
        let svc = Rc::new(RefCell::new(SelfCaller {
            own_handle: 0,
            own_pid: pid,
        }));
        let handle = d.create_node(pid, svc.clone()).unwrap();
        svc.borrow_mut().own_handle = handle;
        assert_eq!(
            d.transact(pid, handle, 1, Parcel::new()),
            Err(BinderError::Reentrant)
        );
        // The service is usable again afterwards.
        assert!(d.transact(pid, handle, 2, Parcel::new()).is_ok());
    }
}
