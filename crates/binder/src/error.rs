//! Binder error types.

use std::fmt;

use androne_simkern::Pid;

/// Errors surfaced by the Binder driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinderError {
    /// The calling process never opened the Binder device.
    NotOpened(Pid),
    /// The handle is not in the caller's handle table.
    BadHandle(u32),
    /// The referenced node's owner has died.
    DeadObject,
    /// No Context Manager is registered in the caller's device
    /// namespace.
    NoContextManager,
    /// A Context Manager is already registered in this namespace.
    ContextManagerExists,
    /// The ioctl is restricted (e.g. `PUBLISH_TO_ALL_NS` from outside
    /// the device container).
    PermissionDenied(&'static str),
    /// Parcel read out of bounds or with the wrong value type.
    BadParcel(&'static str),
    /// A service re-entered itself (analogous to binder thread
    /// exhaustion deadlock).
    Reentrant,
    /// The remote service rejected the transaction.
    TransactionFailed(String),
    /// The requested service name is unknown to the ServiceManager.
    ServiceNotFound(String),
    /// The file descriptor is not in the caller's fd table.
    BadFd(u32),
    /// The transaction did not complete in time (injected fault or a
    /// stalled remote).
    TimedOut,
    /// The sender's per-tenant QoS budget rejected the call (token
    /// bucket empty, parcel over the size ceiling, fd or subscription
    /// budget exhausted). Carries the budget dimension that tripped.
    Throttled(&'static str),
}

impl fmt::Display for BinderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinderError::NotOpened(pid) => write!(f, "{pid} has not opened /dev/binder"),
            BinderError::BadHandle(h) => write!(f, "bad handle {h}"),
            BinderError::DeadObject => write!(f, "dead binder object"),
            BinderError::NoContextManager => write!(f, "no context manager in namespace"),
            BinderError::ContextManagerExists => write!(f, "context manager already set"),
            BinderError::PermissionDenied(what) => write!(f, "permission denied: {what}"),
            BinderError::BadParcel(what) => write!(f, "bad parcel: {what}"),
            BinderError::Reentrant => write!(f, "re-entrant transaction to self"),
            BinderError::TransactionFailed(why) => write!(f, "transaction failed: {why}"),
            BinderError::ServiceNotFound(name) => write!(f, "service '{name}' not found"),
            BinderError::BadFd(fd) => write!(f, "bad file descriptor {fd}"),
            BinderError::TimedOut => write!(f, "transaction timed out"),
            BinderError::Throttled(dim) => write!(f, "throttled by tenant budget: {dim}"),
        }
    }
}

impl std::error::Error for BinderError {}
