//! Parcels: Binder's transaction payload container.
//!
//! A parcel is an ordered sequence of typed values. Two value kinds
//! receive kernel translation when a parcel crosses a process
//! boundary: binder object references (handles are per-process) and
//! file descriptors (fd numbers are per-process). The paper relies on
//! both: device services hand virtual drone apps service references
//! and shared-memory/stream fds entirely through parcels, which is
//! what lets the device container multiplex hardware without any
//! per-device kernel support.
//!
//! Storage is copy-on-write: `clone()` shares the value buffer and
//! the first mutation of a shared parcel copies it. The echo/reply
//! idiom (`data.clone()` + a few pushes) therefore costs one
//! refcount bump plus a copy only when the reply diverges, and
//! parcels fanned out to many readers share one buffer. The parcel
//! also caches its object-reference count and wire size, so the
//! driver can skip translation entirely for scalar-only payloads —
//! the common case for sensor and telemetry traffic.

use std::rc::Rc;

use bytes::Bytes;

use crate::error::BinderError;

/// One typed value in a parcel.
#[derive(Debug, Clone, PartialEq)]
pub enum PValue {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// Double-precision float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Blob(Bytes),
    /// A binder object reference. The numeric value is a *handle in
    /// the space of whichever process currently holds the parcel*;
    /// the driver rewrites it in flight.
    Binder(u32),
    /// A file descriptor, likewise rewritten in flight.
    Fd(u32),
}

impl PValue {
    fn wire_size(&self) -> usize {
        match self {
            PValue::I32(_) => 4,
            PValue::I64(_) | PValue::F64(_) => 8,
            PValue::Str(s) => 4 + s.len(),
            PValue::Blob(b) => 4 + b.len(),
            PValue::Binder(_) | PValue::Fd(_) => 16,
        }
    }

    fn is_object_ref(&self) -> bool {
        matches!(self, PValue::Binder(_) | PValue::Fd(_))
    }
}

/// An ordered, cursor-read sequence of typed values with
/// copy-on-write storage.
#[derive(Debug, Clone, Default)]
pub struct Parcel {
    values: Rc<Vec<PValue>>,
    /// Cached count of Binder/Fd values (what translation rewrites).
    objrefs: u32,
    /// Cached count of Fd values specifically: the driver checks out
    /// per-process fd tables only for parcels that actually carry
    /// fds, and this cache makes that gate O(1).
    fds: u32,
    /// Cached wire size of all values.
    wire: usize,
}

impl PartialEq for Parcel {
    fn eq(&self, other: &Self) -> bool {
        // The caches are derived from the values, so equality is
        // value equality (Rc::ptr_eq shortcuts the shared case).
        Rc::ptr_eq(&self.values, &other.values) || self.values == other.values
    }
}

impl Parcel {
    /// Creates an empty parcel.
    pub fn new() -> Self {
        Parcel::default()
    }

    fn push(&mut self, v: PValue) -> &mut Self {
        self.wire += v.wire_size();
        if v.is_object_ref() {
            self.objrefs += 1;
        }
        if matches!(v, PValue::Fd(_)) {
            self.fds += 1;
        }
        Rc::make_mut(&mut self.values).push(v);
        self
    }

    /// Appends an i32.
    pub fn push_i32(&mut self, v: i32) -> &mut Self {
        self.push(PValue::I32(v))
    }

    /// Appends an i64.
    pub fn push_i64(&mut self, v: i64) -> &mut Self {
        self.push(PValue::I64(v))
    }

    /// Appends an f64.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push(PValue::F64(v))
    }

    /// Appends a string.
    pub fn push_str(&mut self, v: impl Into<String>) -> &mut Self {
        self.push(PValue::Str(v.into()))
    }

    /// Appends raw bytes.
    pub fn push_blob(&mut self, v: impl Into<Bytes>) -> &mut Self {
        self.push(PValue::Blob(v.into()))
    }

    /// Appends a binder reference (a handle valid in the *writing*
    /// process's handle table).
    pub fn push_binder(&mut self, handle: u32) -> &mut Self {
        self.push(PValue::Binder(handle))
    }

    /// Appends a file descriptor (valid in the writing process).
    pub fn push_fd(&mut self, fd: u32) -> &mut Self {
        self.push(PValue::Fd(fd))
    }

    /// Reads the value at `index` as i32.
    pub fn i32_at(&self, index: usize) -> Result<i32, BinderError> {
        match self.values.get(index) {
            Some(PValue::I32(v)) => Ok(*v),
            Some(_) => Err(BinderError::BadParcel("expected i32")),
            None => Err(BinderError::BadParcel("index out of bounds")),
        }
    }

    /// Reads the value at `index` as i64.
    pub fn i64_at(&self, index: usize) -> Result<i64, BinderError> {
        match self.values.get(index) {
            Some(PValue::I64(v)) => Ok(*v),
            Some(_) => Err(BinderError::BadParcel("expected i64")),
            None => Err(BinderError::BadParcel("index out of bounds")),
        }
    }

    /// Reads the value at `index` as f64.
    pub fn f64_at(&self, index: usize) -> Result<f64, BinderError> {
        match self.values.get(index) {
            Some(PValue::F64(v)) => Ok(*v),
            Some(_) => Err(BinderError::BadParcel("expected f64")),
            None => Err(BinderError::BadParcel("index out of bounds")),
        }
    }

    /// Reads the value at `index` as a string slice.
    pub fn str_at(&self, index: usize) -> Result<&str, BinderError> {
        match self.values.get(index) {
            Some(PValue::Str(v)) => Ok(v),
            Some(_) => Err(BinderError::BadParcel("expected str")),
            None => Err(BinderError::BadParcel("index out of bounds")),
        }
    }

    /// Reads the value at `index` as bytes.
    pub fn blob_at(&self, index: usize) -> Result<Bytes, BinderError> {
        match self.values.get(index) {
            Some(PValue::Blob(v)) => Ok(v.clone()),
            Some(_) => Err(BinderError::BadParcel("expected blob")),
            None => Err(BinderError::BadParcel("index out of bounds")),
        }
    }

    /// Reads the value at `index` as a binder handle (in the reading
    /// process's space, after kernel translation).
    pub fn binder_at(&self, index: usize) -> Result<u32, BinderError> {
        match self.values.get(index) {
            Some(PValue::Binder(v)) => Ok(*v),
            Some(_) => Err(BinderError::BadParcel("expected binder")),
            None => Err(BinderError::BadParcel("index out of bounds")),
        }
    }

    /// Reads the value at `index` as a file descriptor.
    pub fn fd_at(&self, index: usize) -> Result<u32, BinderError> {
        match self.values.get(index) {
            Some(PValue::Fd(v)) => Ok(*v),
            Some(_) => Err(BinderError::BadParcel("expected fd")),
            None => Err(BinderError::BadParcel("index out of bounds")),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the parcel is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates the raw values.
    pub fn values(&self) -> &[PValue] {
        &self.values
    }

    /// Whether any value needs kernel translation (binder handle or
    /// fd). False means the driver's no-translation fast path
    /// applies.
    pub fn has_object_refs(&self) -> bool {
        self.objrefs > 0
    }

    /// Whether any value is a file descriptor. False lets the driver
    /// translate a handle-bearing parcel without touching either
    /// process's fd table (the fd-slab checkout is skipped outright).
    pub fn has_fds(&self) -> bool {
        self.fds > 0
    }

    /// Whether two parcels share the same copy-on-write buffer
    /// (diagnostics: asserts both sharing and non-aliasing in tests).
    pub fn shares_storage_with(&self, other: &Parcel) -> bool {
        Rc::ptr_eq(&self.values, &other.values)
    }

    /// Mutable access to the raw values, used by the driver to
    /// rewrite handles/fds in flight. Copies the buffer first if it
    /// is shared.
    ///
    /// Invariant: callers may rewrite the *numbers* inside
    /// `PValue::Binder` / `PValue::Fd` but must not change any
    /// value's kind or payload length — the cached object-ref count
    /// and wire size are not recomputed.
    pub(crate) fn values_mut(&mut self) -> &mut Vec<PValue> {
        Rc::make_mut(&mut self.values)
    }

    /// Approximate on-wire size in bytes (for accounting). Cached at
    /// write time: O(1).
    pub fn wire_size(&self) -> usize {
        self.wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_round_trip() {
        let mut p = Parcel::new();
        p.push_i32(-7)
            .push_i64(1 << 40)
            .push_f64(2.5)
            .push_str("camera")
            .push_blob(&b"frame"[..])
            .push_binder(3)
            .push_fd(9);
        assert_eq!(p.i32_at(0).unwrap(), -7);
        assert_eq!(p.i64_at(1).unwrap(), 1 << 40);
        assert_eq!(p.f64_at(2).unwrap(), 2.5);
        assert_eq!(p.str_at(3).unwrap(), "camera");
        assert_eq!(p.blob_at(4).unwrap(), Bytes::from_static(b"frame"));
        assert_eq!(p.binder_at(5).unwrap(), 3);
        assert_eq!(p.fd_at(6).unwrap(), 9);
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut p = Parcel::new();
        p.push_str("x");
        assert!(matches!(p.i32_at(0), Err(BinderError::BadParcel(_))));
        assert!(matches!(p.str_at(5), Err(BinderError::BadParcel(_))));
    }

    #[test]
    fn wire_size_accounts_payloads() {
        let mut p = Parcel::new();
        p.push_str("ab").push_blob(&b"xyz"[..]).push_i32(0);
        assert_eq!(p.wire_size(), (4 + 2) + (4 + 3) + 4);
    }

    #[test]
    fn clone_shares_until_written() {
        let mut p = Parcel::new();
        p.push_str("shared").push_i32(1);
        let mut q = p.clone();
        assert!(p.shares_storage_with(&q));
        assert_eq!(p, q);

        q.push_i32(2);
        assert!(!p.shares_storage_with(&q), "write must unshare");
        assert_eq!(p.len(), 2, "original untouched");
        assert_eq!(q.len(), 3);
        assert_eq!(q.i32_at(2).unwrap(), 2);
    }

    #[test]
    fn object_ref_tracking() {
        let mut p = Parcel::new();
        p.push_i32(1).push_str("scalar only");
        assert!(!p.has_object_refs());
        p.push_binder(4);
        assert!(p.has_object_refs());

        let mut q = Parcel::new();
        q.push_fd(7);
        assert!(q.has_object_refs());
    }

    #[test]
    fn fd_tracking_is_distinct_from_handle_tracking() {
        // A handle-only parcel has object refs but no fds: the
        // driver's fd-slab checkout is skipped for it outright.
        let mut p = Parcel::new();
        p.push_binder(3).push_binder(4).push_str("svc");
        assert!(p.has_object_refs());
        assert!(!p.has_fds());

        p.push_fd(9);
        assert!(p.has_fds());
        assert!(p.clone().has_fds(), "cache survives clone");
    }

    #[test]
    fn wire_size_is_preserved_across_clone_and_rewrite() {
        let mut p = Parcel::new();
        p.push_binder(1).push_blob(&b"abcd"[..]);
        let size = p.wire_size();
        let mut q = p.clone();
        assert_eq!(q.wire_size(), size);
        // Simulate the driver rewriting a handle number in flight.
        if let Some(PValue::Binder(h)) = q.values_mut().first_mut() {
            *h = 99;
        }
        assert_eq!(q.wire_size(), size);
        assert!(q.has_object_refs());
        assert_eq!(p.binder_at(0).unwrap(), 1, "COW kept original intact");
        assert_eq!(q.binder_at(0).unwrap(), 99);
    }
}
