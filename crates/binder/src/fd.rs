//! File descriptions passable through Binder.
//!
//! Device services communicate bulk data (camera frames, audio) to
//! apps by sharing a file descriptor inside a Binder message (paper
//! Section 4.2: "fully encapsulated in Binder messages or by using a
//! file descriptor shared via a Binder message"). The kernel-side
//! object here is a [`FileDescription`]; per-process fd numbers map to
//! shared references to it.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;

/// The backing object behind a shared file descriptor.
#[derive(Debug, Clone)]
pub enum FilePayload {
    /// Anonymous shared memory (ashmem), e.g. a sensor sample ring.
    Shmem(Rc<RefCell<Vec<u8>>>),
    /// A byte-message stream, e.g. a camera frame queue.
    Stream(Rc<RefCell<VecDeque<Bytes>>>),
    /// An immutable blob, e.g. a file handed to an app.
    Plain(Bytes),
}

/// A kernel file description (the thing fd numbers point at).
#[derive(Debug, Clone)]
pub struct FileDescription {
    /// Human-readable label for diagnostics ("camera0-stream").
    pub label: String,
    /// The shared payload.
    pub payload: FilePayload,
}

/// Shared reference to a file description; duplicating an fd clones
/// this reference, exactly like `dup()` semantics.
pub type FileRef = Rc<FileDescription>;

/// Creates a stream-backed file description and returns both the
/// reference and the producer-side queue handle.
pub fn new_stream(label: impl Into<String>) -> (FileRef, Rc<RefCell<VecDeque<Bytes>>>) {
    let queue = Rc::new(RefCell::new(VecDeque::new()));
    let file = Rc::new(FileDescription {
        label: label.into(),
        payload: FilePayload::Stream(Rc::clone(&queue)),
    });
    (file, queue)
}

/// Creates a shared-memory-backed file description and returns both
/// the reference and the memory handle.
pub fn new_shmem(label: impl Into<String>, size: usize) -> (FileRef, Rc<RefCell<Vec<u8>>>) {
    let mem = Rc::new(RefCell::new(vec![0u8; size]));
    let file = Rc::new(FileDescription {
        label: label.into(),
        payload: FilePayload::Shmem(Rc::clone(&mem)),
    });
    (file, mem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_shared_between_producer_and_fd_holder() {
        let (file, producer) = new_stream("camera0");
        producer.borrow_mut().push_back(Bytes::from_static(b"frame1"));
        match &file.payload {
            FilePayload::Stream(q) => {
                assert_eq!(q.borrow_mut().pop_front().unwrap(), Bytes::from_static(b"frame1"));
            }
            _ => panic!("expected stream"),
        }
    }

    #[test]
    fn shmem_writes_are_visible_through_the_fd() {
        let (file, mem) = new_shmem("imu-ring", 8);
        mem.borrow_mut()[0] = 42;
        match &file.payload {
            FilePayload::Shmem(m) => assert_eq!(m.borrow()[0], 42),
            _ => panic!("expected shmem"),
        }
    }
}
