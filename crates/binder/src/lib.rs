//! # androne-binder
//!
//! Android Binder IPC for the AnDrone reproduction, including the
//! paper's kernel modifications (Section 4.1–4.2): device-namespaced
//! Context Managers, the `PUBLISH_TO_ALL_NS` and `PUBLISH_TO_DEV_CON`
//! ioctls, and sender container ids in transaction data.
//!
//! - [`parcel`]: typed transaction payloads with in-flight handle and
//!   fd translation.
//! - [`fd`]: shareable file descriptions (shmem, streams) passed
//!   through parcels.
//! - [`driver`]: the driver itself — nodes, per-process handle
//!   tables, synchronous transaction routing, publish ioctls.
//! - [`service_manager`]: the per-container ServiceManager with
//!   AnDrone's cross-container publishing behaviour.

pub mod driver;
pub mod error;
pub mod fd;
pub mod parcel;
pub mod service_manager;

pub use driver::{
    scoped_service_name, tenant_label, transaction_cost, AggregateQos, BinderDriver,
    BinderFaultInjection, BinderService, DriverStats, NodeId, ServiceRef, TenantQos,
    TransactionContext, BINDER_LATENCY_BOUNDS, KERNEL_PID,
};
pub use error::BinderError;
pub use fd::{new_shmem, new_stream, FileDescription, FilePayload, FileRef};
pub use parcel::{PValue, Parcel};
pub use service_manager::{codes as sm_codes, ServiceManager, ACTIVITY_MANAGER};

use androne_simkern::Pid;

/// Convenience: asks the caller's Context Manager (handle 0) for a
/// service by name, returning a handle in the caller's space.
pub fn get_service(
    driver: &mut BinderDriver,
    caller: Pid,
    name: &str,
) -> Result<u32, BinderError> {
    let mut data = Parcel::new();
    data.push_str(name);
    let reply = driver.transact(caller, 0, sm_codes::GET_SERVICE, data)?;
    reply.binder_at(0)
}

/// Convenience: registers a service with the caller's Context
/// Manager under `name`.
pub fn add_service(
    driver: &mut BinderDriver,
    caller: Pid,
    name: &str,
    handle: u32,
) -> Result<(), BinderError> {
    let mut data = Parcel::new();
    data.push_str(name);
    data.push_binder(handle);
    driver.transact(caller, 0, sm_codes::ADD_SERVICE, data)?;
    Ok(())
}
