//! The per-container ServiceManager (Binder Context Manager).
//!
//! Every Android instance runs a userspace ServiceManager holding the
//! name → service mapping; it is always reachable through handle 0.
//! AnDrone runs one per container (device namespace) and teaches two
//! of them new tricks:
//!
//! - the **device container's** ServiceManager checks each new
//!   registration against the pre-specified shared-service list
//!   (paper Table 1) and publishes matches to every virtual drone
//!   namespace via `PUBLISH_TO_ALL_NS`;
//! - **every container's** ServiceManager forwards its
//!   ActivityManager registration to the device container via
//!   `PUBLISH_TO_DEV_CON`, so shared device services can later route
//!   `checkPermission()` to the calling container's ActivityManager.

use std::collections::{BTreeMap, BTreeSet};

use androne_simkern::Pid;

use crate::driver::{BinderDriver, BinderService, TransactionContext};
use crate::error::BinderError;
use crate::parcel::Parcel;

/// ServiceManager transaction codes.
pub mod codes {
    /// Register a service: `{str name, binder}` → `{}`.
    pub const ADD_SERVICE: u32 = 1;
    /// Look up a service: `{str name}` → `{binder}`.
    pub const GET_SERVICE: u32 = 2;
    /// List service names: `{}` → `{i32 n, str...}`.
    pub const LIST_SERVICES: u32 = 3;
}

/// The name Android's ActivityManager registers under.
pub const ACTIVITY_MANAGER: &str = "activity";

/// A per-container ServiceManager.
pub struct ServiceManager {
    /// The process this ServiceManager runs as (needed to issue
    /// ioctls against its own handle table).
    own_pid: Pid,
    /// Whether this is the device container's ServiceManager.
    device_container_sm: bool,
    /// Names that must be published to all namespaces (Table 1).
    shared_names: BTreeSet<String>,
    /// name → handle *in this ServiceManager's process space*.
    services: BTreeMap<String, u32>,
}

impl ServiceManager {
    /// Creates a virtual drone / flight container ServiceManager.
    pub fn new(own_pid: Pid) -> Self {
        ServiceManager {
            own_pid,
            device_container_sm: false,
            shared_names: BTreeSet::new(),
            services: BTreeMap::new(),
        }
    }

    /// Creates the device container's ServiceManager with the list of
    /// services to share across namespaces.
    pub fn new_device_container(
        own_pid: Pid,
        shared_names: impl IntoIterator<Item = String>,
    ) -> Self {
        ServiceManager {
            own_pid,
            device_container_sm: true,
            shared_names: shared_names.into_iter().collect(),
            services: BTreeMap::new(),
        }
    }

    /// Names currently registered (diagnostics/tests), borrowed —
    /// callers that need owned strings can collect.
    pub fn service_names(&self) -> impl Iterator<Item = &str> {
        self.services.keys().map(String::as_str)
    }

    /// Whether a name is registered.
    pub fn has_service(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    fn add_service(
        &mut self,
        data: &Parcel,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        let name = data.str_at(0)?.to_string();
        let handle = data.binder_at(1)?;
        self.services.insert(name.clone(), handle);

        // Device container: publish Table 1 services everywhere.
        // Skip kernel-originated registrations (replays) to avoid
        // publishing loops.
        if self.device_container_sm
            && self.shared_names.contains(&name)
            && ctx.sender_pid != crate::driver::KERNEL_PID
        {
            driver.publish_to_all_ns(self.own_pid, &name, handle)?;
        }

        // Every container: forward the ActivityManager registration
        // to the device container (PUBLISH_TO_DEV_CON). The device
        // container's own ActivityManager needs no forwarding.
        if !self.device_container_sm
            && name == ACTIVITY_MANAGER
            && ctx.sender_pid != crate::driver::KERNEL_PID
        {
            driver.publish_to_dev_con(self.own_pid, &name, handle)?;
        }
        Ok(Parcel::new())
    }

    fn get_service(&self, data: &Parcel) -> Result<Parcel, BinderError> {
        let name = data.str_at(0)?;
        let handle = self
            .services
            .get(name)
            .copied()
            .ok_or_else(|| BinderError::ServiceNotFound(name.to_string()))?;
        let mut reply = Parcel::new();
        reply.push_binder(handle);
        Ok(reply)
    }

    fn list_services(&self) -> Parcel {
        // The only allocations here are the reply parcel's own
        // strings; the registry itself is iterated borrowed.
        let mut reply = Parcel::new();
        reply.push_i32(self.services.len() as i32);
        for name in self.service_names() {
            reply.push_str(name);
        }
        reply
    }
}

impl BinderService for ServiceManager {
    fn on_transact(
        &mut self,
        code: u32,
        data: &Parcel,
        ctx: &TransactionContext,
        driver: &mut BinderDriver,
    ) -> Result<Parcel, BinderError> {
        match code {
            codes::ADD_SERVICE => self.add_service(data, ctx, driver),
            codes::GET_SERVICE => self.get_service(data),
            codes::LIST_SERVICES => Ok(self.list_services()),
            other => Err(BinderError::TransactionFailed(format!(
                "unknown ServiceManager code {other}"
            ))),
        }
    }
}
