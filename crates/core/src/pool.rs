//! A deterministic-by-construction worker pool for fleet waves.
//!
//! The fleet executor runs each flight as a single-threaded *island*
//! (the drone's `Rc`/`RefCell` hot paths never cross a thread): a
//! wave's flyable plans are packaged into `Send`-able work items, the
//! pool fans them out over `std::thread`, and results come back in
//! **input order** regardless of completion order. Determinism never
//! depends on scheduling — each item's output slot is fixed by its
//! index, and the merge downstream consumes slots sequentially.
//!
//! Panics inside a worker are contained with `catch_unwind` and
//! surfaced as [`WorkerError::Panicked`] in that item's slot; the
//! other items still complete. The single-threaded path (one worker,
//! or one item) runs inline under the *same* panic guard, so panic
//! semantics are identical at every thread count.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Why a work item produced no output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// The work closure panicked; the payload's message, if any.
    Panicked(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// A fixed-width pool of OS worker threads.
///
/// `new(1)` is the sequential executor: items run inline on the
/// caller's thread, in order, with no thread spawned — but still
/// under the panic guard, so a panicking item yields
/// [`WorkerError::Panicked`] instead of unwinding the caller.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

/// Renders a `catch_unwind` payload as best-effort text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one item under the uniform panic guard.
fn guarded<I, O>(work: &(impl Fn(I) -> O + Sync), item: I) -> Result<O, WorkerError> {
    catch_unwind(AssertUnwindSafe(|| work(item))).map_err(|p| WorkerError::Panicked(panic_message(p)))
}

/// Recovers a mutex guard even if a holder panicked — the queue and
/// slot structures stay consistent under item panics because workers
/// never panic while holding a lock (the work closure runs unlocked).
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl WorkerPool {
    /// A pool of `threads` workers; 0 is clamped to 1.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The configured width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work` over `items`, returning one result per item **in
    /// input order**. Items are pulled from a shared queue in index
    /// order; each result lands in the slot its index fixed up front,
    /// so the output vector is independent of which worker ran what
    /// and when it finished.
    pub fn run<I, O, F>(&self, items: Vec<I>, work: F) -> Vec<Result<O, WorkerError>>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.into_iter().map(|item| guarded(&work, item)).collect();
        }

        let len = items.len();
        let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
        let slots: Mutex<Vec<Option<Result<O, WorkerError>>>> =
            Mutex::new((0..len).map(|_| None).collect());
        let workers = self.threads.min(len);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let next = lock_recover(&queue).pop_front();
                    let Some((idx, item)) = next else { break };
                    let out = guarded(&work, item);
                    lock_recover(&slots)[idx] = Some(out);
                });
            }
        });

        // All workers have joined; take the slots back out of the
        // mutex (recovering from poison the same way as the workers).
        slots
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    // Unreachable: the scope joins every worker, and a
                    // worker fills its slot before pulling the next
                    // item — but a diagnosable error beats a panic.
                    Err(WorkerError::Panicked("worker abandoned its slot".to_string()))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run((0..64).collect(), |n: u64| n * n);
        let values: Vec<u64> = out.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(values, (0..64).map(|n| n * n).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_item_is_contained() {
        let pool = WorkerPool::new(3);
        let out = pool.run(vec![1u32, 2, 3, 4], |n| {
            assert!(n != 3, "item three exploded");
            n + 10
        });
        assert_eq!(out[0], Ok(11));
        assert_eq!(out[1], Ok(12));
        match &out[2] {
            Err(WorkerError::Panicked(msg)) => assert!(msg.contains("item three exploded")),
            other => panic!("expected contained panic, got {other:?}"),
        }
        assert_eq!(out[3], Ok(14));
    }

    #[test]
    fn single_thread_path_has_identical_panic_semantics() {
        let pool = WorkerPool::new(1);
        let out = pool.run(vec![1u32, 2], |n| {
            assert!(n != 2, "boom");
            n
        });
        assert_eq!(out[0], Ok(1));
        assert!(matches!(out[1], Err(WorkerError::Panicked(_))));
    }

    #[test]
    fn zero_width_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pool = WorkerPool::new(8);
        let out = pool.run(Vec::<u32>::new(), |n| n);
        assert!(out.is_empty());
    }
}
