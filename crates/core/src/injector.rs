//! The fault injector: drives a [`FaultPlan`] against a live drone.
//!
//! One injector wraps one plan's [`FaultClock`] and is called once
//! per simulated second (from the flight loop's observer hook) with
//! the tick index and the drone. At each tick it applies every fault
//! transition scheduled there — arming faults into the subsystem the
//! fault targets, disarming them back out — and records what it did
//! in a human-readable action log for tests.
//!
//! Determinism contract: with an empty plan the injector does zero
//! work and draws nothing from any RNG stream, so an
//! injector-observed flight is bit-identical to an unobserved one.
//! With a non-empty plan, every draw it makes (the burst-loss uplink
//! seed) comes from the kernel RNG stream at a plan-determined tick,
//! so the same plan replays identically under the dual-run sanitizer.

use androne_binder::BinderFaultInjection;
use androne_hal::SensorFaultMode;
use androne_obs::{Subsystem, TraceEvent};
use androne_simkern::{FaultClock, FaultKind, FaultPlan, LinkModel, SensorChannel};
use rand::Rng;

use crate::drone::Drone;
use crate::probe::FlightProbe;

/// Applies a fault plan to a drone, one simulated second at a time.
pub struct FaultInjector {
    clock: FaultClock,
    actions: Vec<String>,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            clock: FaultClock::new(plan),
            actions: Vec::new(),
        }
    }

    /// The plan being driven.
    pub fn plan(&self) -> &FaultPlan {
        self.clock.plan()
    }

    /// Human-readable log of every transition applied so far.
    pub fn actions(&self) -> &[String] {
        &self.actions
    }

    /// Applies every fault transition scheduled at `tick` (whole
    /// simulated seconds since launch). Call once per second from the
    /// flight observer.
    pub fn apply_tick(&mut self, tick: u64, drone: &mut Drone) {
        if self.clock.plan().is_empty() {
            return;
        }
        let transitions = self.clock.transitions_at(tick);
        for t in transitions {
            let Some(kind) = self.clock.plan().events.get(t.index).map(|e| e.kind.clone())
            else {
                continue;
            };
            self.apply_transition(tick, kind, t.armed, drone);
        }
    }

    /// Records one applied transition: the action log line, a fault
    /// counter bump, and a `FaultEdge` trace record on the drone's
    /// bus.
    fn record(&mut self, drone: &Drone, kind: &'static str, armed: bool, action: String) {
        drone.obs.count("fault.transitions", 1);
        drone.obs.emit(Subsystem::Fault, || TraceEvent::FaultEdge {
            kind,
            armed,
            detail: action.clone(),
        });
        self.actions.push(action);
    }

    fn apply_transition(&mut self, tick: u64, kind: FaultKind, armed: bool, drone: &mut Drone) {
        let verb = if armed { "arm" } else { "disarm" };
        match kind {
            FaultKind::SensorDropout { channel } => {
                set_channel_mode(drone, channel, on_off(armed, SensorFaultMode::Dropout));
                let action = format!("t={tick} {verb} dropout {}", channel_name(channel));
                self.record(drone, "sensor-dropout", armed, action);
            }
            FaultKind::SensorStuck { channel } => {
                set_channel_mode(drone, channel, on_off(armed, SensorFaultMode::Stuck));
                let action = format!("t={tick} {verb} stuck {}", channel_name(channel));
                self.record(drone, "sensor-stuck", armed, action);
            }
            FaultKind::SensorBias { channel, bias } => {
                set_channel_mode(drone, channel, on_off(armed, SensorFaultMode::Bias(bias)));
                let action = format!(
                    "t={tick} {verb} bias({bias:.3}) {}",
                    channel_name(channel)
                );
                self.record(drone, "sensor-bias", armed, action);
            }
            FaultKind::GpsLoss => {
                // GPS loss is a dropout of the GPS channel: the
                // estimator dead-reckons on IMU + barometer.
                set_channel_mode(drone, SensorChannel::Gps, on_off(armed, SensorFaultMode::Dropout));
                self.record(drone, "gps-loss", armed, format!("t={tick} {verb} gps-loss"));
            }
            FaultKind::LinkPartition => {
                drone.proxy.set_link_partitioned(armed);
                self.record(
                    drone,
                    "link-partition",
                    armed,
                    format!("t={tick} {verb} link-partition"),
                );
            }
            FaultKind::LinkBurstLoss { burst } => {
                if armed {
                    let seed: u64 = drone.kernel.borrow_mut().rng().gen();
                    let mut model = LinkModel::cellular_lte();
                    model.burst = Some(burst);
                    drone.proxy.set_uplink_loss(model, seed);
                } else {
                    drone.proxy.clear_uplink_loss();
                }
                self.record(
                    drone,
                    "link-burst-loss",
                    armed,
                    format!("t={tick} {verb} link-burst-loss"),
                );
            }
            FaultKind::BinderFailure { period } => {
                drone.driver.set_fault_injection(if armed {
                    Some(BinderFaultInjection {
                        period,
                        timeout: false,
                    })
                } else {
                    None
                });
                let action = format!("t={tick} {verb} binder-failure/{period}");
                self.record(drone, "binder-failure", armed, action);
            }
            FaultKind::BinderTimeout { period } => {
                drone.driver.set_fault_injection(if armed {
                    Some(BinderFaultInjection {
                        period,
                        timeout: true,
                    })
                } else {
                    None
                });
                let action = format!("t={tick} {verb} binder-timeout/{period}");
                self.record(drone, "binder-timeout", armed, action);
            }
            FaultKind::ContainerCrash { target } => {
                // A named target crashes that virtual drone; `None`
                // falls back to the first deployed one (BTreeMap
                // order). Disarm performs the supervised restart.
                let name = match target {
                    Some(t) if drone.vdrones.contains_key(&t) => t,
                    Some(t) => {
                        let action =
                            format!("t={tick} {verb} container-crash {t}: not deployed");
                        self.record(drone, "container-crash", armed, action);
                        return;
                    }
                    None => match drone.vdrones.keys().next().cloned() {
                        Some(first) => first,
                        None => {
                            let action =
                                format!("t={tick} {verb} container-crash: no vdrones");
                            self.record(drone, "container-crash", armed, action);
                            return;
                        }
                    },
                };
                let outcome = if armed {
                    drone.crash_vdrone(&name)
                } else {
                    drone.supervised_restart_vdrone(&name)
                };
                let action = match outcome {
                    Ok(()) => format!("t={tick} {verb} container-crash {name}"),
                    Err(e) => format!("t={tick} {verb} container-crash {name}: {e}"),
                };
                self.record(drone, "container-crash", armed, action);
            }
            FaultKind::BatteryDegradation { health } => {
                let health = if armed { health } else { 1.0 };
                drone
                    .board
                    .borrow()
                    .truth
                    .borrow_mut()
                    .battery_health = health;
                let action = format!("t={tick} {verb} battery-degradation({health:.2})");
                self.record(drone, "battery-degradation", armed, action);
            }
        }
    }
}

impl FlightProbe for FaultInjector {
    fn on_tick(&mut self, tick: u64, drone: &mut Drone) {
        self.apply_tick(tick, drone);
    }
}

fn on_off(armed: bool, mode: SensorFaultMode) -> SensorFaultMode {
    if armed {
        mode
    } else {
        SensorFaultMode::Nominal
    }
}

fn set_channel_mode(drone: &mut Drone, channel: SensorChannel, mode: SensorFaultMode) {
    let mut board = drone.board.borrow_mut();
    match channel {
        SensorChannel::Imu => board.faults.imu = mode,
        SensorChannel::Gps => board.faults.gps = mode,
        SensorChannel::Baro => board.faults.baro = mode,
    }
}

fn channel_name(channel: SensorChannel) -> &'static str {
    match channel {
        SensorChannel::Imu => "imu",
        SensorChannel::Gps => "gps",
        SensorChannel::Baro => "baro",
    }
}
