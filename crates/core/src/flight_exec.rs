//! Flight execution: the loop that ties the autopilot, the VDC, and
//! MAVProxy together for one physical flight.
//!
//! This is the paper's Figure 4 in motion on the drone side: the
//! flight planner flies the drone waypoint to waypoint; at each
//! waypoint the VDC grants the owning virtual drone its devices and
//! (if requested) flight control through its VFC; departure revokes
//! them with enforcement; geofence breaches propagate to the app via
//! the SDK; energy and time are charged against each virtual drone's
//! allotment as it operates.

use std::collections::BTreeMap;

use androne_flight::Geofence;
use androne_obs::{Subsystem, TraceEvent};
use androne_planner::{Autopilot, FlightPlan, PilotEvent};

use crate::drone::Drone;
use crate::probe::{FlightProbe, NoProbe};

/// One entry in the flight log.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightLog {
    /// Launched from base.
    Launched,
    /// A virtual drone was handed its waypoint.
    WaypointHandover {
        /// Virtual drone name.
        owner: String,
        /// Index into *that virtual drone's* waypoint list.
        waypoint: usize,
        /// Whether flight control was granted.
        flight_control: bool,
    },
    /// A virtual drone's waypoint service ended.
    WaypointEnd {
        /// Virtual drone name.
        owner: String,
        /// Index into the virtual drone's waypoint list.
        waypoint: usize,
        /// Why it ended.
        reason: EndReason,
        /// Pids terminated by revocation enforcement.
        enforced_kills: usize,
    },
    /// The geofence was breached and recovered.
    GeofenceBreach {
        /// The controlling virtual drone.
        owner: String,
    },
    /// The flight was aborted (e.g. weather) and returned to base.
    Aborted,
    /// The drone landed back at base.
    Landed,
}

/// Why a waypoint service — or the flight as a whole — ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndReason {
    /// The app called `waypointCompleted()` (or the flight landed
    /// with its plan done).
    Completed,
    /// The energy allotment ran out.
    EnergyExhausted,
    /// The time allotment ran out (or the flight hit its safety cap).
    TimeExhausted,
    /// The flight was aborted.
    Aborted,
    /// The ground link was lost; the failsafe ladder brought the
    /// drone home.
    LinkLost,
    /// The VDC watchdog revoked the virtual drone (stalled or
    /// repeatedly violating policy).
    WatchdogRevoked,
}

impl EndReason {
    /// Stable display tag, used by the black-box recorder and trace.
    pub fn name(&self) -> &'static str {
        match self {
            EndReason::Completed => "Completed",
            EndReason::EnergyExhausted => "EnergyExhausted",
            EndReason::TimeExhausted => "TimeExhausted",
            EndReason::Aborted => "Aborted",
            EndReason::LinkLost => "LinkLost",
            EndReason::WatchdogRevoked => "WatchdogRevoked",
        }
    }
}

/// Outcome of one executed flight.
#[derive(Debug)]
pub struct FlightOutcome {
    /// Ordered flight log.
    pub log: Vec<FlightLog>,
    /// Total battery energy consumed, joules.
    pub total_energy_j: f64,
    /// Energy charged to each virtual drone at its waypoints.
    pub vdrone_energy_j: BTreeMap<String, f64>,
    /// Whether the drone completed the plan (vs. aborted).
    pub completed: bool,
    /// Simulated flight duration, seconds.
    pub duration_s: f64,
    /// Why the flight as a whole ended. Every flight ends in a
    /// defined reason — a chaos-gate invariant.
    pub end_reason: EndReason,
}

/// Optional mid-flight abort trigger: checked once per simulated
/// second; returning `true` sends the drone home.
pub type AbortCheck<'a> = Box<dyn FnMut(f64) -> bool + 'a>;

/// Sim-nanoseconds per executor step (400 steps per simulated
/// second).
const STEP_NS: u64 = 2_500_000;

/// Stable tag + detail + counter name for one flight-log entry, used
/// when mirroring it onto the trace bus.
fn event_trace_parts(event: &FlightLog) -> (&'static str, String, &'static str) {
    match event {
        FlightLog::Launched => ("launched", String::new(), "flight.launched"),
        FlightLog::WaypointHandover {
            owner,
            waypoint,
            flight_control,
        } => (
            "handover",
            format!("{owner} wp{waypoint} vfc={flight_control}"),
            "flight.handovers",
        ),
        FlightLog::WaypointEnd {
            owner,
            waypoint,
            reason,
            enforced_kills,
        } => (
            "waypoint-end",
            format!("{owner} wp{waypoint} {} kills={enforced_kills}", reason.name()),
            "flight.waypoint_ends",
        ),
        FlightLog::GeofenceBreach { owner } => {
            ("geofence-breach", owner.clone(), "flight.breaches")
        }
        FlightLog::Aborted => ("aborted", String::new(), "flight.aborts"),
        FlightLog::Landed => ("landed", String::new(), "flight.landings"),
    }
}

/// Appends one flight-log entry: mirrors it onto the trace bus,
/// bumps its counter, and fires the probe's `on_event` hook before
/// the entry lands in the log.
fn push_event(
    log: &mut Vec<FlightLog>,
    probe: &mut dyn FlightProbe,
    tick: u64,
    drone: &mut Drone,
    event: FlightLog,
) {
    let (phase, detail, counter) = event_trace_parts(&event);
    drone.obs.emit(Subsystem::Flight, || TraceEvent::FlightPhase {
        phase,
        detail,
    });
    drone.obs.count(counter, 1);
    probe.on_event(tick, &event, drone);
    log.push(event);
}

/// Executes `plan` on `drone` to completion (or abort), with a
/// safety cap of `max_sim_seconds`.
pub fn execute_flight(
    drone: &mut Drone,
    plan: FlightPlan,
    max_sim_seconds: f64,
    abort: Option<AbortCheck<'_>>,
) -> FlightOutcome {
    execute_flight_probed(drone, plan, max_sim_seconds, abort, &mut NoProbe)
}

/// [`execute_flight`] with a [`FlightProbe`] riding the flight: the
/// probe's `on_tick` fires once per simulated second, `on_event` at
/// every flight-log entry, and `on_end` with the finished outcome.
/// Compose several probes with [`crate::probe::ProbeStack`].
pub fn execute_flight_probed(
    drone: &mut Drone,
    plan: FlightPlan,
    max_sim_seconds: f64,
    mut abort: Option<AbortCheck<'_>>,
    probe: &mut dyn FlightProbe,
) -> FlightOutcome {
    let mut pilot = Autopilot::new(plan);
    let mut log = Vec::new();
    let mut vdrone_energy: BTreeMap<String, f64> = BTreeMap::new();
    let mut completed = false;
    let mut aborted = false;

    // Per-waypoint service tracking.
    let mut active: Option<ActiveService> = None;
    let mut breaches_seen = 0u64;
    let energy_at_start = drone.sitl.energy_consumed_j();
    // Virtual drones the watchdog has revoked: their remaining legs
    // are overflown without a handover.
    let mut revoked: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    // The failsafe only terminates a flight that actually launched.
    let mut airborne_seen = false;
    let mut link_lost = false;

    struct ActiveService {
        owner: String,
        wp_index: usize,
        last_energy: f64,
        end_reason: EndReason,
        // Watchdog bookkeeping (proxy counters at last observation).
        last_forwarded: u64,
        denied_at_start: u64,
        stall_secs: u64,
        // Progress watchdog: VDC heartbeat count at last observation
        // and seconds spent forwarding commands without a new mark.
        last_progress: u64,
        busy_no_progress_secs: u64,
    }

    let max_steps = (max_sim_seconds * 400.0) as u64;
    // `(steps elapsed, reason)` when the flight ends inside the loop.
    let mut end: Option<(u64, EndReason)> = None;
    for step in 0..max_steps {
        let tick = step / 400;
        let now_ns = step.saturating_mul(STEP_NS);
        drone.obs.set_now_ns(now_ns);
        // Advance the Binder driver's QoS clock alongside the trace
        // clock: token buckets refill on sim time. A plain store with
        // no hashed effect while no tenant budget is armed.
        drone.driver.set_now_ns(now_ns);
        let events = pilot.step(&mut drone.proxy, &mut drone.sitl);
        for event in events {
            match event {
                PilotEvent::Launched => {
                    push_event(&mut log, probe, tick, drone, FlightLog::Launched)
                }
                PilotEvent::ArrivedAtWaypoint { index, owner } => {
                    let vdc_revoked = drone
                        .vdc
                        .borrow()
                        .record(&owner)
                        .is_some_and(|r| r.revoked);
                    if revoked.contains(&owner) || vdc_revoked {
                        // A watchdog-revoked virtual drone gets no
                        // handover; the pilot overflies its leg. The
                        // VDC flag covers revocations initiated
                        // outside this loop (the QoS escalation
                        // ladder).
                        pilot.release_waypoint();
                        continue;
                    }
                    // Which of the owner's waypoints is this?
                    let wp_index = drone
                        .vdc
                        .borrow()
                        .record(&owner)
                        .map(|r| r.waypoints_completed())
                        .unwrap_or(0);
                    // Retarget the VFC fence at this leg.
                    let leg = &pilot.plan().legs[index];
                    let fence = Geofence::new(leg.position, leg.max_radius_m);
                    if let Some(vfc) = drone.proxy.vfc_mut(&owner) {
                        vfc.retarget(fence);
                    }
                    drone.vdc.borrow_mut().on_waypoint_arrived(&owner, wp_index);
                    let flight_control = drone.flight_control_allowed(&owner);
                    if flight_control {
                        drone.proxy.activate_vfc(&owner);
                    }
                    push_event(
                        &mut log,
                        probe,
                        tick,
                        drone,
                        FlightLog::WaypointHandover {
                            owner: owner.clone(),
                            waypoint: wp_index,
                            flight_control,
                        },
                    );
                    let (fwd, den) = drone.proxy.client_activity(&owner).unwrap_or((0, 0));
                    let progress = drone
                        .vdc
                        .borrow()
                        .record(&owner)
                        .map(|r| r.progress_marks())
                        .unwrap_or(0);
                    active = Some(ActiveService {
                        owner,
                        wp_index,
                        last_energy: drone.sitl.energy_consumed_j(),
                        end_reason: EndReason::Completed,
                        last_forwarded: fwd,
                        denied_at_start: den,
                        stall_secs: 0,
                        last_progress: progress,
                        busy_no_progress_secs: 0,
                    });
                }
                PilotEvent::EnergyExhausted { .. } => {
                    if let Some(a) = active.as_mut() {
                        a.end_reason = EndReason::EnergyExhausted;
                    }
                }
                PilotEvent::TimeExhausted { .. } => {
                    if let Some(a) = active.as_mut() {
                        a.end_reason = EndReason::TimeExhausted;
                    }
                }
                PilotEvent::DepartedWaypoint { index } => {
                    if let Some(a) = active.take() {
                        // Final energy charge for this service window.
                        let now_e = drone.sitl.energy_consumed_j();
                        let delta = now_e - a.last_energy;
                        drone.vdc.borrow_mut().charge_energy(&a.owner, delta);
                        *vdrone_energy.entry(a.owner.clone()).or_default() += delta;

                        drone
                            .vdc
                            .borrow_mut()
                            .on_waypoint_departed(&a.owner, a.wp_index);
                        if a.end_reason == EndReason::WatchdogRevoked {
                            // Departure bookkeeping reset the phase
                            // to Transit; a revoked virtual drone
                            // stays finished.
                            let container =
                                drone.vdc.borrow().record(&a.owner).map(|r| r.container);
                            if let Some(c) = container {
                                let access = drone.vdc.borrow().access();
                                access
                                    .borrow_mut()
                                    .set_phase(c, androne_vdc::FlightPhase::Finished);
                            }
                        }
                        let kills = drone.enforce_revocation(&a.owner).len();

                        // VFC: retarget at the owner's next leg, or
                        // land the view for good. A revoked owner's
                        // view always lands.
                        let next_leg = pilot.plan().legs[index + 1..]
                            .iter()
                            .find(|l| l.owner == a.owner)
                            .filter(|_| a.end_reason != EndReason::WatchdogRevoked)
                            .map(|l| Geofence::new(l.position, l.max_radius_m));
                        match next_leg {
                            Some(fence) => {
                                if let Some(vfc) = drone.proxy.vfc_mut(&a.owner) {
                                    vfc.retarget(fence);
                                }
                            }
                            None => {
                                let pos = drone.sitl.position();
                                drone.proxy.finish_vfc(&a.owner, pos);
                            }
                        }
                        push_event(
                            &mut log,
                            probe,
                            tick,
                            drone,
                            FlightLog::WaypointEnd {
                                owner: a.owner,
                                waypoint: a.wp_index,
                                reason: a.end_reason,
                                enforced_kills: kills,
                            },
                        );
                    }
                }
                PilotEvent::FlightComplete => {
                    push_event(&mut log, probe, tick, drone, FlightLog::Landed);
                    completed = !aborted;
                }
            }
        }

        // Once per simulated second: budget charging, completion
        // polling, breach propagation, SDK event delivery, abort
        // checks.
        if step.is_multiple_of(400) {
            drone.pump_sdk_events();
            drone.pump_camera_streams();
            if !drone.sitl.on_ground() {
                airborne_seen = true;
            }
            // Per-VFC watchdog: a stalled or policy-violating virtual
            // drone at an active waypoint loses its flight.
            let watchdog_cfg = drone.vdc.borrow().watchdog();
            if let (Some(cfg), Some(a)) = (watchdog_cfg, active.as_mut()) {
                if a.end_reason == EndReason::Completed {
                    if let Some((fwd, den)) = drone.proxy.client_activity(&a.owner) {
                        let progress = drone
                            .vdc
                            .borrow()
                            .record(&a.owner)
                            .map(|r| r.progress_marks())
                            .unwrap_or(0);
                        if fwd == a.last_forwarded {
                            a.stall_secs += 1;
                        } else {
                            a.stall_secs = 0;
                            a.last_forwarded = fwd;
                            // Commands flowed this second: the stall
                            // signal is blind, the progress signal
                            // is not.
                            if progress == a.last_progress {
                                a.busy_no_progress_secs += 1;
                            }
                        }
                        if progress != a.last_progress {
                            a.last_progress = progress;
                            a.busy_no_progress_secs = 0;
                        }
                        let violations = den.saturating_sub(a.denied_at_start);
                        let busy_loop = cfg
                            .progress_timeout_s
                            .is_some_and(|t| a.busy_no_progress_secs >= t);
                        if a.stall_secs >= cfg.stall_timeout_s
                            || violations > cfg.max_denials
                            || busy_loop
                        {
                            a.end_reason = EndReason::WatchdogRevoked;
                            revoked.insert(a.owner.clone());
                            drone.vdc.borrow_mut().on_watchdog_revoked(&a.owner);
                            pilot.release_waypoint();
                        }
                    }
                }
            }
            // A revocation initiated through the VDC (the QoS
            // escalation ladder) ends the active service window the
            // same way this loop's own watchdog does.
            if let Some(a) = active.as_mut() {
                if a.end_reason == EndReason::Completed
                    && drone
                        .vdc
                        .borrow()
                        .record(&a.owner)
                        .is_some_and(|r| r.revoked)
                {
                    a.end_reason = EndReason::WatchdogRevoked;
                    revoked.insert(a.owner.clone());
                    pilot.release_waypoint();
                }
            }
            if let Some(a) = active.as_mut() {
                let now_e = drone.sitl.energy_consumed_j();
                let delta = now_e - a.last_energy;
                a.last_energy = now_e;
                let (done, exhausted) = {
                    let mut vdc = drone.vdc.borrow_mut();
                    vdc.charge_energy(&a.owner, delta);
                    vdc.charge_time(&a.owner, 1.0);
                    let done = vdc.record(&a.owner).map(|r| r.waypoint_done).unwrap_or(false);
                    let exhausted = vdc.record(&a.owner).map(|r| r.exhausted()).unwrap_or(false);
                    (done, exhausted)
                };
                *vdrone_energy.entry(a.owner.clone()).or_default() += delta;
                let energy_gone = drone
                    .vdc
                    .borrow()
                    .record(&a.owner)
                    .map(|r| r.energy_remaining_j() <= 0.0)
                    .unwrap_or(false);
                if done {
                    pilot.release_waypoint();
                } else if exhausted && a.end_reason == EndReason::Completed {
                    // The virtual drone's aggregate allotment ran
                    // out (the pilot's per-leg budget may be wider).
                    a.end_reason = if energy_gone {
                        EndReason::EnergyExhausted
                    } else {
                        EndReason::TimeExhausted
                    };
                    pilot.release_waypoint();
                }
            }
            let breaches = drone.proxy.breaches_handled;
            if breaches > breaches_seen {
                breaches_seen = breaches;
                if let Some(owner) = active.as_ref().map(|a| a.owner.clone()) {
                    drone.vdc.borrow_mut().on_geofence_breached(&owner);
                    push_event(
                        &mut log,
                        probe,
                        tick,
                        drone,
                        FlightLog::GeofenceBreach { owner },
                    );
                }
            }
            let sim_t = step as f64 / 400.0;
            if let Some(check) = abort.as_mut() {
                if !aborted && check(sim_t) {
                    aborted = true;
                    if let Some(a) = active.take() {
                        drone
                            .vdc
                            .borrow_mut()
                            .on_waypoint_departed(&a.owner, a.wp_index);
                        // Retire the VFC so its geofence recovery
                        // does not fight the return-to-base.
                        let pos = drone.sitl.position();
                        drone.proxy.finish_vfc(&a.owner, pos);
                        push_event(
                            &mut log,
                            probe,
                            tick,
                            drone,
                            FlightLog::WaypointEnd {
                                owner: a.owner,
                                waypoint: a.wp_index,
                                reason: EndReason::Aborted,
                                enforced_kills: 0,
                            },
                        );
                    }
                    pilot.abort_to_base(&mut drone.proxy, &mut drone.sitl);
                    push_event(&mut log, probe, tick, drone, FlightLog::Aborted);
                }
            }
            probe.on_tick(tick, drone);
            // Link-loss failsafe termination: the ladder escalated to
            // return-to-launch and the drone is back on the ground —
            // the flight is over even though the plan is not.
            if airborne_seen
                && drone.proxy.link_failsafe_rtl_engaged()
                && drone.sitl.on_ground()
            {
                link_lost = true;
            }
        }

        if link_lost || pilot.done() {
            if link_lost {
                if let Some(a) = active.take() {
                    push_event(
                        &mut log,
                        probe,
                        tick,
                        drone,
                        FlightLog::WaypointEnd {
                            owner: a.owner,
                            waypoint: a.wp_index,
                            reason: EndReason::LinkLost,
                            enforced_kills: 0,
                        },
                    );
                }
                push_event(&mut log, probe, tick, drone, FlightLog::Landed);
            }
            let reason = if link_lost {
                EndReason::LinkLost
            } else if completed {
                EndReason::Completed
            } else {
                EndReason::Aborted
            };
            end = Some((step, reason));
            break;
        }
    }

    let (duration_s, completed_flag, end_reason) = match end {
        Some((step, reason)) => (step as f64 / 400.0, completed && !link_lost, reason),
        None => (max_sim_seconds, false, EndReason::TimeExhausted),
    };
    let outcome = FlightOutcome {
        log,
        total_energy_j: drone.sitl.energy_consumed_j() - energy_at_start,
        vdrone_energy_j: vdrone_energy,
        completed: completed_flag,
        duration_s,
        end_reason,
    };
    drone.obs.emit(Subsystem::Flight, || TraceEvent::FlightPhase {
        phase: "flight-end",
        detail: end_reason.name().to_string(),
    });
    drone.obs.gauge("flight.duration_s", duration_s);
    drone
        .obs
        .gauge("flight.total_energy_j", outcome.total_energy_j);
    probe.on_end(&outcome, drone);
    outcome
}
