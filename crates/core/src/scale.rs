//! The scaling-ladder executor: tens of thousands of synthetic
//! tenants driven through the *real* sharded control plane.
//!
//! [`execute_fleet`](crate::fleet::FleetSpec) boots a full onboard
//! stack (kernel, containers, Binder, SITL) per flight — the right
//! fidelity for six tenants, hopeless for a hundred thousand. This
//! executor keeps the control plane real and makes the *flights*
//! cheap: every order goes through the portal's validation, the
//! admission queue's backpressure, the bin-packing planner, the VDR's
//! checkout/commit lease cycle (sharded), billing, and refunds — but
//! each flight is a closed-form Dorling-model island (travel energy +
//! service cost per leg) instead of a simulated airframe.
//!
//! Determinism is the contract the whole ladder hangs on:
//!
//! - **Thread count**: islands are pure functions of plain data, the
//!   worker pool returns results in submission order, and every
//!   control-plane mutation happens single-threaded at merge time —
//!   so `threads = 1` and `threads = 8` produce identical digests.
//! - **Shard count**: every VDR operation is keyed by name, listings
//!   merge in name order, and [`VirtualDroneRepository::digest`]
//!   (androne_cloud) folds entries in global name order — so
//!   `shards = 1` and `shards = 4` produce identical digests.
//!
//! Tenants are generated from the config seed via the simkern
//! substream derivation: shapes (waypoint counts, positions, drone
//! type, provisioning) replay bit-identically for a given seed.

use std::collections::{BTreeMap, VecDeque};

use androne_cloud::{
    AdmissionConfig, FallibleCloud, OrderRequest, OrderSubmitError, PlacedOrder, SaveReason,
    SavedVirtualDrone, VdrStats, MAX_VDRONES_PER_FLIGHT,
};
use androne_container::{ContainerArchive, ContainerKind, Layer};
use androne_energy::DorlingModel;
use androne_hal::GeoPoint;
use androne_obs::{MetricsRegistry, ObsHandle};
use androne_planner::{bin_pack, PackItem};
use androne_simkern::StateHasher;
use androne_vdc::WaypointSpec;

use crate::pool::WorkerPool;

/// Launch site shared by every synthetic tenant (same base the
/// six-tenant fleet uses).
const BASE: GeoPoint = GeoPoint::new(43.6084298, -85.8110359, 0.0);

/// Hover/measurement cost of serving one waypoint, on top of travel.
const SERVICE_ENERGY_J: f64 = 1_500.0;
const SERVICE_TIME_S: f64 = 30.0;

/// Waypoints scatter up to ~512 m north/east of the base; the battery
/// budget fits a full party of worst-case legs so the party cap, not
/// energy, is the binding constraint for typical waves.
const MAX_OFFSET_M: f64 = 512.0;

/// Ground turnaround between waves, seconds of simulated time.
const TURNAROUND_S: f64 = 60.0;

/// Affordability slack absorbing the cents↔joules round-trip and the
/// telescoped-subtraction float error (a few ulps; one joule is
/// orders of magnitude above both).
const PROVISION_MARGIN_J: f64 = 1.0;

/// One rung of the scaling ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Synthetic tenants to generate and drive to quiescence.
    pub tenants: usize,
    /// Root seed for tenant-shape generation.
    pub seed: u64,
    /// Simulated physical drones available per wave.
    pub fleet_size: usize,
    /// Admission quota per wave (orders released from the queue).
    pub admit_per_wave: usize,
    /// Admission queue capacity (beyond it, submissions backpressure).
    pub queue_capacity: usize,
    /// VDR shard count.
    pub shards: usize,
    /// Worker threads flying the wave's flights.
    pub threads: usize,
    /// Hard wave guard: the run aborts (incomplete) past this.
    pub max_waves: u64,
}

impl ScaleConfig {
    /// Ladder defaults for a rung of `tenants` tenants: 256 simulated
    /// drones, an admission quota matched to the fleet's per-wave
    /// serving capacity (fleet × party cap), and a queue holding four
    /// quotas so admission bursts backpressure realistically.
    pub fn rung(tenants: usize) -> Self {
        let fleet_size = 256;
        let admit_per_wave = fleet_size * MAX_VDRONES_PER_FLIGHT;
        ScaleConfig {
            tenants,
            seed: 0xA2D0_5CA1E,
            fleet_size,
            admit_per_wave,
            queue_capacity: admit_per_wave * 4,
            shards: 1,
            threads: 1,
            max_waves: 100_000,
        }
    }

    /// Builder-style shard override.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style thread override.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// How a tenant's mission ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleResolution {
    /// Every waypoint served within the allotment.
    Completed,
    /// The allotment could not afford the next waypoint; the unserved
    /// remainder was refunded.
    Exhausted,
}

/// Terminal accounting for one synthetic tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleTenantOutcome {
    pub user: String,
    pub resolution: ScaleResolution,
    pub waypoints_completed: usize,
    pub waypoints_total: usize,
    pub flights_flown: u32,
    pub billed_energy_j: f64,
    pub refunded_energy_j: f64,
    /// Simulated seconds from first submission to terminal
    /// resolution (includes any backpressure wait).
    pub latency_s: f64,
}

/// One packed flight's closed-form result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleFlightRecord {
    pub wave: u64,
    pub flight_index: u64,
    pub legs: u32,
    pub energy_j: f64,
    pub duration_s: f64,
    /// Fold of the flight's served legs (owner, distance, billed
    /// energy/time), computed on the worker.
    pub digest: u64,
}

/// The result of driving one ladder rung to quiescence.
#[derive(Debug)]
pub struct ScaleOutcome {
    pub config: ScaleConfig,
    /// Every tenant's terminal accounting, keyed by virtual drone
    /// name (deterministic name order).
    pub tenants: BTreeMap<String, ScaleTenantOutcome>,
    /// Every flight flown, in plan order.
    pub flights: Vec<ScaleFlightRecord>,
    pub waves_run: u64,
    /// Whether every tenant reached a terminal resolution within the
    /// wave guard.
    pub quiescent: bool,
    /// Total simulated seconds from first submission to quiescence.
    pub sim_duration_s: f64,
    /// 99th-percentile order→resolution latency, simulated seconds.
    pub p99_latency_s: f64,
    /// High-water mark of the admission queue depth.
    pub peak_queue_depth: usize,
    /// Submissions bounced by admission backpressure (retries count).
    pub backpressured_submissions: u64,
    /// Aggregate VDR statistics at quiescence.
    pub vdr: VdrStats,
    /// The VDR's shard-count-invariant content digest at quiescence.
    pub vdr_digest: u64,
    /// Aggregate metrics (admission, flights, compaction) — thread-
    /// and shard-invariant by construction.
    pub metrics: MetricsRegistry,
}

impl ScaleOutcome {
    /// Folds the run to one word: flights in plan order, tenants in
    /// name order, the VDR's content, and the wave count. Equal
    /// digests ⇒ identical runs, at any thread or shard count.
    pub fn fleet_digest(&self) -> u64 {
        let mut h = StateHasher::new();
        for f in &self.flights {
            h.write_u64(f.wave);
            h.write_u64(f.flight_index);
            h.write_u64(u64::from(f.legs));
            h.write_f64(f.energy_j);
            h.write_f64(f.duration_s);
            h.write_u64(f.digest);
        }
        for (name, t) in &self.tenants {
            h.write_str(name);
            h.write_str(&t.user);
            h.write_u64(match t.resolution {
                ScaleResolution::Completed => 0,
                ScaleResolution::Exhausted => 1,
            });
            h.write_usize(t.waypoints_completed);
            h.write_usize(t.waypoints_total);
            h.write_u64(u64::from(t.flights_flown));
            h.write_f64(t.billed_energy_j);
            h.write_f64(t.refunded_energy_j);
            h.write_f64(t.latency_s);
        }
        h.write_u64(self.waves_run);
        h.write_bool(self.quiescent);
        h.write_u64(self.vdr_digest);
        h.finish()
    }

    /// Digest of the aggregate metrics registry.
    pub fn metrics_digest(&self) -> u64 {
        self.metrics.digest()
    }

    /// Tenants that completed every waypoint.
    pub fn completed(&self) -> usize {
        self.tenants
            .values()
            .filter(|t| t.resolution == ScaleResolution::Completed)
            .count()
    }

    /// Tenants that exhausted their allotment mid-mission.
    pub fn exhausted(&self) -> usize {
        self.tenants.len() - self.completed()
    }

    /// Orders resolved per simulated second.
    pub fn orders_per_sim_s(&self) -> f64 {
        if self.sim_duration_s <= 0.0 {
            return 0.0;
        }
        self.tenants.len() as f64 / self.sim_duration_s
    }
}

/// The synthetic shape of one tenant, derived from the seed.
struct TenantShape {
    user: String,
    waypoints: Vec<WaypointSpec>,
    drone_type: &'static str,
    /// Cents to charge — full provisioning plus margin, or (for the
    /// periodically under-provisioned tenants) short of the final
    /// waypoint so the exhaustion/refund path stays exercised.
    max_charge_cents: f64,
    max_duration_s: f64,
}

/// Every 13th tenant (offset 5) is deliberately under-provisioned.
fn under_provisioned(index: usize) -> bool {
    index % 13 == 5
}

fn tenant_shape(cfg: &ScaleConfig, index: usize, model: &DorlingModel) -> TenantShape {
    let h = androne_simkern::substream_seed(cfg.seed, 1, index);
    let wp_count = 1 + (h % 3) as usize;
    let mut waypoints = Vec::with_capacity(wp_count);
    for j in 0..wp_count {
        let hj = androne_simkern::substream_seed(cfg.seed, 2, index * 4 + j);
        // 64..=MAX_OFFSET m north and east of the base: never exactly
        // at the launch point, never beyond the budget's worst case.
        let north = 64.0 + (hj & 0x3FF) as f64 * (MAX_OFFSET_M - 64.0) / 1023.0;
        let east = 64.0 + ((hj >> 10) & 0x3FF) as f64 * (MAX_OFFSET_M - 64.0) / 1023.0;
        let p = BASE.offset_m(north, east, 15.0);
        waypoints.push(WaypointSpec {
            latitude: p.latitude,
            longitude: p.longitude,
            altitude: 15.0,
            max_radius: 0.0, // portal applies the provider default
        });
    }
    let needs: Vec<(f64, f64)> = waypoints
        .iter()
        .map(|wp| waypoint_need(model, &wp.position()))
        .collect();
    let full_energy: f64 = needs.iter().map(|(e, _)| e).sum::<f64>() + PROVISION_MARGIN_J;
    let full_time: f64 = needs.iter().map(|(_, t)| t).sum::<f64>() + 600.0;
    let energy = if under_provisioned(index) {
        // Short of the last waypoint by just over half its need: the
        // mission exhausts exactly there, after any earlier ones.
        let last = needs.last().map_or(0.0, |(e, _)| *e);
        (full_energy - 0.55 * last).max(last * 0.25)
    } else {
        full_energy
    };
    TenantShape {
        user: format!("u{index:06}"),
        waypoints,
        drone_type: if h & 1 == 0 { "video" } else { "sensor" },
        // Inverse of the portal's cents→joules conversion.
        max_charge_cents: energy / 400.0,
        max_duration_s: full_time,
    }
}

/// Closed-form cost of serving one waypoint from the base: out and
/// back at cruise plus the on-site service cost.
fn waypoint_need(model: &DorlingModel, wp: &GeoPoint) -> (f64, f64) {
    let dist = BASE.ground_distance_m(wp);
    (
        model.leg_energy_j(2.0 * dist, 0.0) + SERVICE_ENERGY_J,
        model.leg_time_s(2.0 * dist) + SERVICE_TIME_S,
    )
}

/// Live per-tenant state between admission and terminal resolution.
struct TenantState {
    user: String,
    /// Per-waypoint `(energy_j, time_s)` needs from the placed spec.
    needs: Vec<(f64, f64)>,
    /// `(dist_m, energy_j, time_s)` per waypoint for island data.
    dists: Vec<f64>,
    next_wp: usize,
    remaining_e: f64,
    remaining_t: f64,
    billed_e: f64,
    refunded_e: f64,
    flights_flown: u32,
    submitted_clock_s: f64,
    resolution: Option<(ScaleResolution, f64)>,
    spec: androne_vdc::VirtualDroneSpec,
}

/// Plain data one flight carries onto a worker thread.
struct ScaleWork {
    wave: u64,
    flight_index: u64,
    legs: Vec<ScaleLeg>,
}

struct ScaleLeg {
    owner: String,
    dist_m: f64,
}

/// What the worker hands back: per-leg billing plus the flight fold.
struct ScaleFlightOut {
    wave: u64,
    flight_index: u64,
    served: Vec<(String, f64, f64)>,
    energy_j: f64,
    duration_s: f64,
    digest: u64,
}

/// Flies one packed flight in closed form. Pure: billing numbers and
/// the digest depend only on the leg list and the model constants.
fn fly_island(model: DorlingModel, work: ScaleWork) -> ScaleFlightOut {
    let mut h = StateHasher::new();
    h.write_u64(work.wave);
    h.write_u64(work.flight_index);
    let mut served = Vec::with_capacity(work.legs.len());
    let mut energy = 0.0;
    let mut duration = 0.0;
    for leg in &work.legs {
        let e = model.leg_energy_j(2.0 * leg.dist_m, 0.0) + SERVICE_ENERGY_J;
        let t = model.leg_time_s(2.0 * leg.dist_m) + SERVICE_TIME_S;
        h.write_str(&leg.owner);
        h.write_f64(leg.dist_m);
        h.write_f64(e);
        h.write_f64(t);
        energy += e;
        duration += t;
        served.push((leg.owner.clone(), e, t));
    }
    ScaleFlightOut {
        wave: work.wave,
        flight_index: work.flight_index,
        served,
        energy_j: energy,
        duration_s: duration,
        digest: h.finish(),
    }
}

/// A synthetic container archive standing in for the tenant's
/// exported diff: sized by resume progress so telescoped saves have
/// distinct, compactable byte counts.
fn synthetic_archive(name: &str, waypoints_completed: usize) -> ContainerArchive {
    let mut diff = Layer::new();
    diff.write(
        "/data/androne/state.bin",
        bytes::Bytes::from(vec![0xA5u8; 256 + 32 * waypoints_completed]),
    );
    ContainerArchive {
        name: name.to_string(),
        kind: ContainerKind::VirtualDrone,
        base_stack: Vec::new(),
        diff,
    }
}

/// Drives `cfg.tenants` synthetic tenants through the sharded control
/// plane to quiescence: portal validation once per tenant, admission
/// with backpressure retries at the advertised wave, bin-packed waves
/// flown as closed-form islands on the worker pool, VDR lease cycles
/// with telescoped saves and periodic compaction, billing and
/// terminal refunds.
pub fn execute_scale_fleet(cfg: &ScaleConfig) -> ScaleOutcome {
    let model = DorlingModel::f450_prototype();
    let pool = WorkerPool::new(cfg.threads);
    let obs = ObsHandle::attached();

    let mut cloud = FallibleCloud::with_shards(cfg.shards.max(1));
    cloud.set_obs(obs.clone());
    cloud.set_admission(AdmissionConfig::batched(
        cfg.admit_per_wave.max(1),
        cfg.queue_capacity.max(1),
    ));

    // The budget fits a full party of worst-case legs: the party cap,
    // not energy, binds typical waves.
    let worst_dist = (2.0 * MAX_OFFSET_M * MAX_OFFSET_M).sqrt();
    let battery_budget_j = MAX_VDRONES_PER_FLIGHT as f64
        * (model.leg_energy_j(2.0 * worst_dist, 0.0) + SERVICE_ENERGY_J)
        + 1.0;

    let mut states: BTreeMap<String, TenantState> = BTreeMap::new();
    let mut ready: VecDeque<String> = VecDeque::new();
    let mut retries: BTreeMap<u64, Vec<PlacedOrder>> = BTreeMap::new();
    let mut flights: Vec<ScaleFlightRecord> = Vec::new();
    let mut clock_s = 0.0f64;
    let mut flight_counter = 0u64;
    let mut waves_run = 0u64;
    let mut quiescent = false;

    for wave in 0..cfg.max_waves {
        waves_run = wave + 1;
        cloud.begin_wave(wave, Vec::new());

        // ── Submission: the whole cohort at wave 0, then retries at
        // each order's advertised wave.
        if wave == 0 {
            for i in 0..cfg.tenants {
                let shape = tenant_shape(cfg, i, &model);
                let req = OrderRequest {
                    user: shape.user,
                    waypoints: shape.waypoints,
                    drone_type: shape.drone_type.to_string(),
                    apps: Vec::new(),
                    extra_waypoint_devices: Vec::new(),
                    extra_continuous_devices: Vec::new(),
                    max_charge_cents: shape.max_charge_cents,
                    max_duration_s: shape.max_duration_s,
                    flexible_schedule: true,
                };
                match cloud.place_order(req) {
                    Ok(_) => obs.count("scale.orders_accepted", 1),
                    Err(OrderSubmitError::Backpressure { err, order }) => {
                        let at = retry_wave_after(&err, wave);
                        retries.entry(at).or_default().push(*order);
                    }
                    Err(OrderSubmitError::Order(_)) => {
                        obs.count("scale.orders_rejected", 1);
                    }
                }
            }
            obs.count("scale.orders_submitted", cfg.tenants as u64);
        }
        let due: Vec<PlacedOrder> = retries.remove(&wave).unwrap_or_default();
        for placed in due {
            match cloud.resubmit(placed) {
                Ok(_) => obs.count("scale.orders_accepted", 1),
                Err(OrderSubmitError::Backpressure { err, order }) => {
                    let at = retry_wave_after(&err, wave);
                    retries.entry(at).or_default().push(*order);
                }
                Err(OrderSubmitError::Order(_)) => {
                    obs.count("scale.orders_rejected", 1);
                }
            }
        }

        // ── Admission: this wave's batch materializes tenant state.
        for placed in cloud.admit_orders() {
            let needs: Vec<(f64, f64)> = placed
                .spec
                .waypoints
                .iter()
                .map(|wp| waypoint_need(&model, &wp.position()))
                .collect();
            let dists: Vec<f64> = placed
                .spec
                .waypoints
                .iter()
                .map(|wp| BASE.ground_distance_m(&wp.position()))
                .collect();
            let name = placed.vd_name.clone();
            states.insert(
                name.clone(),
                TenantState {
                    user: placed.user.clone(),
                    needs,
                    dists,
                    next_wp: 0,
                    remaining_e: placed.spec.energy_allotted,
                    remaining_t: placed.spec.max_duration,
                    billed_e: 0.0,
                    refunded_e: 0.0,
                    flights_flown: 0,
                    submitted_clock_s: 0.0,
                    resolution: None,
                    spec: placed.spec,
                },
            );
            ready.push_back(name);
        }
        obs.gauge_max(
            "scale.queue_depth_peak",
            cloud.admission().peak_depth() as f64,
        );

        // ── Plan: affordability gate, then first-fit bin-packing.
        let mut items: Vec<PackItem> = Vec::new();
        let mut item_names: Vec<String> = Vec::new();
        for _ in 0..ready.len() {
            let Some(name) = ready.pop_front() else { break };
            let Some(st) = states.get_mut(&name) else { continue };
            let Some(&(need_e, need_t)) = st.needs.get(st.next_wp) else {
                continue;
            };
            if st.remaining_e < need_e || st.remaining_t < need_t {
                // Terminal: the allotment cannot afford the next
                // waypoint. Refund the unserved remainder.
                let refund = st.remaining_e.max(0.0);
                st.refunded_e = refund;
                st.resolution = Some((ScaleResolution::Exhausted, clock_s));
                cloud.refund_unserved(&st.user.clone(), &name, refund);
                obs.count("scale.tenants_exhausted", 1);
                continue;
            }
            items.push(PackItem {
                owner: name.clone(),
                energy_j: need_e,
                time_s: need_t,
            });
            item_names.push(name);
        }
        let packing = bin_pack(
            &items,
            cfg.fleet_size.max(1),
            MAX_VDRONES_PER_FLIGHT,
            battery_budget_j,
        );
        // Spilled orders lead the next wave, in FIFO order.
        for &idx in &packing.spilled {
            if let Some(name) = item_names.get(idx) {
                ready.push_back(name.clone());
            }
        }
        obs.count("scale.legs_spilled", packing.spilled.len() as u64);

        // ── Fly: packed flights become closed-form islands.
        let mut works: Vec<ScaleWork> = Vec::with_capacity(packing.flights.len());
        for flight in &packing.flights {
            let mut legs = Vec::with_capacity(flight.items.len());
            for &idx in &flight.items {
                let Some(name) = item_names.get(idx) else { continue };
                let Some(st) = states.get(name) else { continue };
                let Some(&dist) = st.dists.get(st.next_wp) else { continue };
                legs.push(ScaleLeg {
                    owner: name.clone(),
                    dist_m: dist,
                });
            }
            works.push(ScaleWork {
                wave,
                flight_index: flight_counter,
                legs,
            });
            flight_counter += 1;
        }
        // Leases: a tenant flying a non-first flight checks its saved
        // state out of the VDR for the duration (commit on landing).
        let mut leased: Vec<String> = Vec::new();
        for work in &works {
            for leg in &work.legs {
                let resuming = states.get(&leg.owner).is_some_and(|s| s.flights_flown > 0);
                if resuming && cloud.inner.vdr.checkout(&leg.owner).is_some() {
                    leased.push(leg.owner.clone());
                }
            }
        }
        let outs = pool.run(works, |w| fly_island(model, w));

        // ── Merge, in plan order: billing, VDR saves, progress.
        let mut wave_duration = 0.0f64;
        for out in outs.into_iter().flatten() {
            wave_duration = wave_duration.max(out.duration_s);
            flights.push(ScaleFlightRecord {
                wave: out.wave,
                flight_index: out.flight_index,
                legs: out.served.len() as u32,
                energy_j: out.energy_j,
                duration_s: out.duration_s,
                digest: out.digest,
            });
            obs.count("scale.flights", 1);
            obs.count("scale.legs", out.served.len() as u64);
            let landing_clock = clock_s + out.duration_s;
            for (name, e, t) in out.served {
                let Some(st) = states.get_mut(&name) else { continue };
                st.remaining_e -= e;
                st.remaining_t -= t;
                st.billed_e += e;
                st.next_wp += 1;
                st.flights_flown += 1;
                cloud.inner.billing.charge_energy(&st.user, e);
                let done = st.next_wp >= st.needs.len();
                let reason = if done {
                    SaveReason::Completed
                } else {
                    SaveReason::Interrupted
                };
                cloud.inner.vdr.store(SavedVirtualDrone {
                    name: name.clone(),
                    owner: st.user.clone(),
                    spec: st.spec.clone(),
                    archive: synthetic_archive(&name, st.next_wp),
                    app_state: format!("{{\"wp\":{}}}", st.next_wp),
                    reason,
                    remaining_energy_j: st.remaining_e,
                    remaining_time_s: st.remaining_t,
                    waypoints_completed: st.next_wp,
                    flights_flown: st.flights_flown,
                });
                if done {
                    st.resolution = Some((ScaleResolution::Completed, landing_clock));
                    obs.count("scale.tenants_completed", 1);
                } else {
                    ready.push_back(name);
                }
            }
        }
        for name in leased {
            cloud.inner.vdr.commit(&name);
        }

        // ── Compact when the journal has doubled past the live set.
        let stats = cloud.inner.vdr.stats();
        if stats.journal_entries > 2 * (stats.entries + stats.leased).max(1) {
            let report = cloud.inner.vdr.compact();
            obs.count("scale.compactions", 1);
            obs.count("scale.compacted_saves", report.compacted_saves);
        }

        // ── Advance the simulated clock.
        clock_s += if wave_duration > 0.0 {
            wave_duration + TURNAROUND_S
        } else {
            TURNAROUND_S
        };
        obs.count("scale.waves", 1);

        // ── Quiescence: everything admitted, flown, and resolved.
        let all_resolved =
            states.len() == cfg.tenants && states.values().all(|s| s.resolution.is_some());
        if all_resolved && ready.is_empty() && retries.is_empty() && cloud.admission().is_empty()
        {
            quiescent = true;
            break;
        }
    }

    // Final journal sweep so `compacted_saves` reflects the whole run.
    let report = cloud.inner.vdr.compact();
    obs.count("scale.compactions", 1);
    obs.count("scale.compacted_saves", report.compacted_saves);

    let backpressured = cloud.admission().backpressure_total();
    let peak_depth = cloud.admission().peak_depth();
    let vdr_stats = cloud.inner.vdr.stats();
    let vdr_digest = cloud.inner.vdr.digest();

    let mut latencies: Vec<f64> = Vec::with_capacity(states.len());
    let tenants: BTreeMap<String, ScaleTenantOutcome> = states
        .into_iter()
        .map(|(name, st)| {
            let (resolution, resolved_clock) = st
                .resolution
                .unwrap_or((ScaleResolution::Exhausted, clock_s));
            let latency = resolved_clock - st.submitted_clock_s;
            latencies.push(latency);
            (
                name,
                ScaleTenantOutcome {
                    user: st.user,
                    resolution,
                    waypoints_completed: st.next_wp,
                    waypoints_total: st.needs.len(),
                    flights_flown: st.flights_flown,
                    billed_energy_j: st.billed_e,
                    refunded_energy_j: st.refunded_e,
                    latency_s: latency,
                },
            )
        })
        .collect();
    latencies.sort_by(f64::total_cmp);
    let p99 = if latencies.is_empty() {
        0.0
    } else {
        let idx = ((latencies.len() as f64 * 0.99).ceil() as usize)
            .saturating_sub(1)
            .min(latencies.len() - 1);
        latencies[idx]
    };

    let metrics = obs.with(|o| o.metrics.clone()).unwrap_or_default();

    ScaleOutcome {
        config: *cfg,
        tenants,
        flights,
        waves_run,
        quiescent,
        sim_duration_s: clock_s,
        p99_latency_s: p99,
        peak_queue_depth: peak_depth,
        backpressured_submissions: backpressured,
        vdr: vdr_stats,
        vdr_digest,
        metrics,
    }
}

/// The wave to schedule a bounced order's resubmission at: the
/// advertised retry wave, but always strictly after the current one.
fn retry_wave_after(err: &androne_cloud::AdmissionError, wave: u64) -> u64 {
    use androne_sdk::Backpressure as _;
    err.retry_wave().unwrap_or(wave + 1).max(wave + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rung_reaches_quiescence_with_every_tenant_resolved() {
        let cfg = ScaleConfig {
            tenants: 40,
            fleet_size: 4,
            admit_per_wave: 12,
            queue_capacity: 24,
            ..ScaleConfig::rung(40)
        };
        let out = execute_scale_fleet(&cfg);
        assert!(out.quiescent, "ran {} waves without quiescing", out.waves_run);
        assert_eq!(out.tenants.len(), 40);
        assert!(out.completed() > 0);
        assert!(out.exhausted() > 0, "the under-provisioned cohort exhausts");
        assert!(out.backpressured_submissions > 0, "capacity 24 < 40 tenants");
        assert!(out.peak_queue_depth <= 24);
    }

    #[test]
    fn digests_are_thread_and_shard_invariant() {
        let base = ScaleConfig {
            tenants: 60,
            fleet_size: 6,
            admit_per_wave: 18,
            queue_capacity: 36,
            ..ScaleConfig::rung(60)
        };
        let reference = execute_scale_fleet(&base);
        assert!(reference.quiescent);
        for (threads, shards) in [(4, 1), (1, 4), (4, 4)] {
            let out = execute_scale_fleet(&base.threads(threads).shards(shards));
            assert_eq!(
                out.fleet_digest(),
                reference.fleet_digest(),
                "threads={threads} shards={shards}"
            );
            assert_eq!(
                out.metrics_digest(),
                reference.metrics_digest(),
                "metrics: threads={threads} shards={shards}"
            );
        }
    }

    #[test]
    fn under_provisioned_tenants_get_refunds_on_the_ledger() {
        let cfg = ScaleConfig {
            tenants: 26,
            fleet_size: 4,
            admit_per_wave: 12,
            queue_capacity: 26,
            ..ScaleConfig::rung(26)
        };
        let out = execute_scale_fleet(&cfg);
        assert!(out.quiescent);
        let exhausted: Vec<&ScaleTenantOutcome> = out
            .tenants
            .values()
            .filter(|t| t.resolution == ScaleResolution::Exhausted)
            .collect();
        assert_eq!(exhausted.len(), 2, "tenants 5 and 18 of 26");
        for t in exhausted {
            assert!(t.refunded_energy_j > 0.0);
            assert!(t.waypoints_completed < t.waypoints_total);
        }
    }

    #[test]
    fn vdr_retains_every_tenant_and_compaction_reclaims_saves() {
        let cfg = ScaleConfig {
            tenants: 30,
            fleet_size: 4,
            admit_per_wave: 12,
            queue_capacity: 30,
            ..ScaleConfig::rung(30)
        };
        let out = execute_scale_fleet(&cfg);
        assert!(out.quiescent);
        // Every tenant that flew at least once has a VDR entry.
        let flew: usize = out.tenants.values().filter(|t| t.flights_flown > 0).count();
        assert_eq!(out.vdr.entries, flew);
        assert_eq!(out.vdr.leased, 0, "every lease resolved");
        // Multi-flight tenants telescoped saves; compaction caught them.
        assert!(out.vdr.compacted_saves > 0);
        assert!(out.vdr.reclaimed_bytes > 0);
    }
}
