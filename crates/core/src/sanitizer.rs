//! Runtime determinism sanitizer.
//!
//! The simulation's core promise is bit-for-bit repeatability: two
//! runs under the same seed must visit identical states. Drift —
//! iteration over an unordered container, a stray wall-clock read, an
//! unseeded RNG — is invisible to functional tests (both runs still
//! "work") until it silently invalidates every experiment built on
//! seed-stability. The sanitizer makes drift loud: it records a
//! per-second vector of component state hashes ([`Drone::component_hashes`])
//! during a flight, compares two same-seed traces, and pinpoints the
//! first divergent tick and the exact components that differ.
//!
//! The static side of the same defense is `dronelint` (rules R1/R2),
//! which bans the constructs that cause drift; this module catches
//! whatever slips through at runtime.

use androne_obs::{Subsystem, TraceEvent};
use androne_planner::FlightPlan;
use androne_simkern::StateHasher;

use crate::drone::Drone;
use crate::flight_exec::{execute_flight_probed, FlightOutcome};
use crate::probe::{FlightProbe, ProbeStack};

/// The component hash vector observed at one tick (one simulated
/// second).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickHashes {
    /// Seconds since launch.
    pub tick: u64,
    /// `(component, hash)` pairs in the fixed
    /// [`Drone::component_hashes`] order.
    pub components: Vec<(&'static str, u64)>,
}

/// A full per-second hash trace of one flight.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// One entry per observed tick, in tick order.
    pub ticks: Vec<TickHashes>,
}

/// The first point where two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// First tick whose hash vectors differ (or where one trace
    /// ends).
    pub tick: u64,
    /// Components whose hashes differ at that tick.
    pub diverged_components: Vec<&'static str>,
    /// The full component vector from the first trace at that tick
    /// (empty if that trace ended first).
    pub first: Vec<(&'static str, u64)>,
    /// The full component vector from the second trace at that tick.
    pub second: Vec<(&'static str, u64)>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "determinism violation at t={}s in [{}]",
            self.tick,
            self.diverged_components.join(", ")
        )?;
        writeln!(f, "  run A: {:?}", self.first)?;
        write!(f, "  run B: {:?}", self.second)
    }
}

/// The sanitizer's own probe: one [`Drone::component_hashes`]
/// traversal per tick serves the recorded trace, the folded digest
/// emitted onto the drone's trace bus as a
/// [`TraceEvent::TickHash`], and (under [`Verbosity::Detailed`]) the
/// fine-grained vector.
struct HashProbe<'a> {
    trace: &'a mut Trace,
    verbose: Option<&'a mut VerboseTrace>,
}

impl FlightProbe for HashProbe<'_> {
    fn on_tick(&mut self, tick: u64, drone: &mut Drone) {
        let components = drone.component_hashes();
        let mut h = StateHasher::new();
        h.write_u64(tick);
        for (name, hash) in &components {
            h.write_str(name);
            h.write_u64(*hash);
        }
        let digest = h.finish();
        drone
            .obs
            .emit(Subsystem::Flight, || TraceEvent::TickHash { tick, digest });
        if let Some(v) = self.verbose.as_mut() {
            v.ticks.push(VerboseTickHashes {
                tick,
                subsystems: drone.detailed_hashes(),
            });
        }
        self.trace.ticks.push(TickHashes { tick, components });
    }
}

/// Runs `plan` on `drone` while recording the per-second hash trace.
pub fn trace_flight(
    drone: &mut Drone,
    plan: FlightPlan,
    max_sim_seconds: f64,
) -> (FlightOutcome, Trace) {
    trace_flight_perturbed(drone, plan, max_sim_seconds, None)
}

/// [`trace_flight`] with an optional extra probe composed after the
/// hash recorder — test harnesses use it to inject a perturbation at
/// an exact tick in one run and verify the sanitizer localizes it.
/// The hash probe runs first at each hook, so a perturbation at tick
/// `t` is recorded from tick `t + 1` on.
pub fn trace_flight_perturbed(
    drone: &mut Drone,
    plan: FlightPlan,
    max_sim_seconds: f64,
    perturb: Option<&mut dyn FlightProbe>,
) -> (FlightOutcome, Trace) {
    let mut trace = Trace::default();
    let outcome = {
        let mut hasher = HashProbe {
            trace: &mut trace,
            verbose: None,
        };
        let mut stack = ProbeStack::new();
        stack.push(&mut hasher);
        if let Some(p) = perturb {
            stack.push(p);
        }
        execute_flight_probed(drone, plan, max_sim_seconds, None, &mut stack)
    };
    (outcome, trace)
}

/// How much state the sanitizer captures per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verbosity {
    /// The five coarse component hashes ([`Drone::component_hashes`]).
    #[default]
    Component,
    /// Additionally one hash per kernel task, proxy client, VDC
    /// record, and SITL subcomponent ([`Drone::detailed_hashes`]) —
    /// much larger, but localizes a divergence to a single Pid or
    /// client outbox instead of a whole component.
    Detailed,
}

/// The fine-grained hash vector observed at one tick under
/// [`Verbosity::Detailed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerboseTickHashes {
    /// Seconds since launch.
    pub tick: u64,
    /// `(subsystem path, hash)` pairs, e.g. `kernel/task/7` or
    /// `proxy/client/vd1`, in the fixed [`Drone::detailed_hashes`]
    /// order.
    pub subsystems: Vec<(String, u64)>,
}

/// A full per-second fine-grained trace of one flight.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerboseTrace {
    /// One entry per observed tick, in tick order.
    pub ticks: Vec<VerboseTickHashes>,
}

/// The first fine-grained divergence between two verbose traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerboseDivergence {
    /// First tick whose subsystem vectors differ (or where one trace
    /// ends).
    pub tick: u64,
    /// Subsystem paths whose hashes differ at that tick, including
    /// paths present in only one run (a task alive in one run and
    /// dead in the other).
    pub diverged_subsystems: Vec<String>,
}

/// [`trace_flight`] at a chosen verbosity: the verbose trace is
/// `Some` only under [`Verbosity::Detailed`].
pub fn trace_flight_with(
    drone: &mut Drone,
    plan: FlightPlan,
    max_sim_seconds: f64,
    verbosity: Verbosity,
) -> (FlightOutcome, Trace, Option<VerboseTrace>) {
    let mut trace = Trace::default();
    let mut verbose = match verbosity {
        Verbosity::Component => None,
        Verbosity::Detailed => Some(VerboseTrace::default()),
    };
    let outcome = {
        let mut hasher = HashProbe {
            trace: &mut trace,
            verbose: verbose.as_mut(),
        };
        execute_flight_probed(drone, plan, max_sim_seconds, None, &mut hasher)
    };
    (outcome, trace, verbose)
}

/// Compares two same-seed verbose traces, returning the first
/// fine-grained divergence. Subsystem vectors are compared by path,
/// so a task that exists in only one run is itself reported as
/// diverged rather than misaligning every later entry.
pub fn first_divergence_verbose(a: &VerboseTrace, b: &VerboseTrace) -> Option<VerboseDivergence> {
    use std::collections::BTreeMap;
    let common = a.ticks.len().min(b.ticks.len());
    for i in 0..common {
        if a.ticks[i] == b.ticks[i] {
            continue;
        }
        let ma: BTreeMap<&str, u64> = a.ticks[i]
            .subsystems
            .iter()
            .map(|(n, h)| (n.as_str(), *h))
            .collect();
        let mb: BTreeMap<&str, u64> = b.ticks[i]
            .subsystems
            .iter()
            .map(|(n, h)| (n.as_str(), *h))
            .collect();
        let mut diverged: Vec<String> = Vec::new();
        for (name, ha) in &ma {
            if mb.get(name) != Some(ha) {
                diverged.push((*name).to_string());
            }
        }
        for name in mb.keys() {
            if !ma.contains_key(name) {
                diverged.push((*name).to_string());
            }
        }
        diverged.sort();
        return Some(VerboseDivergence {
            tick: a.ticks[i].tick,
            diverged_subsystems: diverged,
        });
    }
    if a.ticks.len() != b.ticks.len() {
        let longer = if a.ticks.len() > b.ticks.len() {
            &a.ticks[common]
        } else {
            &b.ticks[common]
        };
        return Some(VerboseDivergence {
            tick: longer.tick,
            diverged_subsystems: longer.subsystems.iter().map(|s| s.0.clone()).collect(),
        });
    }
    None
}

/// Compares two same-seed traces, returning the first divergence (or
/// `None` when the runs were identical).
///
/// The search is a binary bisection over the recorded tick vectors:
/// once a deterministic simulation's state diverges it stays diverged
/// (every subsequent state is a function of the divergent one), so
/// "first divergent tick" is the boundary of a monotone predicate.
/// The bisection is then verified against the predecessor tick; if
/// the divergence turned out not to be persistent (a hash collision
/// re-converged the vectors), a linear scan from the front recovers
/// the true first divergence.
pub fn first_divergence(a: &Trace, b: &Trace) -> Option<Divergence> {
    let common = a.ticks.len().min(b.ticks.len());
    let differs = |i: usize| a.ticks[i] != b.ticks[i];

    let mut candidate = None;
    if common > 0 && differs(common - 1) {
        // Bisect for the first differing index in [0, common).
        let (mut lo, mut hi) = (0usize, common - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if differs(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        candidate = Some(lo);
    }
    // Persistence check: the bisection is only valid if ticks before
    // the candidate agree. Fall back to a linear scan otherwise.
    if let Some(i) = candidate {
        if i > 0 && differs(i - 1) {
            candidate = (0..common).find(|&j| differs(j));
        }
    } else {
        candidate = (0..common).find(|&j| differs(j));
    }

    let build = |i: usize| {
        let ta = &a.ticks[i];
        let tb = &b.ticks[i];
        let diverged = ta
            .components
            .iter()
            .zip(&tb.components)
            .filter(|(x, y)| x != y)
            .map(|(x, _)| x.0)
            .collect();
        Divergence {
            tick: ta.tick,
            diverged_components: diverged,
            first: ta.components.clone(),
            second: tb.components.clone(),
        }
    };

    match candidate {
        Some(i) => Some(build(i)),
        None if a.ticks.len() != b.ticks.len() => {
            // One run ended early: divergence at the first missing
            // tick.
            let (longer, first, second) = if a.ticks.len() > b.ticks.len() {
                (&a.ticks[common], a.ticks[common].components.clone(), Vec::new())
            } else {
                (&b.ticks[common], Vec::new(), b.ticks[common].components.clone())
            };
            Some(Divergence {
                tick: longer.tick,
                diverged_components: longer.components.iter().map(|c| c.0).collect(),
                first,
                second,
            })
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: u64, hashes: &[u64]) -> TickHashes {
        const NAMES: [&str; 5] = ["kernel", "binder", "sitl", "proxy", "vdc"];
        TickHashes {
            tick: t,
            components: NAMES.iter().copied().zip(hashes.iter().copied()).collect(),
        }
    }

    fn trace_of(rows: &[&[u64]]) -> Trace {
        Trace {
            ticks: rows
                .iter()
                .enumerate()
                .map(|(i, r)| tick(i as u64, r))
                .collect(),
        }
    }

    fn vtick(t: u64, subsystems: &[(&str, u64)]) -> VerboseTickHashes {
        VerboseTickHashes {
            tick: t,
            subsystems: subsystems
                .iter()
                .map(|(n, h)| (n.to_string(), *h))
                .collect(),
        }
    }

    #[test]
    fn verbose_divergence_localizes_a_client_outbox() {
        let a = VerboseTrace {
            ticks: vec![
                vtick(0, &[("kernel/task/1", 10), ("proxy/client/vd1", 20)]),
                vtick(1, &[("kernel/task/1", 11), ("proxy/client/vd1", 21)]),
            ],
        };
        let mut b = a.clone();
        b.ticks[1].subsystems[1].1 ^= 0xBEEF; // perturb vd1's outbox
        let d = first_divergence_verbose(&a, &b).expect("diverges");
        assert_eq!(d.tick, 1);
        assert_eq!(d.diverged_subsystems, vec!["proxy/client/vd1".to_string()]);
    }

    #[test]
    fn verbose_divergence_reports_one_sided_subsystems() {
        let a = VerboseTrace {
            ticks: vec![vtick(0, &[("kernel/task/1", 10), ("kernel/task/2", 12)])],
        };
        let b = VerboseTrace {
            ticks: vec![vtick(0, &[("kernel/task/1", 10)])],
        };
        let d = first_divergence_verbose(&a, &b).expect("diverges");
        assert_eq!(d.tick, 0);
        assert_eq!(d.diverged_subsystems, vec!["kernel/task/2".to_string()]);
    }

    #[test]
    fn identical_verbose_traces_have_no_divergence() {
        let a = VerboseTrace {
            ticks: vec![vtick(0, &[("sitl/truth", 1)])],
        };
        assert_eq!(first_divergence_verbose(&a, &a.clone()), None);
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = trace_of(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }

    #[test]
    fn bisection_finds_first_divergent_tick() {
        let a = trace_of(&[&[1, 1], &[2, 2], &[3, 3], &[4, 4], &[5, 5]]);
        let mut b = a.clone();
        // Diverge the second component from tick 2 onward.
        for t in 2..5 {
            b.ticks[t].components[1].1 ^= 0xDEAD;
        }
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.tick, 2);
        assert_eq!(d.diverged_components, vec!["binder"]);
        assert_eq!(d.first, a.ticks[2].components);
        assert_eq!(d.second, b.ticks[2].components);
    }

    #[test]
    fn non_persistent_divergence_falls_back_to_scan() {
        let a = trace_of(&[&[1], &[2], &[3], &[4]]);
        let mut b = a.clone();
        // Diverge only in the middle: re-converges afterward, so the
        // monotone-predicate assumption is broken.
        b.ticks[1].components[0].1 = 99;
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.tick, 1);
    }

    #[test]
    fn truncated_trace_reports_first_missing_tick() {
        let a = trace_of(&[&[1], &[2], &[3]]);
        let b = trace_of(&[&[1], &[2]]);
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.tick, 2);
        assert!(d.second.is_empty());
    }
}
