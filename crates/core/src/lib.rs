//! # androne
//!
//! Reproduction of **"AnDrone: Virtual Drone Computing in the Cloud"**
//! (Van't Hof & Nieh, EuroSys 2019): a drone-as-a-service system
//! pairing a cloud service with the first drone virtualization
//! architecture. Multiple isolated *virtual drones* — containerized
//! Android Things instances — share one physical drone flight, with a
//! device container multiplexing hardware at the Android-service
//! level and a real-time flight container handing each virtual drone
//! a geofenced, whitelist-restricted virtual flight controller.
//!
//! This crate is the full-system facade:
//!
//! - [`drone::Drone`]: one physical drone's assembled onboard stack
//!   (kernel, containers, Binder, device services, SITL vehicle,
//!   MAVProxy, VDC).
//! - [`flight_exec::execute_flight`]: the per-flight loop wiring the
//!   autopilot, the VDC's device-access windows, allotment charging,
//!   revocation enforcement, and breach propagation.
//! - [`androne::Androne`]: cloud + fleet — the complete order →
//!   plan → fly → offload → save workflow of the paper's Figure 4.
//!
//! The substrate crates are re-exported under their subsystem names
//! for downstream use.

pub mod adaptive;
pub mod androne;
pub mod attack;
pub mod drone;
pub mod fleet;
pub mod flight_exec;
pub mod injector;
pub mod pool;
pub mod probe;
pub mod sanitizer;
pub mod scale;

pub use adaptive::AdaptiveInjector;
pub use androne::Androne;
pub use attack::{
    AttackDefense, AttackInjector, LadderRung, RtMonitor, CPU_QUOTA_BOUNDS,
    FLIGHT_JITTER_BOUNDS, THROTTLE_TRAJECTORY_BOUNDS,
};
pub use drone::{DeployedVdrone, Drone, DroneError, ANDROID_THINGS_IMAGE, FLIGHT_IMAGE};
pub use fleet::{
    FleetAttackPlan, FleetConfig, FleetOutcome, FleetSpec, FleetTenant, FlightRecord,
    TenantOutcome, TenantResolution,
};
#[allow(deprecated)]
pub use fleet::{execute_fleet, execute_fleet_attacked};
pub use flight_exec::{
    execute_flight, execute_flight_probed, AbortCheck, EndReason, FlightLog, FlightOutcome,
};
pub use injector::FaultInjector;
pub use pool::{WorkerError, WorkerPool};
pub use probe::{DigestProbe, FlightProbe, FlightRecorder, FnProbe, NoProbe, ProbeStack};
pub use scale::{
    execute_scale_fleet, ScaleConfig, ScaleFlightRecord, ScaleOutcome, ScaleResolution,
    ScaleTenantOutcome,
};
pub use sanitizer::{
    first_divergence, first_divergence_verbose, trace_flight, trace_flight_perturbed,
    trace_flight_with, Divergence, TickHashes, Trace, Verbosity, VerboseDivergence,
    VerboseTickHashes, VerboseTrace,
};

pub use androne_android as android;
pub use androne_binder as binder;
pub use androne_cloud as cloud;
pub use androne_container as container;
pub use androne_energy as energy;
pub use androne_flight as flight;
pub use androne_hal as hal;
pub use androne_mavlink as mavlink;
pub use androne_obs as obs;
pub use androne_planner as planner;
pub use androne_sdk as sdk;
pub use androne_simkern as simkern;
pub use androne_vdc as vdc;
pub use androne_workloads as workloads;
