//! One physical AnDrone drone: the assembled onboard stack.
//!
//! Boots everything Figure 3's drone side shows: the kernel, the
//! container runtime with the device and flight containers, the
//! Binder driver with the device container's published services, the
//! hardware board, the SITL vehicle, MAVProxy, and the VDC.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use androne_android::{
    boot_android_instance, AndroidInstance, AppRegistry, DeviceClass, NativeHalBridge,
    SystemServerConfig,
};
use androne_binder::BinderDriver;
use androne_container::{
    ContainerArchive, ContainerCheckpoint, ContainerError, ContainerKind, ContainerRuntime, Layer,
    ResourceLimits,
};
use androne_flight::{CommandWhitelist, Geofence, MavProxy, Sitl, Vfc};
use androne_hal::{share, GeoPoint, HardwareBoard, SharedBoard};
use androne_obs::ObsHandle;
use androne_planner::PILOT_CLIENT;
use androne_sdk::AndroneSdk;
use androne_simkern::{ContainerId, Euid, Kernel, KernelConfig, SchedPolicy, SharedKernel};
use androne_vdc::{AccessTable, Vdc, VirtualDroneSpec};

/// The image tag the Android Things base is registered under.
pub const ANDROID_THINGS_IMAGE: &str = "android-things:1.0.3";
/// The image tag of the real-time Linux flight image.
pub const FLIGHT_IMAGE: &str = "alpine-flight:3.7";

/// Errors from drone assembly and virtual drone deployment.
#[derive(Debug)]
pub enum DroneError {
    /// Container runtime failure (includes OOM).
    Container(ContainerError),
    /// Android instance boot failure.
    Boot(androne_android::BootError),
    /// The referenced virtual drone is unknown.
    UnknownVirtualDrone(String),
    /// The spec failed validation.
    Spec(androne_vdc::SpecError),
    /// An assembly-sequence invariant did not hold (e.g. a container
    /// the previous boot step just created is missing). Indicates a
    /// bug in the boot sequence itself, but surfaces as an error so a
    /// misbehaving board scraps one flight instead of the fleet.
    BootInvariant(&'static str),
}

impl std::fmt::Display for DroneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DroneError::Container(e) => write!(f, "container error: {e}"),
            DroneError::Boot(e) => write!(f, "android boot error: {e}"),
            DroneError::UnknownVirtualDrone(n) => write!(f, "unknown virtual drone '{n}'"),
            DroneError::Spec(e) => write!(f, "bad virtual drone spec: {e}"),
            DroneError::BootInvariant(what) => {
                write!(f, "boot sequence invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for DroneError {}

impl From<ContainerError> for DroneError {
    fn from(e: ContainerError) -> Self {
        DroneError::Container(e)
    }
}

impl From<androne_android::BootError> for DroneError {
    fn from(e: androne_android::BootError) -> Self {
        DroneError::Boot(e)
    }
}

/// A deployed virtual drone's onboard state.
pub struct DeployedVdrone {
    /// Container name (equals the virtual drone name).
    pub name: String,
    /// Kernel container id.
    pub container: ContainerId,
    /// The Android instance inside.
    pub instance: AndroidInstance,
    /// Installed apps.
    pub apps: AppRegistry,
    /// The SDK endpoint apps in this virtual drone use.
    pub sdk: AndroneSdk,
}

/// One physical drone with the full AnDrone onboard stack.
pub struct Drone {
    /// The shared kernel.
    pub kernel: SharedKernel,
    /// Container runtime.
    pub runtime: ContainerRuntime,
    /// Binder driver.
    pub driver: BinderDriver,
    /// The hardware board.
    pub board: SharedBoard,
    /// The SITL vehicle (physics + flight controller).
    pub sitl: Sitl,
    /// The MAVProxy multiplexer in the flight container.
    pub proxy: MavProxy,
    /// The VDC daemon.
    pub vdc: Rc<RefCell<Vdc>>,
    /// The device container's Android instance.
    pub device_instance: AndroidInstance,
    /// The flight container's native Binder bridge to the device
    /// container's GPS/sensors (paper Section 4.3).
    pub hal_bridge: NativeHalBridge,
    /// Deployed virtual drones by name.
    pub vdrones: BTreeMap<String, DeployedVdrone>,
    /// Checkpoints of crashed virtual drone containers awaiting a
    /// supervised restart, by name.
    pub pending_restarts: BTreeMap<String, ContainerCheckpoint>,
    /// Whether the flight controller runs on separate hardware (the
    /// paper's mitigation for kernel-crash risk, Section 4.3).
    pub flight_on_separate_hardware: bool,
    /// The shared observability handle; clones of it live in the
    /// Binder driver, MAVProxy, and the VDC.
    pub obs: ObsHandle,
    /// Set by [`Drone::inject_kernel_panic`].
    host_crashed: bool,
    home: GeoPoint,
}

impl Drone {
    /// Boots a full drone at `home` with AnDrone's default
    /// (PREEMPT_RT) kernel.
    pub fn boot(home: GeoPoint, seed: u64) -> Result<Self, DroneError> {
        Self::boot_with_config(home, seed, KernelConfig::ANDRONE_DEFAULT)
    }

    /// Boots with an explicit kernel configuration.
    pub fn boot_with_config(
        home: GeoPoint,
        seed: u64,
        config: KernelConfig,
    ) -> Result<Self, DroneError> {
        let kernel = Kernel::boot_shared(config, seed);
        let mut runtime = ContainerRuntime::new(kernel.clone())?;
        // One shared observability state for the whole drone; created
        // first so even boot-time Binder traffic is traced at t=0.
        let obs = ObsHandle::attached();

        // Register the shared base images.
        let android_base = Layer::from_files([
            ("/system/build.prop", "ro.build.version=android-things-1.0.3"),
            ("/system/framework/framework.jar", "framework"),
            ("/init.rc", "service servicemanager /system/bin/servicemanager"),
        ]);
        let android_id = runtime.images_mut().put_layer(android_base);
        runtime
            .images_mut()
            .tag(ANDROID_THINGS_IMAGE, vec![android_id])?;
        let flight_base = Layer::from_files([
            ("/etc/alpine-release", "3.7.0"),
            ("/usr/bin/arducopter", "ardupilot-3.4.4"),
            ("/usr/bin/mavproxy", "mavproxy"),
        ]);
        let flight_id = runtime.images_mut().put_layer(flight_base);
        runtime.images_mut().tag(FLIGHT_IMAGE, vec![flight_id])?;

        // Hardware: the device container claims every device.
        let mut hw = HardwareBoard::new(home, seed.wrapping_add(1));
        hw.claim_all("device-container")
            .map_err(|_| DroneError::BootInvariant("fresh board has no claims"))?;
        let board = share(hw);

        // Device container.
        runtime.create(
            "device",
            ContainerKind::Device,
            ANDROID_THINGS_IMAGE,
            ResourceLimits::UNLIMITED,
        )?;
        runtime.start("device")?;
        let device_ctr = runtime
            .get("device")
            .ok_or(DroneError::BootInvariant("device container just created"))?;
        let device_id = device_ctr.id;
        let device_ns = device_ctr.namespaces.device_ns;

        // The VDC and its access table (the policy device services
        // consult).
        let access = Rc::new(RefCell::new(AccessTable::new()));
        access.borrow_mut().set_device_container(device_id);
        let vdc = Rc::new(RefCell::new(Vdc::new(access.clone())));
        vdc.borrow_mut().set_obs(obs.clone());

        let mut driver = BinderDriver::new();
        driver.set_obs(obs.clone());
        let device_instance = {
            let mut k = kernel.borrow_mut();
            boot_android_instance(
                &mut k,
                &mut driver,
                device_id,
                device_ns,
                &SystemServerConfig::device_container(),
                Some(board.clone()),
                access.clone(),
            )?
        };

        // The VDC's own Binder identity (a host daemon opened in the
        // device container's namespace for enforcement queries).
        let vdc_pid = {
            let mut k = kernel.borrow_mut();
            k.tasks
                .spawn("vdc", Euid(0), ContainerId::HOST, SchedPolicy::DEFAULT)
                .map_err(|_| DroneError::BootInvariant("spawn vdc daemon task"))?
        };
        driver.open(vdc_pid, Euid(0), ContainerId::HOST, device_ns);
        vdc.borrow_mut().set_binder_identity(vdc_pid);

        // Flight container: ArduPilot + MAVProxy.
        runtime.create(
            "flight",
            ContainerKind::Flight,
            FLIGHT_IMAGE,
            ResourceLimits::UNLIMITED,
        )?;
        runtime.start("flight")?;
        let flight_id = runtime
            .get("flight")
            .ok_or(DroneError::BootInvariant("flight container just created"))?
            .id;
        access.borrow_mut().set_flight_container(flight_id);
        {
            // The flight controller's fast loop runs at top FIFO
            // priority with locked memory.
            let mut k = kernel.borrow_mut();
            let pid = k
                .tasks
                .spawn("arducopter", Euid(0), flight_id, SchedPolicy::MAX_RT)
                .map_err(|_| DroneError::BootInvariant("spawn ardupilot task"))?;
            if let Some(t) = k.tasks.get_mut(pid) {
                t.mlocked = true;
            }
        }
        // The SITL vehicle flies on the SAME board the device
        // container's services sample: a camera frame captured at a
        // waypoint is geotagged where the drone actually is.
        let sitl = Sitl::with_board(board.clone(), home);
        let mut proxy = MavProxy::new();
        proxy.set_obs(obs.clone());
        proxy.add_unrestricted_client(PILOT_CLIENT);

        // The flight container's HAL bridge process: a native Binder
        // client in the *device container's namespace* (native Linux
        // has no ServiceManager of its own) tagged with the flight
        // container id so policy checks see the right caller.
        let bridge_pid = {
            let mut k = kernel.borrow_mut();
            k.tasks
                .spawn("hal-bridge", Euid(0), flight_id, SchedPolicy::DEFAULT)
                .map_err(|_| DroneError::BootInvariant("spawn hal bridge task"))?
        };
        driver.open(bridge_pid, Euid(0), flight_id, device_ns);
        let hal_bridge = NativeHalBridge::new(bridge_pid);

        Ok(Drone {
            kernel,
            runtime,
            driver,
            board,
            sitl,
            proxy,
            vdc,
            device_instance,
            hal_bridge,
            vdrones: BTreeMap::new(),
            pending_restarts: BTreeMap::new(),
            flight_on_separate_hardware: false,
            obs,
            host_crashed: false,
            home,
        })
    }

    /// The launch/home position.
    pub fn home(&self) -> GeoPoint {
        self.home
    }

    /// Deploys a virtual drone from its definition: creates and
    /// starts the container, boots its Android instance, installs its
    /// apps (granting their manifest permissions), registers it with
    /// the VDC, and attaches its VFC to MAVProxy.
    pub fn deploy_vdrone(
        &mut self,
        name: &str,
        spec: VirtualDroneSpec,
        manifests: &[androne_android::AndroneManifest],
    ) -> Result<(), DroneError> {
        spec.validate().map_err(DroneError::Spec)?;
        self.runtime.create(
            name,
            ContainerKind::VirtualDrone,
            ANDROID_THINGS_IMAGE,
            ResourceLimits::UNLIMITED,
        )?;
        self.runtime.start(name)?;
        let ctr = self
            .runtime
            .get(name)
            .ok_or(DroneError::BootInvariant("vdrone container just created"))?;
        let container = ctr.id;
        let device_ns = ctr.namespaces.device_ns;

        let instance = {
            let mut k = self.kernel.borrow_mut();
            boot_android_instance(
                &mut k,
                &mut self.driver,
                container,
                device_ns,
                &SystemServerConfig::virtual_drone(),
                None,
                self.vdc.borrow().access(),
            )?
        };

        // Install apps and grant their manifest permissions.
        let mut apps = AppRegistry::new();
        for manifest in manifests {
            let euid = apps.install(manifest.clone());
            let mut am = instance.activity_manager.borrow_mut();
            am.register_app(&manifest.package, euid);
            for perm in &manifest.permissions {
                am.grant(&manifest.package, perm.device.android_permission());
            }
            // Record the install in the container image (so the diff
            // travels to the VDR).
            self.runtime
                .get_mut(name)
                .ok_or(DroneError::BootInvariant("vdrone container exists"))?
                .fs
                .write(format!("/data/app/{}.apk", manifest.package), "apk-bytes");
        }

        // VDC registration and VFC attachment.
        self.vdc.borrow_mut().register(name, container, spec.clone());
        let first_wp = spec.waypoints[0];
        let fence = Geofence::new(first_wp.position(), first_wp.max_radius);
        let continuous_view = !spec.continuous_devices.is_empty();
        let whitelist = if spec.wants_flight_control() {
            CommandWhitelist::standard()
        } else {
            CommandWhitelist::guided_only()
        };
        self.proxy
            .add_vfc_client(Vfc::new(name, whitelist, fence, continuous_view));

        let sdk = AndroneSdk::new(self.vdc.clone(), name);
        self.vdrones.insert(
            name.to_string(),
            DeployedVdrone {
                name: name.to_string(),
                container,
                instance,
                apps,
                sdk,
            },
        );
        Ok(())
    }

    /// Resumes a stored virtual drone from a VDR archive.
    pub fn deploy_from_archive(
        &mut self,
        archive: &ContainerArchive,
        spec: VirtualDroneSpec,
        manifests: &[androne_android::AndroneManifest],
        app_state: &str,
    ) -> Result<(), DroneError> {
        let name = archive.name.clone();
        self.runtime
            .create_from_archive(archive, ResourceLimits::UNLIMITED)?;
        self.runtime.start(&name)?;
        // Boot proceeds exactly like a fresh deployment (containers
        // are stateless; state lives in the filesystem + bundles).
        let ctr = self
            .runtime
            .get(&name)
            .ok_or(DroneError::BootInvariant("restored container just created"))?;
        let container = ctr.id;
        let device_ns = ctr.namespaces.device_ns;
        let instance = {
            let mut k = self.kernel.borrow_mut();
            boot_android_instance(
                &mut k,
                &mut self.driver,
                container,
                device_ns,
                &SystemServerConfig::virtual_drone(),
                None,
                self.vdc.borrow().access(),
            )?
        };
        let mut apps = AppRegistry::new();
        for manifest in manifests {
            let euid = apps.install(manifest.clone());
            let mut am = instance.activity_manager.borrow_mut();
            am.register_app(&manifest.package, euid);
            for perm in &manifest.permissions {
                am.grant(&manifest.package, perm.device.android_permission());
            }
        }
        apps.deserialize_saved_state(app_state);

        self.vdc.borrow_mut().register(&name, container, spec.clone());
        let first_unvisited = spec.waypoints[0];
        let fence = Geofence::new(first_unvisited.position(), first_unvisited.max_radius);
        let whitelist = if spec.wants_flight_control() {
            CommandWhitelist::standard()
        } else {
            CommandWhitelist::guided_only()
        };
        self.proxy.add_vfc_client(Vfc::new(
            &name,
            whitelist,
            fence,
            !spec.continuous_devices.is_empty(),
        ));
        let sdk = AndroneSdk::new(self.vdc.clone(), &name);
        self.vdrones.insert(
            name.clone(),
            DeployedVdrone {
                name,
                container,
                instance,
                apps,
                sdk,
            },
        );
        Ok(())
    }

    /// Stops a virtual drone and exports it for the VDR, returning
    /// `(archive, serialized app state)`.
    pub fn save_vdrone(&mut self, name: &str) -> Result<(ContainerArchive, String), DroneError> {
        let vd = self
            .vdrones
            .get_mut(name)
            .ok_or_else(|| DroneError::UnknownVirtualDrone(name.to_string()))?;
        // Deliver onSaveInstanceState to running apps (they persist
        // their bundles; here the registry already holds them).
        let app_state = vd.apps.serialize_saved_state();
        // Persist the bundles into the container image so the diff
        // is self-contained.
        self.runtime
            .get_mut(name)
            .ok_or(DroneError::BootInvariant("saved vdrone container exists"))?
            .fs
            .write("/data/system/androne_saved_state", app_state.clone());
        self.runtime.stop(name)?;
        let archive = self.runtime.export(name)?;
        self.runtime.remove(name)?;
        self.proxy.remove_client(name);
        self.vdc.borrow_mut().unregister(name);
        self.vdrones.remove(name);
        Ok((archive, app_state))
    }

    /// Whether a container may control the flight right now (the
    /// flight container's query to the VDC).
    pub fn flight_control_allowed(&self, name: &str) -> bool {
        self.vdrones
            .get(name)
            .map(|vd| self.vdc.borrow().flight_control_allowed(vd.container))
            .unwrap_or(false)
    }

    /// The VDC enforces revocation for `name` (terminate lingering
    /// device users). Returns terminated pids.
    pub fn enforce_revocation(&mut self, name: &str) -> Vec<androne_simkern::Pid> {
        let mut kernel = self.kernel.borrow_mut();
        self.vdc
            .borrow_mut()
            .enforce_revocation(&mut self.driver, &mut kernel, name)
    }

    /// Total board memory in use (Figure 12's metric).
    pub fn memory_used(&self) -> u64 {
        self.runtime.total_memory_used()
    }

    /// Device access check for a virtual drone (diagnostics).
    pub fn allows(&self, name: &str, device: DeviceClass) -> bool {
        self.vdc.borrow().allows(name, device)
    }

    /// Delivers pending VDC events to every virtual drone's SDK
    /// listeners (each Android instance would dispatch these on its
    /// app loopers; the flight loop calls this once per second).
    pub fn pump_sdk_events(&mut self) {
        for vd in self.vdrones.values_mut() {
            vd.sdk.pump_events();
        }
    }

    /// Crashes one virtual drone's container (an injected fault or a
    /// misbehaving guest): the container is checkpointed at the
    /// instant of the crash, then every task in it dies and the
    /// container stops. The VDC record — allotment, waypoints,
    /// pending events — stays registered so a supervised restart
    /// resumes exactly where the crash interrupted.
    pub fn crash_vdrone(&mut self, name: &str) -> Result<(), DroneError> {
        let container = self
            .vdrones
            .get(name)
            .map(|vd| vd.container)
            .ok_or_else(|| DroneError::UnknownVirtualDrone(name.to_string()))?;
        let checkpoint = {
            let k = self.kernel.borrow();
            self.runtime.checkpoint(name, &k)?
        };
        let pids: Vec<androne_simkern::Pid> = {
            let k = self.kernel.borrow();
            k.tasks.in_container(container).map(|t| t.pid).collect()
        };
        self.runtime.stop(name)?;
        for pid in pids {
            self.driver.kill_process(pid);
        }
        self.pending_restarts.insert(name.to_string(), checkpoint);
        Ok(())
    }

    /// Supervised restart of a crashed virtual drone: removes the
    /// dead container, restores the checkpoint (the restored
    /// container gets a fresh id), and rebinds the VDC record and
    /// access-table entry to it, preserving the allotment state and
    /// flight phase. Apps keep their SDK endpoint; the Binder
    /// identities of the crashed processes stay dead (their restored
    /// tasks re-register on demand, as after a real restore).
    pub fn supervised_restart_vdrone(&mut self, name: &str) -> Result<(), DroneError> {
        let checkpoint = self
            .pending_restarts
            .remove(name)
            .ok_or_else(|| DroneError::UnknownVirtualDrone(name.to_string()))?;
        self.runtime.remove(name)?;
        let new_id = self.runtime.restore(&checkpoint, ResourceLimits::UNLIMITED)?;
        self.vdc.borrow_mut().rebind_container(name, new_id);
        if let Some(vd) = self.vdrones.get_mut(name) {
            vd.container = new_id;
        }
        Ok(())
    }

    /// Simulates a host kernel crash (a kernel-level fault or an
    /// intentional crash from a hostile tenant, paper Section 4.3).
    /// Every container dies and Binder goes with them. If the flight
    /// controller shares the crashed hardware, its fast loop stops
    /// and the motors cut; on separate hardware
    /// ([`Drone::flight_on_separate_hardware`]) the flight continues
    /// and can return to base.
    pub fn inject_kernel_panic(&mut self) {
        self.host_crashed = true;
        let pids: Vec<androne_simkern::Pid> = {
            let k = self.kernel.borrow();
            k.tasks.live().map(|t| t.pid).collect()
        };
        {
            let mut k = self.kernel.borrow_mut();
            for pid in &pids {
                let _ = k.tasks.kill(*pid);
            }
            k.tasks.reap();
        }
        for pid in pids {
            self.driver.kill_process(pid);
        }
        if !self.flight_on_separate_hardware {
            // The flight controller's fast loop dies with the kernel:
            // motors stop producing thrust.
            self.sitl.fc.handle_message(
                &androne_mavlink::Message::CommandLong {
                    command: androne_mavlink::MavCmd::ComponentArmDisarm,
                    params: [0.0, 21196.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                },
                &self.sitl.estimator.state(),
            );
        }
    }

    /// Whether the host kernel has crashed.
    pub fn host_crashed(&self) -> bool {
        self.host_crashed
    }

    /// Captures a frame into every open camera stream whose owner
    /// still has camera access (streams of revoked containers are
    /// closed). The flight loop calls this once per second; callers
    /// forwarding live video can pump at frame rate.
    pub fn pump_camera_streams(&mut self) {
        if let Some(cam) = &self.device_instance.camera_service {
            cam.borrow_mut().pump_frames();
        }
    }

    /// Per-component state hashes for the determinism sanitizer, in a
    /// fixed order. Each entry is `(component name, FNV-1a hash of
    /// its full sim state)`; two runs under the same seed must
    /// produce identical vectors at every observation point.
    pub fn component_hashes(&self) -> Vec<(&'static str, u64)> {
        use androne_simkern::StateHash;
        vec![
            ("kernel", self.kernel.borrow().hash_value()),
            ("binder", self.driver.hash_value()),
            ("sitl", self.sitl.hash_value()),
            ("proxy", self.proxy.hash_value()),
            ("vdc", self.vdc.borrow().hash_value()),
        ]
    }

    /// Fine-grained state hashes for divergence localization: one
    /// entry per kernel task, per proxy client, per VDC record, and
    /// per SITL subcomponent, in a fixed order. Much larger than
    /// [`Drone::component_hashes`]; the sanitizer captures these only
    /// under verbose tracing.
    pub fn detailed_hashes(&self) -> Vec<(String, u64)> {
        use androne_simkern::StateHash;
        let mut out = Vec::new();
        {
            let k = self.kernel.borrow();
            for t in k.tasks.live() {
                out.push((format!("kernel/task/{}", t.pid.0), t.hash_value()));
            }
        }
        for (name, hash) in self.proxy.client_hashes() {
            out.push((format!("proxy/client/{name}"), hash));
        }
        for rec in self.vdc.borrow().records() {
            out.push((format!("vdc/record/{}", rec.name), rec.hash_value()));
        }
        out.push((
            "sitl/truth".into(),
            self.board.borrow().truth.borrow().hash_value(),
        ));
        out.push(("sitl/physics".into(), self.sitl.physics.hash_value()));
        out.push(("sitl/estimator".into(), self.sitl.estimator.hash_value()));
        out.push(("sitl/fc".into(), self.sitl.fc.hash_value()));
        out
    }
}
