//! The fleet executor: multi-wave, multi-flight service runs under a
//! [`FleetFaultPlan`].
//!
//! The paper's lifecycle (Section 2, Figure 4) spans *waves* of
//! planning rounds: orders are planned onto physical flights, flights
//! fly, interrupted virtual drones are saved in the VDR and re-planned
//! onto the next wave until they complete — or, when the service
//! cannot complete them, their unserved allotment is refunded. This
//! module drives that loop deterministically under injected faults on
//! both failure domains:
//!
//! - **drone-side** — each physical flight runs a [`FaultInjector`]
//!   over `faults.effective_plan(flight_index)` (the flight's own
//!   events plus the fleet's correlated events);
//! - **cloud-side** — each wave arms `faults.cloud_armed(wave)` on a
//!   [`FallibleCloud`], so portal outages queue orders, VDR outages
//!   defer resumes, and storage outages buffer offloads.
//!
//! Everything is a pure function of the config seed and the fault
//! plan: per-flight kernel seeds are FNV-mixed from
//! `(seed, wave, flight_index)`, iteration orders are `BTreeMap`
//! orders, and the RNG streams never observe wall clock. Two runs of
//! [`execute_fleet`] with equal inputs are bit-identical — the fleet
//! chaos gate's first invariant.

use std::collections::BTreeMap;

use androne_cloud::{FallibleCloud, PlacedOrder, SaveReason, SavedVirtualDrone};
use androne_hal::GeoPoint;
use androne_obs::ObsHandle;
use androne_simkern::{FleetFaultPlan, StateHasher};
use androne_vdc::{VirtualDroneSpec, WatchdogConfig};

use crate::drone::{Drone, DroneError};
use crate::flight_exec::{execute_flight_probed, EndReason, FlightLog};
use crate::injector::FaultInjector;
use crate::probe::{DigestProbe, ProbeStack};

/// One customer order in a fleet run.
#[derive(Debug, Clone)]
pub struct FleetTenant {
    /// The virtual drone's name (unique across the run).
    pub vd_name: String,
    /// The billing account.
    pub user: String,
    /// The ordered mission.
    pub spec: VirtualDroneSpec,
}

/// Configuration for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Launch base for every flight.
    pub base: GeoPoint,
    /// Root seed; all per-flight seeds derive from it.
    pub seed: u64,
    /// Physical drones available per wave.
    pub fleet_size: usize,
    /// The tenants to serve.
    pub tenants: Vec<FleetTenant>,
    /// Planning rounds before unresolved tenants are refunded.
    pub max_waves: u64,
    /// Per-flight simulated-time safety cap, seconds.
    pub max_sim_seconds: f64,
    /// VDC watchdog for every flight (`None` disables it).
    pub watchdog: Option<WatchdogConfig>,
}

/// How a tenant's order ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantResolution {
    /// Every waypoint was served; the drone is stored completed.
    Completed,
    /// The service could not finish the mission; the unserved energy
    /// allotment was refunded.
    Refunded,
}

/// Per-tenant accounting across the whole run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Billing account.
    pub user: String,
    /// Physical flights this tenant rode.
    pub flights_flown: u32,
    /// Waypoints completed across all flights.
    pub waypoints_completed: usize,
    /// Waypoints ordered.
    pub waypoints_total: usize,
    /// Energy allotted at order time, joules.
    pub energy_allotted_j: f64,
    /// Energy billed across all flights, joules.
    pub billed_energy_j: f64,
    /// Service time billed across all flights, seconds.
    pub billed_time_s: f64,
    /// Energy refunded on terminal failure, joules.
    pub refunded_energy_j: f64,
    /// Allotment left in the VDR after the final flight, joules.
    pub remaining_energy_j: f64,
    /// Time allotment left after the final flight, seconds.
    pub remaining_time_s: f64,
    /// Energy on the billing ledger for this tenant's account, joules
    /// (cross-checks `billed_energy_j`, which is accumulated from the
    /// VDC's allotment records instead).
    pub ledger_energy_j: f64,
    /// Refund on the billing ledger for this tenant's account, joules.
    pub ledger_refund_j: f64,
    /// How the order resolved.
    pub resolution: TenantResolution,
}

impl TenantOutcome {
    /// The tenant-visible outcome, folded to bits. Deliberately
    /// excludes run internals a tenant cannot observe (container
    /// ids, trace digests of *other* flights): this is the value the
    /// fleet gate compares between a faulted run and its no-fault
    /// baseline to prove cross-tenant containment.
    pub fn outcome_bits(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write_str(&self.user);
        h.write_u32(self.flights_flown);
        h.write_usize(self.waypoints_completed);
        h.write_usize(self.waypoints_total);
        h.write_f64(self.energy_allotted_j);
        h.write_f64(self.billed_energy_j);
        h.write_f64(self.billed_time_s);
        h.write_f64(self.refunded_energy_j);
        h.write_f64(self.remaining_energy_j);
        h.write_f64(self.remaining_time_s);
        h.write_f64(self.ledger_energy_j);
        h.write_f64(self.ledger_refund_j);
        h.write_u8(match self.resolution {
            TenantResolution::Completed => 0,
            TenantResolution::Refunded => 1,
        });
        h.finish()
    }
}

/// One executed physical flight.
#[derive(Debug)]
pub struct FlightRecord {
    /// Planning wave the flight flew in.
    pub wave: u64,
    /// Global flight index (the fault plan's flight key).
    pub flight_index: usize,
    /// Virtual drones aboard, sorted.
    pub owners: Vec<String>,
    /// Whether the plan completed (vs. aborted/failsafe).
    pub completed: bool,
    /// Why the flight ended.
    pub end_reason: EndReason,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Battery energy drawn, joules.
    pub total_energy_j: f64,
    /// FNV fold of every per-tick component hash — the flight's
    /// trajectory fingerprint for dual-run comparison.
    pub trace_digest: u64,
    /// The injector's action log (arm/disarm decisions).
    pub injected: Vec<String>,
}

/// The result of a fleet run.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Every flight flown, in execution order.
    pub flights: Vec<FlightRecord>,
    /// Per-tenant accounting, keyed by virtual drone name.
    pub tenants: BTreeMap<String, TenantOutcome>,
    /// Waves actually run.
    pub waves_run: u64,
    /// The cloud façade's degraded-mode log.
    pub cloud_log: Vec<String>,
    /// Simulated backoff the cloud spent in storage retries, ns.
    pub cloud_backoff_ns: u64,
}

impl FleetOutcome {
    /// Folds the entire run to one word: flights (trajectories,
    /// outcomes, injections), tenants (outcome bits), and the cloud's
    /// degraded-mode decisions. Equal digests ⇒ bit-identical runs.
    pub fn fleet_digest(&self) -> u64 {
        let mut h = StateHasher::new();
        for f in &self.flights {
            h.write_u64(f.wave);
            h.write_usize(f.flight_index);
            for o in &f.owners {
                h.write_str(o);
            }
            h.write_bool(f.completed);
            h.write_u8(end_reason_tag(f.end_reason));
            h.write_f64(f.duration_s);
            h.write_f64(f.total_energy_j);
            h.write_u64(f.trace_digest);
            for a in &f.injected {
                h.write_str(a);
            }
        }
        for (name, t) in &self.tenants {
            h.write_str(name);
            h.write_u64(t.outcome_bits());
        }
        h.write_u64(self.waves_run);
        for line in &self.cloud_log {
            h.write_str(line);
        }
        h.write_u64(self.cloud_backoff_ns);
        h.finish()
    }
}

fn end_reason_tag(r: EndReason) -> u8 {
    match r {
        EndReason::Completed => 0,
        EndReason::EnergyExhausted => 1,
        EndReason::TimeExhausted => 2,
        EndReason::Aborted => 3,
        EndReason::LinkLost => 4,
        EndReason::WatchdogRevoked => 5,
    }
}

/// The per-flight kernel seed: a pure FNV mix of the run seed, the
/// wave, and the global flight index. No hidden counters — replaying
/// the same (config, plan) replays the same seeds.
fn flight_seed(run_seed: u64, wave: u64, flight_index: usize) -> u64 {
    let mut h = StateHasher::new();
    h.write_u64(run_seed);
    h.write_u64(wave);
    h.write_usize(flight_index);
    h.finish()
}

/// Mutable per-tenant bookkeeping while the run is in progress.
struct TenantState {
    user: String,
    spec: VirtualDroneSpec,
    flights_flown: u32,
    waypoints_completed: usize,
    billed_energy_j: f64,
    billed_time_s: f64,
    refunded_energy_j: f64,
    remaining_energy_j: f64,
    remaining_time_s: f64,
    resolution: Option<TenantResolution>,
}

/// Runs the full order → plan → fly → save/resume → refund lifecycle
/// for `cfg.tenants` under `faults`. See the module docs for the
/// wave structure and determinism contract.
pub fn execute_fleet(
    cfg: &FleetConfig,
    faults: &FleetFaultPlan,
) -> Result<FleetOutcome, DroneError> {
    let mut cloud = FallibleCloud::new();
    // Cloud-side observability: one attached handle for the whole
    // run, stamped to wave boundaries (1 simulated second per wave)
    // so degraded-mode trace records order by wave.
    let cloud_obs = ObsHandle::attached();
    cloud.set_obs(cloud_obs.clone());
    let mut states: BTreeMap<String, TenantState> = cfg
        .tenants
        .iter()
        .map(|t| {
            (
                t.vd_name.clone(),
                TenantState {
                    user: t.user.clone(),
                    spec: t.spec.clone(),
                    flights_flown: 0,
                    waypoints_completed: 0,
                    billed_energy_j: 0.0,
                    billed_time_s: 0.0,
                    refunded_energy_j: 0.0,
                    remaining_energy_j: t.spec.energy_allotted,
                    remaining_time_s: t.spec.max_duration,
                    resolution: None,
                },
            )
        })
        .collect();

    let mut flights: Vec<FlightRecord> = Vec::new();
    let mut flight_counter: usize = 0;
    let mut next_order_id: u64 = 1;
    let mut waves_run: u64 = 0;

    for wave in 0..cfg.max_waves {
        if states.values().all(|s| s.resolution.is_some()) {
            break;
        }
        waves_run = wave + 1;
        cloud_obs.set_now_ns(wave.saturating_mul(1_000_000_000));
        cloud.begin_wave(wave, faults.cloud_armed(wave));

        // Build this wave's candidate orders. Fresh tenants order
        // their full spec; flown tenants check their saved drone out
        // of the VDR (a lease — abandoned if the wave fails) and
        // order the truncated resume spec. A VDR outage leaves the
        // tenant pending for a later wave; a terminally unresumable
        // drone is refunded here.
        let mut orders: Vec<PlacedOrder> = Vec::new();
        let mut saved_map: BTreeMap<String, SavedVirtualDrone> = BTreeMap::new();
        let mut refunds: Vec<(String, String, f64)> = Vec::new();
        for (name, st) in states.iter_mut() {
            if st.resolution.is_some() {
                continue;
            }
            let spec = if st.flights_flown == 0 {
                Some(st.spec.clone())
            } else {
                match cloud.checkout_saved(name) {
                    Err(_) | Ok(None) => None,
                    Ok(Some(saved)) => match saved.resume_spec() {
                        Some(rspec) => {
                            saved_map.insert(name.clone(), saved);
                            Some(rspec)
                        }
                        None => {
                            // Interrupted with nothing left to fly on:
                            // the entry goes back to storage and the
                            // unserved remainder is refunded.
                            let remaining = saved.remaining_energy_j.max(0.0);
                            cloud.inner.vdr.abandon(name);
                            refunds.push((st.user.clone(), name.clone(), remaining));
                            st.refunded_energy_j += remaining;
                            st.resolution = Some(TenantResolution::Refunded);
                            None
                        }
                    },
                }
            };
            if let Some(spec) = spec {
                orders.push(PlacedOrder {
                    order_id: next_order_id,
                    user: st.user.clone(),
                    vd_name: name.clone(),
                    spec,
                    flexible_schedule: true,
                });
                next_order_id += 1;
            }
        }
        for (user, name, remaining) in refunds {
            cloud.refund_unserved(&user, &name, remaining);
        }
        if orders.is_empty() {
            continue;
        }

        let plans = match cloud.try_plan_flights(&orders, cfg.base, cfg.fleet_size) {
            Ok(plans) => plans,
            Err(_) => {
                // Planning is down this wave: the façade queued the
                // orders; leased resumes go back to storage untouched.
                for name in saved_map.keys() {
                    cloud.inner.vdr.abandon(name);
                }
                continue;
            }
        };

        for plan in plans {
            let mut owners: Vec<String> = plan.legs.iter().map(|l| l.owner.clone()).collect();
            owners.sort();
            owners.dedup();
            // A plan is flyable only if every aboard drone can be
            // produced this wave: a resume we hold the lease for, or
            // a fresh tenant deployable from its order spec. Merged
            // stale queue entries can violate this (e.g. the VDR was
            // down for that tenant); such plans defer a wave.
            let flyable = owners.iter().all(|o| {
                saved_map.contains_key(o)
                    || states
                        .get(o)
                        .is_some_and(|s| s.flights_flown == 0 && s.resolution.is_none())
            });
            if !flyable {
                cloud
                    .log
                    .push(format!("wave {wave}: plan deferred, unavailable drone aboard"));
                continue;
            }

            let seed = flight_seed(cfg.seed, wave, flight_counter);
            let mut drone = Drone::boot(cfg.base, seed)?;
            let mut prior: BTreeMap<String, (usize, u32)> = BTreeMap::new();
            // Leases are committed only once every tenant is aboard:
            // a deploy failure (e.g. the board out of container
            // memory) scraps the whole flight, releases the leases,
            // and defers its tenants to the next wave instead of
            // killing the run.
            let mut leased: Vec<String> = Vec::new();
            let mut scrapped: Option<(String, DroneError)> = None;
            for owner in &owners {
                if let Some(saved) = saved_map.remove(owner) {
                    let spec = saved.resume_spec().unwrap_or_else(|| saved.spec.clone());
                    leased.push(owner.clone());
                    match drone.deploy_from_archive(&saved.archive, spec, &[], &saved.app_state)
                    {
                        Ok(_) => {
                            let wp = if saved.resumable() {
                                saved.waypoints_completed
                            } else {
                                0
                            };
                            prior.insert(owner.clone(), (wp, saved.flights_flown));
                        }
                        Err(e) => {
                            scrapped = Some((owner.clone(), e));
                            break;
                        }
                    }
                } else if let Some(st) = states.get(owner) {
                    match drone.deploy_vdrone(owner, st.spec.clone(), &[]) {
                        Ok(_) => {
                            prior.insert(owner.clone(), (0, 0));
                        }
                        Err(e) => {
                            scrapped = Some((owner.clone(), e));
                            break;
                        }
                    }
                } else {
                    return Err(DroneError::UnknownVirtualDrone(owner.clone()));
                }
            }
            if let Some((owner, e)) = scrapped {
                for name in &leased {
                    cloud.inner.vdr.abandon(name);
                }
                cloud.log.push(format!(
                    "wave {wave}: flight scrapped, {owner} failed to deploy ({e}); tenants deferred"
                ));
                continue;
            }
            for name in &leased {
                cloud.inner.vdr.commit(name);
            }
            drone.vdc.borrow_mut().set_watchdog(cfg.watchdog);

            let flight_id = cloud.inner.new_flight_id();
            let mut injector = FaultInjector::new(faults.effective_plan(flight_counter));
            let mut digest = DigestProbe::new();
            let outcome = {
                let mut probes = ProbeStack::new();
                probes.push(&mut injector);
                probes.push(&mut digest);
                execute_flight_probed(
                    &mut drone,
                    plan,
                    cfg.max_sim_seconds,
                    None,
                    &mut probes,
                )
            };

            // Post-flight bookkeeping per aboard drone.
            for owner in &owners {
                // A crash window that crossed the flight's end leaves
                // its checkpoint pending; restore before saving.
                if drone.pending_restarts.contains_key(owner) {
                    drone.supervised_restart_vdrone(owner)?;
                }
                let (files, energy_used, time_used, completed_all, wp_flight, rem_e, rem_t) = {
                    let vdc = drone.vdc.borrow();
                    let rec = vdc.record(owner);
                    (
                        rec.map(|r| r.marked_files.clone()).unwrap_or_default(),
                        rec.map(|r| r.spec.energy_allotted - r.energy_remaining_j())
                            .unwrap_or(0.0),
                        rec.map(|r| r.spec.max_duration - r.time_remaining_s())
                            .unwrap_or(0.0),
                        rec.map(|r| r.waypoints_completed() >= r.spec.waypoints.len())
                            .unwrap_or(false),
                        rec.map(|r| r.waypoints_completed()).unwrap_or(0),
                        rec.map(|r| r.energy_remaining_j()).unwrap_or(0.0),
                        rec.map(|r| r.time_remaining_s()).unwrap_or(0.0),
                    )
                };
                let file_data: Vec<(String, bytes::Bytes)> = files
                    .into_iter()
                    .map(|path| {
                        let data = drone
                            .runtime
                            .get(owner)
                            .and_then(|c| c.fs.read(&path))
                            .unwrap_or_else(|| bytes::Bytes::from_static(b""));
                        (path, data)
                    })
                    .collect();
                let revoked = outcome.log.iter().any(|e| {
                    matches!(
                        e,
                        FlightLog::WaypointEnd {
                            owner: o,
                            reason: EndReason::WatchdogRevoked,
                            ..
                        } if o == owner
                    )
                });
                let (wp_prior, flights_prior) = prior.get(owner).copied().unwrap_or((0, 0));
                let Some(st) = states.get_mut(owner) else {
                    return Err(DroneError::UnknownVirtualDrone(owner.clone()));
                };
                cloud.try_complete_flight(&st.user, flight_id, energy_used, file_data);
                st.flights_flown = flights_prior + 1;
                st.waypoints_completed = wp_prior + wp_flight;
                st.billed_energy_j += energy_used;
                st.billed_time_s += time_used;
                st.remaining_energy_j = rem_e;
                st.remaining_time_s = rem_t;

                let (archive, app_state) = drone.save_vdrone(owner)?;
                cloud.inner.vdr.store(SavedVirtualDrone {
                    name: owner.clone(),
                    owner: st.user.clone(),
                    spec: st.spec.clone(),
                    archive,
                    app_state,
                    reason: if completed_all {
                        SaveReason::Completed
                    } else {
                        SaveReason::Interrupted
                    },
                    remaining_energy_j: rem_e,
                    remaining_time_s: rem_t,
                    waypoints_completed: wp_prior + wp_flight,
                    flights_flown: flights_prior + 1,
                });
                if completed_all {
                    st.resolution = Some(TenantResolution::Completed);
                } else if revoked {
                    // Policy enforcement is terminal: the watchdog
                    // revoked this drone, so it is not rescheduled;
                    // its unserved remainder is refunded.
                    st.refunded_energy_j += rem_e;
                    st.resolution = Some(TenantResolution::Refunded);
                    let user = st.user.clone();
                    cloud.refund_unserved(&user, owner, rem_e);
                }
            }

            flights.push(FlightRecord {
                wave,
                flight_index: flight_counter,
                owners,
                completed: outcome.completed,
                end_reason: outcome.end_reason,
                duration_s: outcome.duration_s,
                total_energy_j: outcome.total_energy_j,
                trace_digest: digest.digest(),
                injected: injector.actions().to_vec(),
            });
            flight_counter += 1;
        }
        // Leased drones whose plans were deferred go back to storage.
        for name in saved_map.keys() {
            cloud.inner.vdr.abandon(name);
        }
    }

    // End-of-run sweep: whatever is still pending could not be served
    // within the wave budget — refund the unserved remainder (the
    // full allotment if it never flew). Interrupted entries stay in
    // the VDR: the customer's drone itself is never lost.
    for (name, st) in states.iter_mut() {
        if st.resolution.is_some() {
            continue;
        }
        let remaining = if st.flights_flown == 0 {
            st.spec.energy_allotted
        } else {
            st.remaining_energy_j
        };
        cloud.refund_unserved(&st.user, name, remaining);
        st.refunded_energy_j += remaining;
        st.resolution = Some(TenantResolution::Refunded);
    }

    let tenants = states
        .into_iter()
        .map(|(name, st)| {
            let resolution = st.resolution.unwrap_or(TenantResolution::Refunded);
            let bill = cloud.inner.billing.bill(&st.user);
            (
                name,
                TenantOutcome {
                    user: st.user,
                    flights_flown: st.flights_flown,
                    waypoints_completed: st.waypoints_completed,
                    waypoints_total: st.spec.waypoints.len(),
                    energy_allotted_j: st.spec.energy_allotted,
                    billed_energy_j: st.billed_energy_j,
                    billed_time_s: st.billed_time_s,
                    refunded_energy_j: st.refunded_energy_j,
                    remaining_energy_j: st.remaining_energy_j,
                    remaining_time_s: st.remaining_time_s,
                    ledger_energy_j: bill.energy_j,
                    ledger_refund_j: bill.energy_refund_j,
                    resolution,
                },
            )
        })
        .collect();

    Ok(FleetOutcome {
        flights,
        tenants,
        waves_run,
        cloud_log: cloud.log.clone(),
        cloud_backoff_ns: cloud.backoff_spent.as_nanos(),
    })
}
