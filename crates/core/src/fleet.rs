//! The fleet executor: multi-wave, multi-flight service runs under a
//! [`FleetFaultPlan`].
//!
//! The paper's lifecycle (Section 2, Figure 4) spans *waves* of
//! planning rounds: orders are planned onto physical flights, flights
//! fly, interrupted virtual drones are saved in the VDR and re-planned
//! onto the next wave until they complete — or, when the service
//! cannot complete them, their unserved allotment is refunded. This
//! module drives that loop deterministically under injected faults on
//! both failure domains:
//!
//! - **drone-side** — each physical flight runs a [`FaultInjector`]
//!   over `faults.effective_plan(flight_index)` (the flight's own
//!   events plus the fleet's correlated events);
//! - **cloud-side** — each wave arms `faults.cloud_armed(wave)` on a
//!   [`FallibleCloud`], so portal outages queue orders, VDR outages
//!   defer resumes, and storage outages buffer offloads.
//!
//! Everything is a pure function of the config seed and the fault
//! plan: per-flight kernel seeds are FNV-mixed from
//! `(seed, wave, flight_index)`, iteration orders are `BTreeMap`
//! orders, and the RNG streams never observe wall clock. Two runs of
//! [`execute_fleet`] with equal inputs are bit-identical — the fleet
//! chaos gate's first invariant.
//!
//! ## Deterministic parallel waves
//!
//! The fly phase runs on a [`WorkerPool`](crate::pool::WorkerPool)
//! when [`FleetConfig::threads`] > 1. Each flight becomes a
//! single-threaded *island*: a `Send`-able work item (the plan, the
//! deploy sources, the effective fault plan, and the flight's RNG
//! substream seed) that boots its own drone on a worker thread. The
//! drone's `Rc`/`RefCell` hot paths never cross a thread. Cloud-side
//! effects — VDR commits, billing, degraded-mode log lines, flight
//! ids — are replayed at a *merge* step in plan order, so the cloud
//! observes the exact sequential history regardless of which worker
//! finished first. Per-flight seeds and fault plans depend on the
//! global flight index, and a scrapped flight consumes no index, so
//! the driver assigns indices speculatively and re-runs any island
//! whose index shifted until the assignment is a fixpoint. The
//! result: `fleet_digest()`, every tenant's `outcome_bits()`, and
//! the merged metrics digest are bit-identical at any thread count,
//! and `threads = 1` is byte-identical to the historical sequential
//! executor.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use androne_cloud::{
    AdmissionConfig, AdmissionQueue, FallibleCloud, PlacedOrder, SaveReason, SavedVirtualDrone,
};
use androne_hal::GeoPoint;
use androne_obs::{MetricsRegistry, ObsHandle, Subsystem, TraceSegment};
use androne_planner::FlightPlan;
use androne_simkern::{substream_seed, FaultPlan, FleetFaultPlan, StateHasher};
use androne_vdc::{VirtualDroneSpec, WatchdogConfig};
use androne_workloads::{AdaptivePlan, AttackPlan};

use crate::adaptive::AdaptiveInjector;
use crate::attack::{AttackDefense, AttackInjector, RtMonitor};
use crate::drone::{Drone, DroneError};
use crate::flight_exec::{execute_flight_probed, EndReason, FlightLog};
use crate::injector::FaultInjector;
use crate::pool::{WorkerError, WorkerPool};
use crate::probe::{DigestProbe, ProbeStack};

/// One customer order in a fleet run.
#[derive(Debug, Clone)]
pub struct FleetTenant {
    /// The virtual drone's name (unique across the run).
    pub vd_name: String,
    /// The billing account.
    pub user: String,
    /// The ordered mission.
    pub spec: VirtualDroneSpec,
}

/// Configuration for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Launch base for every flight.
    pub base: GeoPoint,
    /// Root seed; all per-flight seeds derive from it.
    pub seed: u64,
    /// Physical drones available per wave.
    pub fleet_size: usize,
    /// The tenants to serve.
    pub tenants: Vec<FleetTenant>,
    /// Planning rounds before unresolved tenants are refunded.
    pub max_waves: u64,
    /// Per-flight simulated-time safety cap, seconds.
    pub max_sim_seconds: f64,
    /// VDC watchdog for every flight (`None` disables it).
    pub watchdog: Option<WatchdogConfig>,
    /// Worker threads for the fly phase. `0` and `1` both run
    /// sequentially on the caller's thread; any width produces
    /// bit-identical output (see the module docs).
    pub threads: usize,
}

/// How a tenant's order ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantResolution {
    /// Every waypoint was served; the drone is stored completed.
    Completed,
    /// The service could not finish the mission; the unserved energy
    /// allotment was refunded.
    Refunded,
}

/// Per-tenant accounting across the whole run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Billing account.
    pub user: String,
    /// Physical flights this tenant rode.
    pub flights_flown: u32,
    /// Waypoints completed across all flights.
    pub waypoints_completed: usize,
    /// Waypoints ordered.
    pub waypoints_total: usize,
    /// Energy allotted at order time, joules.
    pub energy_allotted_j: f64,
    /// Energy billed across all flights, joules.
    pub billed_energy_j: f64,
    /// Service time billed across all flights, seconds.
    pub billed_time_s: f64,
    /// Energy refunded on terminal failure, joules.
    pub refunded_energy_j: f64,
    /// Allotment left in the VDR after the final flight, joules.
    pub remaining_energy_j: f64,
    /// Time allotment left after the final flight, seconds.
    pub remaining_time_s: f64,
    /// Energy on the billing ledger for this tenant's account, joules
    /// (cross-checks `billed_energy_j`, which is accumulated from the
    /// VDC's allotment records instead).
    pub ledger_energy_j: f64,
    /// Refund on the billing ledger for this tenant's account, joules.
    pub ledger_refund_j: f64,
    /// How the order resolved.
    pub resolution: TenantResolution,
}

impl TenantOutcome {
    /// The tenant-visible outcome, folded to bits. Deliberately
    /// excludes run internals a tenant cannot observe (container
    /// ids, trace digests of *other* flights): this is the value the
    /// fleet gate compares between a faulted run and its no-fault
    /// baseline to prove cross-tenant containment.
    pub fn outcome_bits(&self) -> u64 {
        let mut h = StateHasher::new();
        h.write_str(&self.user);
        h.write_u32(self.flights_flown);
        h.write_usize(self.waypoints_completed);
        h.write_usize(self.waypoints_total);
        h.write_f64(self.energy_allotted_j);
        h.write_f64(self.billed_energy_j);
        h.write_f64(self.billed_time_s);
        h.write_f64(self.refunded_energy_j);
        h.write_f64(self.remaining_energy_j);
        h.write_f64(self.remaining_time_s);
        h.write_f64(self.ledger_energy_j);
        h.write_f64(self.ledger_refund_j);
        h.write_u8(match self.resolution {
            TenantResolution::Completed => 0,
            TenantResolution::Refunded => 1,
        });
        h.finish()
    }
}

/// One executed physical flight.
#[derive(Debug)]
pub struct FlightRecord {
    /// Planning wave the flight flew in.
    pub wave: u64,
    /// Global flight index (the fault plan's flight key).
    pub flight_index: usize,
    /// Virtual drones aboard, sorted.
    pub owners: Vec<String>,
    /// Whether the plan completed (vs. aborted/failsafe).
    pub completed: bool,
    /// Why the flight ended.
    pub end_reason: EndReason,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Battery energy drawn, joules.
    pub total_energy_j: f64,
    /// FNV fold of every per-tick component hash — the flight's
    /// trajectory fingerprint for dual-run comparison.
    pub trace_digest: u64,
    /// The injector's action log (arm/disarm decisions), fault
    /// transitions first, then attack transitions and ladder steps.
    pub injected: Vec<String>,
    /// RT-deadline monitor verdict `(samples, misses, max_us)` —
    /// `None` on unattacked flights, which carry no monitor.
    pub rt_deadline: Option<(u64, u64, f64)>,
}

/// The result of a fleet run.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Every flight flown, in execution order.
    pub flights: Vec<FlightRecord>,
    /// Per-tenant accounting, keyed by virtual drone name.
    pub tenants: BTreeMap<String, TenantOutcome>,
    /// Waves actually run.
    pub waves_run: u64,
    /// The cloud façade's degraded-mode log.
    pub cloud_log: Vec<String>,
    /// Simulated backoff the cloud spent in storage retries, ns.
    pub cloud_backoff_ns: u64,
    /// Every flight's metrics registry merged in flight-index order,
    /// then the cloud façade's own registry — the run's aggregate
    /// observability view. Deterministic at any thread count.
    pub metrics: MetricsRegistry,
}

impl FleetOutcome {
    /// Folds the entire run to one word: flights (trajectories,
    /// outcomes, injections), tenants (outcome bits), and the cloud's
    /// degraded-mode decisions. Equal digests ⇒ bit-identical runs.
    pub fn fleet_digest(&self) -> u64 {
        let mut h = StateHasher::new();
        for f in &self.flights {
            h.write_u64(f.wave);
            h.write_usize(f.flight_index);
            for o in &f.owners {
                h.write_str(o);
            }
            h.write_bool(f.completed);
            h.write_u8(end_reason_tag(f.end_reason));
            h.write_f64(f.duration_s);
            h.write_f64(f.total_energy_j);
            h.write_u64(f.trace_digest);
            for a in &f.injected {
                h.write_str(a);
            }
            // Hashed only when a monitor rode the flight, so legacy
            // pinned digests (no attacks, no monitor) are untouched.
            if let Some((samples, misses, max_us)) = f.rt_deadline {
                h.write_u64(samples);
                h.write_u64(misses);
                h.write_f64(max_us);
            }
        }
        for (name, t) in &self.tenants {
            h.write_str(name);
            h.write_u64(t.outcome_bits());
        }
        h.write_u64(self.waves_run);
        for line in &self.cloud_log {
            h.write_str(line);
        }
        h.write_u64(self.cloud_backoff_ns);
        h.finish()
    }

    /// Digest of the merged metrics registry. Compared across thread
    /// counts by the fleet chaos gate: parallel execution must merge
    /// to the exact registry the sequential run accumulates.
    pub fn metrics_digest(&self) -> u64 {
        self.metrics.digest()
    }
}

fn end_reason_tag(r: EndReason) -> u8 {
    match r {
        EndReason::Completed => 0,
        EndReason::EnergyExhausted => 1,
        EndReason::TimeExhausted => 2,
        EndReason::Aborted => 3,
        EndReason::LinkLost => 4,
        EndReason::WatchdogRevoked => 5,
    }
}

/// Fleet-level adversarial workload: per-flight-index attack plans
/// plus the enforcement posture shared by every attacked flight.
/// [`FleetAttackPlan::none`] (what [`execute_fleet`] uses) drives
/// zero attack machinery — the attacked executor with an empty plan
/// is bit-identical to the legacy one.
#[derive(Debug, Clone, Default)]
pub struct FleetAttackPlan {
    /// Attack plans keyed by global flight index; missing indices fly
    /// clean.
    pub flights: BTreeMap<usize, AttackPlan>,
    /// Closed-loop adaptive campaigns keyed by global flight index;
    /// a flight can carry both an open-loop and an adaptive plan.
    pub adaptive: BTreeMap<usize, AdaptivePlan>,
    /// Enforcement armed on every attacked flight; `None` runs the
    /// attacks unthrottled (the breach-demonstration posture).
    pub defense: Option<AttackDefense>,
}

impl FleetAttackPlan {
    /// No attacks anywhere.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no flight carries a non-empty attack plan, open- or
    /// closed-loop.
    pub fn is_empty(&self) -> bool {
        self.flights.values().all(|p| p.is_empty())
            && self.adaptive.values().all(|p| p.is_empty())
    }

    /// The plan for `flight_index` (empty when unattacked).
    pub fn effective_plan(&self, flight_index: usize) -> AttackPlan {
        self.flights
            .get(&flight_index)
            .cloned()
            .unwrap_or_else(AttackPlan::empty)
    }

    /// The adaptive campaign for `flight_index` (empty when none).
    pub fn effective_adaptive(&self, flight_index: usize) -> AdaptivePlan {
        self.adaptive
            .get(&flight_index)
            .cloned()
            .unwrap_or_else(AdaptivePlan::empty)
    }
}

/// The per-flight kernel seed: a pure FNV mix of the run seed, the
/// wave, and the global flight index. No hidden counters — replaying
/// the same (config, plan) replays the same seeds. Delegates to the
/// kernel's substream derivation so every seed consumer agrees on
/// the fold.
fn flight_seed(run_seed: u64, wave: u64, flight_index: usize) -> u64 {
    substream_seed(run_seed, wave, flight_index)
}

/// Mutable per-tenant bookkeeping while the run is in progress.
struct TenantState {
    user: String,
    spec: VirtualDroneSpec,
    flights_flown: u32,
    waypoints_completed: usize,
    billed_energy_j: f64,
    billed_time_s: f64,
    refunded_energy_j: f64,
    remaining_energy_j: f64,
    remaining_time_s: f64,
    resolution: Option<TenantResolution>,
}

/// Where a virtual drone aboard a flight comes from: a leased VDR
/// checkout (resume) or the tenant's fresh order spec. Captured at
/// partition time so the island owns everything it deploys.
#[derive(Clone)]
enum OwnerSource {
    Resume(SavedVirtualDrone),
    Fresh(VirtualDroneSpec),
}

/// One plan's fate for the current wave, decided at partition time
/// against the wave's lease map and tenant states.
enum Disposition {
    /// An aboard drone cannot be produced this wave; the plan defers.
    /// The deferral log line is emitted at merge, in plan order.
    Deferred,
    /// The plan flies as an island. `sources` is parallel to
    /// `owners` (both in sorted-owner order).
    Fly {
        plan: FlightPlan,
        owners: Vec<String>,
        sources: Vec<OwnerSource>,
    },
}

/// The `Send`-able work item one island executes: everything a flight
/// needs, owned, with no cloud access.
struct PlanWork {
    plan: FlightPlan,
    owners: Vec<String>,
    sources: Vec<OwnerSource>,
    seed: u64,
    fault_plan: FaultPlan,
    /// This flight's adversarial workload (empty = unattacked).
    attack_plan: AttackPlan,
    /// This flight's closed-loop adaptive campaign (empty = none).
    adaptive_plan: AdaptivePlan,
    /// Enforcement posture when either attack plan is non-empty.
    defense: Option<AttackDefense>,
    base: GeoPoint,
    max_sim_seconds: f64,
    watchdog: Option<WatchdogConfig>,
    flight_index: usize,
}

/// Per-owner bookkeeping an island brings back for the merge step.
struct OwnerPost {
    owner: String,
    wp_prior: usize,
    flights_prior: u32,
    energy_used: f64,
    time_used: f64,
    completed_all: bool,
    wp_flight: usize,
    rem_e: f64,
    rem_t: f64,
    revoked: bool,
    file_data: Vec<(String, bytes::Bytes)>,
    archive: androne_container::ContainerArchive,
    app_state: String,
}

/// A flight that actually flew, ready to merge.
struct IslandFlight {
    completed: bool,
    end_reason: EndReason,
    duration_s: f64,
    total_energy_j: f64,
    trace_digest: u64,
    injected: Vec<String>,
    rt_deadline: Option<(u64, u64, f64)>,
    /// In sorted-owner order, matching the legacy per-owner loop.
    per_owner: Vec<OwnerPost>,
    /// The drone's full metrics registry, merged into the fleet
    /// registry at the flight's index position.
    metrics: MetricsRegistry,
    /// The drone's fault-injector trace records, absorbed into the
    /// cloud bus at merge for a fleet-wide fault timeline.
    fault_trace: TraceSegment,
}

/// What an island produced.
enum IslandVerdict {
    /// A deploy failed; the flight never flew and consumes no flight
    /// index. `error` is the failing deploy's rendered error.
    Scrapped { owner: String, error: String },
    /// The flight flew (possibly aborted mid-air — that is still a
    /// flown flight with a record and an index).
    Flew(Box<IslandFlight>),
}

/// An island run's full outcome as cached by the speculation loop:
/// contained panic, fatal drone error, or a verdict.
type IslandOutcome = Result<Result<IslandVerdict, DroneError>, WorkerError>;

/// Whether this outcome consumes a flight index. Scraps and panics
/// never flew: the next flyable plan takes the index instead, which
/// is why index assignment is speculative.
fn consumes_index(out: &IslandOutcome) -> bool {
    matches!(out, Ok(Ok(IslandVerdict::Flew(_))) | Ok(Err(_)))
}

/// Runs one flight as a single-threaded island: boot, deploy, fly,
/// and per-owner post-flight reads — no cloud access anywhere.
/// `panic_flight` is the chaos hook: an injected worker panic at a
/// chosen flight index, exercised by the containment tests.
fn run_island(item: PlanWork, panic_flight: Option<usize>) -> Result<IslandVerdict, DroneError> {
    if panic_flight == Some(item.flight_index) {
        // dronelint:allow(R3, chaos-injection hook: the panic IS the fault under test, and the pool's catch_unwind containment is the behavior being verified)
        panic!("worker chaos: injected panic at flight {}", item.flight_index);
    }
    let mut drone = Drone::boot(item.base, item.seed)?;
    let mut prior: BTreeMap<String, (usize, u32)> = BTreeMap::new();
    for (owner, source) in item.owners.iter().zip(item.sources.iter()) {
        let failed = match source {
            OwnerSource::Resume(saved) => {
                let spec = saved.resume_spec().unwrap_or_else(|| saved.spec.clone());
                match drone.deploy_from_archive(&saved.archive, spec, &[], &saved.app_state) {
                    Ok(_) => {
                        let wp = if saved.resumable() {
                            saved.waypoints_completed
                        } else {
                            0
                        };
                        prior.insert(owner.clone(), (wp, saved.flights_flown));
                        None
                    }
                    Err(e) => Some(e),
                }
            }
            OwnerSource::Fresh(spec) => match drone.deploy_vdrone(owner, spec.clone(), &[]) {
                Ok(_) => {
                    prior.insert(owner.clone(), (0, 0));
                    None
                }
                Err(e) => Some(e),
            },
        };
        if let Some(e) = failed {
            return Ok(IslandVerdict::Scrapped {
                owner: owner.clone(),
                error: e.to_string(),
            });
        }
    }
    drone.vdc.borrow_mut().set_watchdog(item.watchdog);

    let mut injector = FaultInjector::new(item.fault_plan);
    // An attacked flight also carries the attack injector and the
    // RT-deadline monitor; an empty attack plan carries neither, so
    // the probe stack — and with it every legacy pinned digest — is
    // exactly the pre-attack one.
    let attacked = !item.attack_plan.is_empty();
    let adaptive = !item.adaptive_plan.is_empty();
    let mut attacker = AttackInjector::new(item.attack_plan, item.defense);
    let mut adaptive_attacker = AdaptiveInjector::new(item.adaptive_plan, item.defense);
    let mut rt_monitor = RtMonitor::new(item.seed);
    let mut digest = DigestProbe::new();
    let outcome = {
        let mut probes = ProbeStack::new();
        probes.push(&mut injector);
        if attacked {
            probes.push(&mut attacker);
        }
        if adaptive {
            probes.push(&mut adaptive_attacker);
        }
        if attacked || adaptive {
            probes.push(&mut rt_monitor);
        }
        probes.push(&mut digest);
        execute_flight_probed(
            &mut drone,
            item.plan,
            item.max_sim_seconds,
            None,
            &mut probes,
        )
    };

    let mut per_owner: Vec<OwnerPost> = Vec::new();
    for owner in item.owners.iter() {
        // A crash window that crossed the flight's end leaves its
        // checkpoint pending; restore before saving.
        if drone.pending_restarts.contains_key(owner) {
            drone.supervised_restart_vdrone(owner)?;
        }
        let (files, energy_used, time_used, completed_all, wp_flight, rem_e, rem_t) = {
            let vdc = drone.vdc.borrow();
            let rec = vdc.record(owner);
            (
                rec.map(|r| r.marked_files.clone()).unwrap_or_default(),
                rec.map(|r| r.spec.energy_allotted - r.energy_remaining_j())
                    .unwrap_or(0.0),
                rec.map(|r| r.spec.max_duration - r.time_remaining_s())
                    .unwrap_or(0.0),
                rec.map(|r| r.waypoints_completed() >= r.spec.waypoints.len())
                    .unwrap_or(false),
                rec.map(|r| r.waypoints_completed()).unwrap_or(0),
                rec.map(|r| r.energy_remaining_j()).unwrap_or(0.0),
                rec.map(|r| r.time_remaining_s()).unwrap_or(0.0),
            )
        };
        let file_data: Vec<(String, bytes::Bytes)> = files
            .into_iter()
            .map(|path| {
                let data = drone
                    .runtime
                    .get(owner)
                    .and_then(|c| c.fs.read(&path))
                    .unwrap_or_else(|| bytes::Bytes::from_static(b""));
                (path, data)
            })
            .collect();
        // Revocation shows up as a WaypointEnd when it fired at an
        // active waypoint, or only as the VDC record flag when the
        // QoS ladder revoked the tenant mid-transit.
        let revoked = outcome.log.iter().any(|e| {
            matches!(
                e,
                FlightLog::WaypointEnd {
                    owner: o,
                    reason: EndReason::WatchdogRevoked,
                    ..
                } if o == owner
            )
        }) || drone
            .vdc
            .borrow()
            .record(owner)
            .is_some_and(|r| r.revoked);
        let (wp_prior, flights_prior) = prior.get(owner).copied().unwrap_or((0, 0));
        let (archive, app_state) = drone.save_vdrone(owner)?;
        per_owner.push(OwnerPost {
            owner: owner.clone(),
            wp_prior,
            flights_prior,
            energy_used,
            time_used,
            completed_all,
            wp_flight,
            rem_e,
            rem_t,
            revoked,
            file_data,
            archive,
            app_state,
        });
    }

    let metrics = drone.obs.with(|o| o.metrics.clone()).unwrap_or_default();
    let fault_trace = drone
        .obs
        .with(|o| o.trace.segment(&[Subsystem::Fault]))
        .unwrap_or_default();
    let mut injected = injector.actions().to_vec();
    injected.extend(attacker.actions().iter().cloned());
    injected.extend(adaptive_attacker.actions().iter().cloned());
    Ok(IslandVerdict::Flew(Box::new(IslandFlight {
        completed: outcome.completed,
        end_reason: outcome.end_reason,
        duration_s: outcome.duration_s,
        total_energy_j: outcome.total_energy_j,
        trace_digest: digest.digest(),
        injected,
        rt_deadline: (attacked || adaptive).then(|| {
            (rt_monitor.samples(), rt_monitor.misses(), rt_monitor.max_us())
        }),
        per_owner,
        metrics,
        fault_trace,
    })))
}

/// The single entry point for fleet runs: configuration plus
/// optional riders, built fluently and executed with [`Self::run`].
///
/// ```ignore
/// let outcome = FleetSpec::new(cfg)
///     .threads(4)
///     .faults(plan)
///     .attacks(attack_plan)
///     .admission(AdmissionConfig::batched(64, 4096))
///     .vdr_shards(4)
///     .run()?;
/// ```
///
/// The legacy free functions ([`execute_fleet`],
/// [`execute_fleet_attacked`], [`execute_fleet_with_worker_chaos`])
/// remain as thin deprecated wrappers; a spec with no riders is
/// byte-identical to them — every pinned chaos/attack/pool digest
/// holds through either door.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    cfg: FleetConfig,
    faults: FleetFaultPlan,
    attacks: FleetAttackPlan,
    panic_flight: Option<usize>,
    admission: Option<AdmissionConfig>,
    vdr_shards: usize,
}

impl FleetSpec {
    /// A spec with no riders: no faults, no attacks, no chaos, the
    /// legacy admit-everything admission, one VDR shard.
    pub fn new(cfg: FleetConfig) -> Self {
        FleetSpec {
            cfg,
            faults: FleetFaultPlan::empty(),
            attacks: FleetAttackPlan::none(),
            panic_flight: None,
            admission: None,
            vdr_shards: 1,
        }
    }

    /// Worker threads for the fly phase (any width is
    /// digest-identical; 0/1 run sequentially).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Drone- and cloud-side fault plan.
    pub fn faults(mut self, faults: FleetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Adversarial-tenant attack plan (with its enforcement posture).
    pub fn attacks(mut self, attacks: FleetAttackPlan) -> Self {
        self.attacks = attacks;
        self
    }

    /// Chaos hook: panic the worker running global flight index
    /// `flight`, proving containment.
    pub fn chaos_panic_at(mut self, flight: usize) -> Self {
        self.panic_flight = Some(flight);
        self
    }

    /// Batched admission: pending tenants queue in per-tenant FIFO
    /// lanes and at most `cfg.admit_per_wave` are planned per wave
    /// (round-robin, starvation-free). `None` (the default) admits
    /// every pending tenant every wave — the legacy behaviour.
    pub fn admission(mut self, cfg: AdmissionConfig) -> Self {
        self.admission = Some(cfg);
        self
    }

    /// Shards the cloud's Virtual Drone Repository `shards` ways
    /// (deterministic FNV of the drone name). Any shard count is
    /// digest-identical to `1`.
    pub fn vdr_shards(mut self, shards: usize) -> Self {
        self.vdr_shards = shards.max(1);
        self
    }

    /// The configuration as currently built.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Executes the run to quiescence. Reusable: `run` borrows the
    /// spec, so one spec can drive a whole thread/shard matrix.
    pub fn run(&self) -> Result<FleetOutcome, DroneError> {
        execute_fleet_inner(
            &self.cfg,
            &self.faults,
            &self.attacks,
            self.panic_flight,
            self.admission,
            self.vdr_shards,
        )
    }
}

/// Runs the full order → plan → fly → save/resume → refund lifecycle
/// for `cfg.tenants` under `faults`. See the module docs for the
/// wave structure and determinism contract.
#[deprecated(note = "use FleetSpec::new(cfg).faults(plan).run()")]
pub fn execute_fleet(
    cfg: &FleetConfig,
    faults: &FleetFaultPlan,
) -> Result<FleetOutcome, DroneError> {
    execute_fleet_inner(cfg, faults, &FleetAttackPlan::none(), None, None, 1)
}

/// [`execute_fleet`] with adversarial tenants aboard: each flight in
/// `attacks` runs its attack plan through an
/// [`AttackInjector`](crate::attack::AttackInjector) under the plan's
/// enforcement posture, with an
/// [`RtMonitor`](crate::attack::RtMonitor) watching the fast loop.
#[deprecated(note = "use FleetSpec::new(cfg).faults(plan).attacks(attacks).run()")]
pub fn execute_fleet_attacked(
    cfg: &FleetConfig,
    faults: &FleetFaultPlan,
    attacks: &FleetAttackPlan,
) -> Result<FleetOutcome, DroneError> {
    execute_fleet_inner(cfg, faults, attacks, None, None, 1)
}

/// Test hook: [`execute_fleet`] with a worker panic injected at one
/// flight index, proving panic containment (the flight scraps, its
/// tenants defer, the run completes). Not part of the public API.
#[doc(hidden)]
#[deprecated(note = "use FleetSpec::new(cfg).faults(plan).chaos_panic_at(i).run()")]
pub fn execute_fleet_with_worker_chaos(
    cfg: &FleetConfig,
    faults: &FleetFaultPlan,
    panic_flight: Option<usize>,
) -> Result<FleetOutcome, DroneError> {
    execute_fleet_inner(cfg, faults, &FleetAttackPlan::none(), panic_flight, None, 1)
}

fn execute_fleet_inner(
    cfg: &FleetConfig,
    faults: &FleetFaultPlan,
    attacks: &FleetAttackPlan,
    panic_flight: Option<usize>,
    admission: Option<AdmissionConfig>,
    vdr_shards: usize,
) -> Result<FleetOutcome, DroneError> {
    let pool = WorkerPool::new(cfg.threads);
    let mut fleet_metrics = MetricsRegistry::new();
    let mut cloud = FallibleCloud::with_shards(vdr_shards.max(1));
    // Tenant-name lanes for batched admission; `None` = legacy
    // admit-everything (no queue state, no new metrics, bit-identical
    // to the pre-admission executor).
    let mut admission_queue: Option<AdmissionQueue<()>> = admission.map(AdmissionQueue::new);
    // Cloud-side observability: one attached handle for the whole
    // run, stamped to wave boundaries (1 simulated second per wave)
    // so degraded-mode trace records order by wave.
    let cloud_obs = ObsHandle::attached();
    cloud.set_obs(cloud_obs.clone());
    let mut states: BTreeMap<String, TenantState> = cfg
        .tenants
        .iter()
        .map(|t| {
            (
                t.vd_name.clone(),
                TenantState {
                    user: t.user.clone(),
                    spec: t.spec.clone(),
                    flights_flown: 0,
                    waypoints_completed: 0,
                    billed_energy_j: 0.0,
                    billed_time_s: 0.0,
                    refunded_energy_j: 0.0,
                    remaining_energy_j: t.spec.energy_allotted,
                    remaining_time_s: t.spec.max_duration,
                    resolution: None,
                },
            )
        })
        .collect();

    let mut flights: Vec<FlightRecord> = Vec::new();
    let mut flight_counter: usize = 0;
    let mut next_order_id: u64 = 1;
    let mut waves_run: u64 = 0;

    for wave in 0..cfg.max_waves {
        if states.values().all(|s| s.resolution.is_some()) {
            break;
        }
        waves_run = wave + 1;
        cloud_obs.set_now_ns(wave.saturating_mul(1_000_000_000));
        cloud.begin_wave(wave, faults.cloud_armed(wave));

        // Build this wave's candidate orders. Fresh tenants order
        // their full spec; flown tenants check their saved drone out
        // of the VDR (a lease — abandoned if the wave fails) and
        // order the truncated resume spec. A VDR outage leaves the
        // tenant pending for a later wave; a terminally unresumable
        // drone is refunded here.
        let mut orders: Vec<PlacedOrder> = Vec::new();
        let mut saved_map: BTreeMap<String, SavedVirtualDrone> = BTreeMap::new();
        let mut refunds: Vec<(String, String, f64)> = Vec::new();
        // Batched admission gate. Every unresolved tenant whose lane
        // is empty (re-)enqueues, then the admitter releases this
        // wave's batch round-robin across lanes. Without an admission
        // config the candidate list is all unresolved tenants in name
        // order — exactly the legacy `states` iteration.
        let candidates: Vec<String> = match admission_queue.as_mut() {
            None => states
                .iter()
                .filter(|(_, s)| s.resolution.is_none())
                .map(|(n, _)| n.clone())
                .collect(),
            Some(queue) => {
                for (name, st) in states.iter() {
                    if st.resolution.is_none() && queue.lane_pending(name) == 0 {
                        match queue.enqueue(name, (), wave) {
                            Ok(_) => cloud_obs.count("admission.enqueued", 1),
                            Err((e, ())) => {
                                cloud_obs.count("admission.backpressure", 1);
                                cloud.log.push(format!("wave {wave}: {name}: {e}"));
                            }
                        }
                    }
                }
                cloud_obs.gauge_max("admission.depth_peak", queue.peak_depth() as f64);
                let batch: Vec<String> =
                    queue.admit().into_iter().map(|a| a.lane).collect();
                cloud_obs.count("admission.admitted", batch.len() as u64);
                batch
            }
        };
        for name in &candidates {
            let Some(st) = states.get_mut(name) else {
                continue;
            };
            if st.resolution.is_some() {
                continue;
            }
            let spec = if st.flights_flown == 0 {
                Some(st.spec.clone())
            } else {
                match cloud.checkout_saved(name) {
                    Err(_) | Ok(None) => None,
                    Ok(Some(saved)) => match saved.resume_spec() {
                        Some(rspec) => {
                            saved_map.insert(name.clone(), saved);
                            Some(rspec)
                        }
                        None => {
                            // Interrupted with nothing left to fly on:
                            // the entry goes back to storage and the
                            // unserved remainder is refunded.
                            let remaining = saved.remaining_energy_j.max(0.0);
                            cloud.inner.vdr.abandon(name);
                            refunds.push((st.user.clone(), name.clone(), remaining));
                            st.refunded_energy_j += remaining;
                            st.resolution = Some(TenantResolution::Refunded);
                            None
                        }
                    },
                }
            };
            if let Some(spec) = spec {
                orders.push(PlacedOrder {
                    order_id: next_order_id,
                    user: st.user.clone(),
                    vd_name: name.clone(),
                    spec,
                    flexible_schedule: true,
                });
                next_order_id += 1;
            }
        }
        for (user, name, remaining) in refunds {
            cloud.refund_unserved(&user, &name, remaining);
        }
        if orders.is_empty() {
            continue;
        }

        let plans = match cloud.try_plan_flights(&orders, cfg.base, cfg.fleet_size) {
            Ok(plans) => plans,
            Err(_) => {
                // Planning is down this wave: the façade queued the
                // orders; leased resumes go back to storage untouched.
                for name in saved_map.keys() {
                    cloud.inner.vdr.abandon(name);
                }
                continue;
            }
        };

        // ── Fly phase: partition → islands → merge, batch by batch.
        //
        // A batch is a maximal prefix of the remaining plans whose
        // flyable members share no owner (a duplicate owner means a
        // later plan's flyable check depends on the earlier flight's
        // outcome — the batch stops there and the plan waits for the
        // merge). Flyable plans become islands on the pool; deferred
        // plans carry through so their log lines land in plan order.
        let mut plans: VecDeque<FlightPlan> = plans.into();
        while !plans.is_empty() {
            let mut batch: Vec<Disposition> = Vec::new();
            let mut claimed: BTreeSet<String> = BTreeSet::new();
            while let Some(peek) = plans.front() {
                let mut owners: Vec<String> =
                    peek.legs.iter().map(|l| l.owner.clone()).collect();
                owners.sort();
                owners.dedup();
                if owners.iter().any(|o| claimed.contains(o)) {
                    break;
                }
                let Some(plan) = plans.pop_front() else { break };
                // A plan is flyable only if every aboard drone can be
                // produced this wave: a resume we hold the lease for,
                // or a fresh tenant deployable from its order spec.
                // Merged stale queue entries can violate this (e.g.
                // the VDR was down for that tenant); such plans defer
                // a wave. Sources are cloned, not taken: lease-map
                // removal is a cloud effect and happens at merge.
                let mut sources: Vec<OwnerSource> = Vec::new();
                let mut flyable = true;
                for o in &owners {
                    if let Some(saved) = saved_map.get(o) {
                        sources.push(OwnerSource::Resume(saved.clone()));
                    } else {
                        match states.get(o) {
                            Some(s) if s.flights_flown == 0 && s.resolution.is_none() => {
                                sources.push(OwnerSource::Fresh(s.spec.clone()));
                            }
                            _ => {
                                flyable = false;
                                break;
                            }
                        }
                    }
                }
                if flyable {
                    claimed.extend(owners.iter().cloned());
                    batch.push(Disposition::Fly {
                        plan,
                        owners,
                        sources,
                    });
                } else {
                    batch.push(Disposition::Deferred);
                }
            }

            // Speculative index assignment: walk the batch giving
            // each flyable plan the next index, assuming uncached
            // islands fly. A scrap/panic consumes no index, shifting
            // every later plan down — their islands re-run at the
            // corrected index (seed and fault plan depend on it)
            // until a walk finds every island cached: the fixpoint.
            let mut cache: BTreeMap<(usize, usize), IslandOutcome> = BTreeMap::new();
            loop {
                let mut idx = flight_counter;
                let mut keys: Vec<(usize, usize)> = Vec::new();
                let mut items: Vec<PlanWork> = Vec::new();
                for (slot, disp) in batch.iter().enumerate() {
                    let Disposition::Fly {
                        plan,
                        owners,
                        sources,
                    } = disp
                    else {
                        continue;
                    };
                    match cache.get(&(slot, idx)) {
                        Some(out) => {
                            if consumes_index(out) {
                                idx += 1;
                            }
                        }
                        None => {
                            items.push(PlanWork {
                                plan: plan.clone(),
                                owners: owners.clone(),
                                sources: sources.clone(),
                                seed: flight_seed(cfg.seed, wave, idx),
                                fault_plan: faults.effective_plan(idx),
                                attack_plan: attacks.effective_plan(idx),
                                adaptive_plan: attacks.effective_adaptive(idx),
                                defense: attacks.defense,
                                base: cfg.base,
                                max_sim_seconds: cfg.max_sim_seconds,
                                watchdog: cfg.watchdog,
                                flight_index: idx,
                            });
                            keys.push((slot, idx));
                            idx += 1;
                        }
                    }
                }
                if keys.is_empty() {
                    break;
                }
                let results = pool.run(items, |item| run_island(item, panic_flight));
                for (key, res) in keys.into_iter().zip(results) {
                    cache.insert(key, res);
                }
            }

            // Merge in plan order: replay every cloud effect exactly
            // as the sequential executor would have issued it.
            for (slot, disp) in batch.into_iter().enumerate() {
                let Disposition::Fly {
                    owners, sources, ..
                } = disp
                else {
                    cloud
                        .log
                        .push(format!("wave {wave}: plan deferred, unavailable drone aboard"));
                    continue;
                };
                let out = cache.remove(&(slot, flight_counter)).unwrap_or_else(|| {
                    // Unreachable: the fixpoint loop only exits once
                    // every island at its settled index is cached.
                    Err(WorkerError::Panicked(
                        "island result missing after fixpoint".to_string(),
                    ))
                });
                match out {
                    Err(WorkerError::Panicked(msg)) => {
                        // Contained worker panic: treat like a scrap
                        // — release every lease, defer the tenants,
                        // keep the run alive.
                        for (owner, source) in owners.iter().zip(sources.iter()) {
                            if matches!(source, OwnerSource::Resume(_)) {
                                saved_map.remove(owner);
                                cloud.inner.vdr.abandon(owner);
                            }
                        }
                        cloud.log.push(format!(
                            "wave {wave}: flight scrapped, worker panicked ({msg}); tenants deferred"
                        ));
                    }
                    Ok(Err(e)) => {
                        // Fatal drone error: the sequential executor
                        // aborts the run here, and on `Err` the cloud
                        // is dropped — only the error is observable,
                        // so no earlier effects need replaying first.
                        return Err(e);
                    }
                    Ok(Ok(IslandVerdict::Scrapped { owner: failed, error })) => {
                        // Leases are committed only once every tenant
                        // is aboard: a deploy failure (e.g. the board
                        // out of container memory) scraps the whole
                        // flight, releases the leases taken so far
                        // (owners up to the failure; later owners
                        // keep their checkout until the end-of-wave
                        // sweep), and defers its tenants to the next
                        // wave instead of killing the run.
                        let failpos = owners
                            .iter()
                            .position(|o| *o == failed)
                            .unwrap_or(owners.len());
                        for (i, (owner, source)) in
                            owners.iter().zip(sources.iter()).enumerate()
                        {
                            if i <= failpos && matches!(source, OwnerSource::Resume(_)) {
                                saved_map.remove(owner);
                                cloud.inner.vdr.abandon(owner);
                            }
                        }
                        cloud.log.push(format!(
                            "wave {wave}: flight scrapped, {failed} failed to deploy ({error}); tenants deferred"
                        ));
                    }
                    Ok(Ok(IslandVerdict::Flew(island))) => {
                        for (owner, source) in owners.iter().zip(sources.iter()) {
                            if matches!(source, OwnerSource::Resume(_)) {
                                saved_map.remove(owner);
                                cloud.inner.vdr.commit(owner);
                            }
                        }
                        let flight_id = cloud.inner.new_flight_id();
                        for post in island.per_owner {
                            let Some(st) = states.get_mut(&post.owner) else {
                                return Err(DroneError::UnknownVirtualDrone(post.owner.clone()));
                            };
                            cloud.try_complete_flight(
                                &st.user,
                                flight_id,
                                post.energy_used,
                                post.file_data,
                            );
                            st.flights_flown = post.flights_prior + 1;
                            st.waypoints_completed = post.wp_prior + post.wp_flight;
                            st.billed_energy_j += post.energy_used;
                            st.billed_time_s += post.time_used;
                            st.remaining_energy_j = post.rem_e;
                            st.remaining_time_s = post.rem_t;

                            cloud.inner.vdr.store(SavedVirtualDrone {
                                name: post.owner.clone(),
                                owner: st.user.clone(),
                                spec: st.spec.clone(),
                                archive: post.archive,
                                app_state: post.app_state,
                                reason: if post.completed_all {
                                    SaveReason::Completed
                                } else {
                                    SaveReason::Interrupted
                                },
                                remaining_energy_j: post.rem_e,
                                remaining_time_s: post.rem_t,
                                waypoints_completed: post.wp_prior + post.wp_flight,
                                flights_flown: post.flights_prior + 1,
                            });
                            if post.completed_all {
                                st.resolution = Some(TenantResolution::Completed);
                            } else if post.revoked {
                                // Policy enforcement is terminal: the
                                // watchdog revoked this drone, so it
                                // is not rescheduled; its unserved
                                // remainder is refunded.
                                st.refunded_energy_j += post.rem_e;
                                st.resolution = Some(TenantResolution::Refunded);
                                let user = st.user.clone();
                                cloud.refund_unserved(&user, &post.owner, post.rem_e);
                            }
                        }

                        flights.push(FlightRecord {
                            wave,
                            flight_index: flight_counter,
                            owners,
                            completed: island.completed,
                            end_reason: island.end_reason,
                            duration_s: island.duration_s,
                            total_energy_j: island.total_energy_j,
                            trace_digest: island.trace_digest,
                            injected: island.injected,
                            rt_deadline: island.rt_deadline,
                        });
                        fleet_metrics.merge_from(&island.metrics);
                        let _ = cloud_obs.with(|o| o.trace.absorb(&island.fault_trace));
                        flight_counter += 1;
                    }
                }
            }
        }
        // Leased drones whose plans were deferred go back to storage.
        for name in saved_map.keys() {
            cloud.inner.vdr.abandon(name);
        }
    }

    // End-of-run sweep: whatever is still pending could not be served
    // within the wave budget — refund the unserved remainder (the
    // full allotment if it never flew). Interrupted entries stay in
    // the VDR: the customer's drone itself is never lost.
    for (name, st) in states.iter_mut() {
        if st.resolution.is_some() {
            continue;
        }
        let remaining = if st.flights_flown == 0 {
            st.spec.energy_allotted
        } else {
            st.remaining_energy_j
        };
        cloud.refund_unserved(&st.user, name, remaining);
        st.refunded_energy_j += remaining;
        st.resolution = Some(TenantResolution::Refunded);
    }

    let tenants = states
        .into_iter()
        .map(|(name, st)| {
            let resolution = st.resolution.unwrap_or(TenantResolution::Refunded);
            let bill = cloud.inner.billing.bill(&st.user);
            (
                name,
                TenantOutcome {
                    user: st.user,
                    flights_flown: st.flights_flown,
                    waypoints_completed: st.waypoints_completed,
                    waypoints_total: st.spec.waypoints.len(),
                    energy_allotted_j: st.spec.energy_allotted,
                    billed_energy_j: st.billed_energy_j,
                    billed_time_s: st.billed_time_s,
                    refunded_energy_j: st.refunded_energy_j,
                    remaining_energy_j: st.remaining_energy_j,
                    remaining_time_s: st.remaining_time_s,
                    ledger_energy_j: bill.energy_j,
                    ledger_refund_j: bill.energy_refund_j,
                    resolution,
                },
            )
        })
        .collect();

    // The cloud façade's own registry merges last, after every
    // flight's — one fixed position, independent of thread count.
    if let Some(cloud_metrics) = cloud_obs.with(|o| o.metrics.clone()) {
        fleet_metrics.merge_from(&cloud_metrics);
    }

    Ok(FleetOutcome {
        flights,
        tenants,
        waves_run,
        cloud_log: cloud.log.clone(),
        cloud_backoff_ns: cloud.backoff_spent.as_nanos(),
        metrics: fleet_metrics,
    })
}
