//! The top-level AnDrone service: cloud plus drone fleet.
//!
//! Drives the complete Figure 4 workflow: users order virtual drones
//! from the portal; the flight planner allocates them to physical
//! flights; drones fly, handing each waypoint to its virtual drone;
//! after landing, files are offloaded to cloud storage, energy is
//! billed, and virtual drones are saved in the VDR (interrupted ones
//! can resume on a later flight).

use androne_android::AndroneManifest;
use androne_cloud::{CloudService, NotificationKind, PlacedOrder, SaveReason, SavedVirtualDrone};
use androne_hal::GeoPoint;
use androne_planner::FlightPlan;

use crate::drone::{Drone, DroneError};
use crate::flight_exec::{execute_flight, AbortCheck, FlightOutcome};

/// The assembled service.
pub struct Androne {
    /// The cloud side.
    pub cloud: CloudService,
    /// Launch base for the fleet.
    pub base: GeoPoint,
    /// Physical drones available.
    pub fleet_size: usize,
    seed: u64,
}

impl Androne {
    /// Creates the service with a fleet launching from `base`.
    pub fn new(base: GeoPoint, fleet_size: usize, seed: u64) -> Self {
        Androne {
            cloud: CloudService::new(),
            base,
            fleet_size,
            seed,
        }
    }

    /// Looks up the manifests for an order's apps (from the store).
    fn manifests_for(&self, order: &PlacedOrder) -> Vec<AndroneManifest> {
        order
            .spec
            .apps
            .iter()
            .filter_map(|apk| {
                let package = apk.strip_suffix(".apk").unwrap_or(apk);
                self.cloud.app_store.get(package).map(|l| l.manifest.clone())
            })
            .collect()
    }

    /// Plans and executes all flights for `orders`, performing
    /// post-flight bookkeeping. Returns one outcome per flight.
    pub fn execute_orders(
        &mut self,
        orders: &[PlacedOrder],
        max_sim_seconds: f64,
    ) -> Result<Vec<FlightOutcome>, DroneError> {
        let plans = self.cloud.plan_flights(orders, self.base, self.fleet_size);
        let mut outcomes = Vec::new();
        for plan in plans {
            let outcome = self.execute_one_flight(orders, plan, max_sim_seconds, None)?;
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Executes one planned flight (exposed for scenario tests that
    /// need abort injection).
    pub fn execute_one_flight(
        &mut self,
        orders: &[PlacedOrder],
        plan: FlightPlan,
        max_sim_seconds: f64,
        abort: Option<AbortCheck<'_>>,
    ) -> Result<FlightOutcome, DroneError> {
        self.seed = self.seed.wrapping_add(100);
        let mut drone = Drone::boot(self.base, self.seed)?;

        // Deploy every virtual drone this plan serves.
        let owners: Vec<String> = {
            let mut o: Vec<String> = plan.legs.iter().map(|l| l.owner.clone()).collect();
            o.dedup();
            o.sort();
            o.dedup();
            o
        };
        // Prior progress per owner, for resumed drones' bookkeeping.
        let mut prior: std::collections::BTreeMap<String, (usize, u32)> =
            std::collections::BTreeMap::new();
        for owner in &owners {
            let order = orders
                .iter()
                .find(|o| &o.vd_name == owner)
                .ok_or_else(|| DroneError::UnknownVirtualDrone(owner.clone()))?;
            // Resume from the VDR if stored, otherwise fresh deploy.
            // The entry is leased during the deploy: a failure
            // abandons the lease and the stored drone survives.
            if let Some(saved) = self.cloud.vdr.checkout(owner) {
                let manifests = self.manifests_for(order);
                let spec = saved.resume_spec().unwrap_or_else(|| saved.spec.clone());
                match drone.deploy_from_archive(&saved.archive, spec, &manifests, &saved.app_state)
                {
                    Ok(_) => {
                        self.cloud.vdr.commit(owner);
                        // A non-resumable entry redeploys its full
                        // spec, so its mission progress restarts.
                        let wp_prior = if saved.resumable() {
                            saved.waypoints_completed
                        } else {
                            0
                        };
                        prior.insert(owner.clone(), (wp_prior, saved.flights_flown));
                    }
                    Err(e) => {
                        self.cloud.vdr.abandon(owner);
                        return Err(e);
                    }
                }
            } else {
                let manifests = self.manifests_for(order);
                drone.deploy_vdrone(owner, order.spec.clone(), &manifests)?;
            }
            // Notify the user their drone is taking off (paper
            // Section 2: email/text with access information).
            self.cloud.notify(
                &order.user,
                NotificationKind::Text,
                format!(
                    "Virtual drone {owner} is launching; connect via your per-container VPN."
                ),
            );
        }

        let flight_id = self.cloud.new_flight_id();
        let outcome = execute_flight(&mut drone, plan, max_sim_seconds, abort);

        // Post-flight bookkeeping per virtual drone.
        for owner in &owners {
            let Some(order) = orders.iter().find(|o| &o.vd_name == owner) else {
                continue;
            };
            // Collect marked files from the container before export.
            let (marked, energy_used, completed_all, wp_this_flight, remaining_e, remaining_t) = {
                let vdc = drone.vdc.borrow();
                let rec = vdc.record(owner);
                (
                    rec.map(|r| r.marked_files.clone()).unwrap_or_default(),
                    rec.map(|r| r.spec.energy_allotted - r.energy_remaining_j())
                        .unwrap_or(0.0),
                    rec.map(|r| r.waypoints_completed() >= r.spec.waypoints.len())
                        .unwrap_or(false),
                    rec.map(|r| r.waypoints_completed()).unwrap_or(0),
                    rec.map(|r| r.energy_remaining_j()).unwrap_or(0.0),
                    rec.map(|r| r.time_remaining_s()).unwrap_or(0.0),
                )
            };
            let mut files = Vec::new();
            for path in marked {
                if let Some(vd) = drone.vdrones.get(owner) {
                    let _ = vd;
                }
                let data = drone
                    .runtime
                    .get(owner)
                    .and_then(|c| c.fs.read(&path))
                    .unwrap_or_else(|| bytes::Bytes::from_static(b""));
                files.push((path, data));
            }
            self.cloud
                .complete_flight(&order.user, flight_id, energy_used, files);

            // Save the virtual drone in the VDR with resume
            // bookkeeping: absolute mission progress and the
            // allotment left to carry onto the next flight.
            let (wp_prior, flights_prior) = prior.get(owner).copied().unwrap_or((0, 0));
            let (archive, app_state) = drone.save_vdrone(owner)?;
            self.cloud.vdr.store(SavedVirtualDrone {
                name: owner.clone(),
                owner: order.user.clone(),
                spec: order.spec.clone(),
                archive,
                app_state,
                reason: if completed_all {
                    SaveReason::Completed
                } else {
                    SaveReason::Interrupted
                },
                remaining_energy_j: remaining_e,
                remaining_time_s: remaining_t,
                waypoints_completed: wp_prior + wp_this_flight,
                flights_flown: flights_prior + 1,
            });
        }
        Ok(outcome)
    }
}
