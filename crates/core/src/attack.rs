//! The adversarial-tenant layer: drives an [`AttackPlan`] against a
//! live drone and watches the fast loop for deadline damage.
//!
//! Two probes compose on the flight executor:
//!
//! - [`AttackInjector`] arms and disarms attack events exactly as
//!   [`crate::injector::FaultInjector`] does fault events, then
//!   *drives* each armed attack every simulated second: Binder
//!   transaction floods and oversized-parcel bombs through the real
//!   admission path, telemetry subscription storms, CPU-quota
//!   saturation on the shared scheduler, fd-table exhaustion. With an
//!   [`AttackDefense`] armed it also walks the escalation ladder —
//!   budget, rate-halving, tenant suspension, watchdog revocation —
//!   off the driver's per-tenant throttle counters.
//! - [`RtMonitor`] samples the kernel's interference-aware latency
//!   model at the 400 Hz fast-loop rate from its own dedicated RNG
//!   stream and counts 2500 µs deadline misses, feeding the
//!   `flight.jitter_us` histogram the black-box recorder tails.
//!
//! Determinism contract: with an empty plan the injector does zero
//! work — no RNG draws, no obs writes, no kernel or driver state
//! touched — so an injector-observed flight is bit-identical to an
//! unobserved one. The monitor draws only from the
//! `rt_monitor_stream_rng` substream and reads the latency model
//! immutably, so it never perturbs the kernel RNG the flight replays
//! on.

use std::collections::BTreeMap;

use androne_binder::{AggregateQos, TenantQos};
use androne_obs::{Subsystem, TraceEvent};
use androne_simkern::latency::profiles;
use androne_simkern::{rt_monitor_stream_rng, ClientId, ContainerId, ResourceKind};
use androne_workloads::{AttackClock, AttackKind, AttackPlan, ARDUPILOT_DEADLINE_US};
use rand::rngs::SmallRng;

use crate::drone::Drone;
use crate::probe::FlightProbe;

/// Enforcement configuration the injector arms on each attacker at
/// attack-arm time. `None` anywhere an `Option<AttackDefense>` is
/// taken means *enforcement disabled* — the unthrottled worst case
/// the adversarial gate proves breaches the fast loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackDefense {
    /// Per-tenant Binder budget (token-bucket rate, parcel ceiling,
    /// fd and subscription budgets) armed on the attacker.
    pub budget: TenantQos,
    /// cgroup-style CPU bandwidth cap (cores) clamped onto the
    /// attacker's scheduler demand during CPU-saturation attacks.
    pub cpu_quota: f64,
    /// Throttle events before the attacker's Binder rate is halved.
    pub halve_after: u64,
    /// Throttle events before the VDC suspends the tenant.
    pub suspend_after: u64,
    /// Throttle events before the watchdog revokes the tenant.
    pub revoke_after: u64,
    /// Drone-wide admission cap across *all* budgeted tenants — the
    /// counter to collusion, where every member stays inside its own
    /// bucket while the group's aggregate load spikes. `None`
    /// disables the cap (the pre-hardening posture).
    pub aggregate: Option<AggregateQos>,
    /// Ladder hysteresis: after this many consecutive quiet ticks
    /// (no new throttle events) an escalated attacker steps DOWN one
    /// rung — `Suspended` is recoverable, not a one-way door. `None`
    /// disables decay (the pre-hardening posture: rungs are sticky).
    pub decay_after: Option<u64>,
    /// Jitter each tenant's token-bucket refill boundary within the
    /// dedicated refill-jitter RNG stream, so refill-phase probers
    /// cannot learn a stable quantum to ride.
    pub refill_jitter: bool,
}

impl Default for AttackDefense {
    fn default() -> Self {
        AttackDefense {
            budget: TenantQos::DEFENSIVE_DEFAULT,
            cpu_quota: 0.5,
            halve_after: 256,
            suspend_after: 2_048,
            revoke_after: 16_384,
            aggregate: None,
            decay_after: None,
            refill_jitter: false,
        }
    }
}

impl AttackDefense {
    /// The hardened posture: everything in [`AttackDefense::default`]
    /// plus the three adaptive-adversary counters — aggregate
    /// admission cap, ladder hysteresis decay, and refill-boundary
    /// jitter. The adaptive gate proves this posture holds the fast
    /// loop against every closed-loop strategy the default posture
    /// cannot.
    pub fn hardened() -> Self {
        AttackDefense {
            aggregate: Some(AggregateQos::HARDENED_DEFAULT),
            decay_after: Some(3),
            refill_jitter: true,
            ..AttackDefense::default()
        }
    }
}

/// How far up the escalation ladder one attacker has been pushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Budget armed, no escalation yet.
    Budgeted,
    /// Binder rate halved.
    RateHalved,
    /// VDC suspended the tenant (continuous devices paused).
    Suspended,
    /// Watchdog revoked the tenant (flight over for it).
    Revoked,
}

impl LadderRung {
    pub(crate) fn name(self) -> &'static str {
        match self {
            LadderRung::Budgeted => "budgeted",
            LadderRung::RateHalved => "rate-halved",
            LadderRung::Suspended => "suspended",
            LadderRung::Revoked => "revoked",
        }
    }
}

/// One ladder movement [`LadderState::advance`] performed this tick.
pub(crate) struct LadderStep {
    pub attacker: String,
    pub rung: LadderRung,
    /// `true` = escalation, `false` = hysteresis decay (step-down).
    pub up: bool,
    /// Cumulative throttle count at the time of the step.
    pub throttles: u64,
}

/// The escalation-ladder walk shared by the open-loop
/// [`AttackInjector`] and the closed-loop
/// [`crate::adaptive::AdaptiveInjector`]: per-attacker rung, the
/// throttle baseline thresholds are measured against, and the
/// quiet-tick counter the hysteresis decay runs on.
///
/// Escalation is measured on throttles *since the last step-down*
/// (`base`), not the raw cumulative count — otherwise a decayed
/// attacker would re-escalate instantly off stale history and the
/// ladder would flip-flop instead of recovering.
#[derive(Default)]
pub(crate) struct LadderState {
    rungs: BTreeMap<String, LadderRung>,
    /// Throttle count at the previous tick (quiet detection).
    last: BTreeMap<String, u64>,
    /// Consecutive quiet ticks per attacker.
    quiet: BTreeMap<String, u64>,
    /// Throttle count at the last step-down (escalation baseline).
    base: BTreeMap<String, u64>,
}

impl LadderState {
    /// Marks `attacker` as budgeted (bottom rung) if enforcement has
    /// not touched it yet.
    pub fn note_budgeted(&mut self, attacker: &str) {
        self.rungs
            .entry(attacker.to_string())
            .or_insert(LadderRung::Budgeted);
    }

    pub fn rung(&self, attacker: &str) -> Option<LadderRung> {
        self.rungs.get(attacker).copied()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, LadderRung)> {
        self.rungs.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Walks every budgeted attacker one rung at most — up when its
    /// post-baseline throttle count crosses the next threshold, down
    /// when `decay_after` consecutive quiet ticks have passed.
    /// Returns the movements; the caller records them.
    pub fn advance(
        &mut self,
        d: &AttackDefense,
        attackers: &[String],
        drone: &mut Drone,
    ) -> Vec<LadderStep> {
        let mut steps = Vec::new();
        for attacker in attackers {
            let Some(rung) = self.rungs.get(attacker).copied() else {
                continue;
            };
            let Some(container) = drone.vdrones.get(attacker).map(|v| v.container) else {
                continue;
            };
            let throttles = drone.driver.throttle_count(&container);
            let last = self.last.insert(attacker.clone(), throttles).unwrap_or(0);
            let active = throttles > last;
            if active {
                self.quiet.insert(attacker.clone(), 0);
            } else {
                *self.quiet.entry(attacker.clone()).or_insert(0) += 1;
            }
            let since_base = throttles - self.base.get(attacker).copied().unwrap_or(0);
            let escalated = match rung {
                LadderRung::Budgeted if since_base >= d.halve_after => {
                    drone.driver.halve_tenant_rate(&container).then_some(LadderRung::RateHalved)
                }
                LadderRung::RateHalved if since_base >= d.suspend_after => {
                    drone.vdc.borrow_mut().on_tenant_suspended(
                        attacker,
                        &format!("binder budget tripped {throttles} times"),
                    );
                    Some(LadderRung::Suspended)
                }
                LadderRung::Suspended if since_base >= d.revoke_after => {
                    drone.vdc.borrow_mut().on_watchdog_revoked(attacker);
                    Some(LadderRung::Revoked)
                }
                _ => None,
            };
            if let Some(next) = escalated {
                self.rungs.insert(attacker.clone(), next);
                steps.push(LadderStep {
                    attacker: attacker.clone(),
                    rung: next,
                    up: true,
                    throttles,
                });
                continue;
            }
            // Hysteresis: a quiet streak steps the attacker back down
            // one rung (revocation stays terminal) and re-baselines
            // the thresholds so only *fresh* violations re-escalate.
            let Some(decay_after) = d.decay_after else {
                continue;
            };
            if self.quiet.get(attacker).copied().unwrap_or(0) < decay_after {
                continue;
            }
            let next = match rung {
                LadderRung::Suspended => {
                    drone.vdc.borrow_mut().on_tenant_resumed(attacker);
                    LadderRung::RateHalved
                }
                LadderRung::RateHalved => {
                    if !drone.driver.restore_tenant_rate(&container) {
                        continue;
                    }
                    LadderRung::Budgeted
                }
                LadderRung::Budgeted | LadderRung::Revoked => continue,
            };
            self.rungs.insert(attacker.clone(), next);
            self.quiet.insert(attacker.clone(), 0);
            self.base.insert(attacker.clone(), throttles);
            steps.push(LadderStep {
                attacker: attacker.clone(),
                rung: next,
                up: false,
                throttles,
            });
        }
        steps
    }
}

/// Arms the drone-wide hardening a defense carries — the aggregate
/// admission cap and the refill-boundary jitter — once per flight.
/// `seed` keys the jitter stream (the plan seed, so identical plans
/// see identical jitter).
pub(crate) fn arm_hardening(drone: &mut Drone, d: &AttackDefense, seed: u64) {
    if let Some(agg) = d.aggregate {
        if drone.driver.aggregate_cap().is_none() {
            drone.driver.set_aggregate_cap(Some(agg));
        }
    }
    if d.refill_jitter && drone.driver.refill_jitter().is_none() {
        drone.driver.set_refill_jitter(Some(seed));
    }
}

/// Histogram bounds for the per-tick Binder throttle trajectory the
/// black-box recorder tails (satellite of the adaptive-adversary
/// work: the flight recorder should show *how hard* enforcement was
/// working in the seconds before an incident).
pub const THROTTLE_TRAJECTORY_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1_024, 4_096];

/// Histogram bounds (millicores) for the armed CPU-quota trajectory.
pub const CPU_QUOTA_BOUNDS: &[u64] = &[100, 250, 500, 1_000, 2_000, 4_000];

/// Records the per-tick enforcement trajectory histograms: the delta
/// of throttle events across `attackers` and the CPU quota (in
/// millicores) currently clamped on them. Both ride the recorder's
/// recent-tail mechanism, so the last ~32 ticks are always in the
/// black box.
pub(crate) fn observe_enforcement(
    drone: &Drone,
    attackers: &[String],
    prev_throttles: &mut u64,
    quota_millicores: u64,
) {
    let total: u64 = attackers
        .iter()
        .filter_map(|a| drone.vdrones.get(a).map(|v| v.container))
        .map(|c| drone.driver.throttle_count(&c))
        .sum();
    let delta = total.saturating_sub(*prev_throttles);
    *prev_throttles = total;
    drone
        .obs
        .observe("binder.throttle_trajectory", THROTTLE_TRAJECTORY_BOUNDS, delta);
    drone
        .obs
        .observe("cpu.quota_millicores", CPU_QUOTA_BOUNDS, quota_millicores);
}

/// Applies an attack plan to a drone, one simulated second at a time.
/// See the module docs for the drive/enforcement model.
pub struct AttackInjector {
    clock: AttackClock,
    defense: Option<AttackDefense>,
    actions: Vec<String>,
    /// Ladder state per attacker name; absent = not yet budgeted.
    ladder: LadderState,
    /// Total throttle count at the previous tick, for the
    /// throttle-trajectory tail.
    prev_throttles: u64,
}

impl AttackInjector {
    /// Wraps a plan. `defense: None` runs the attacks unthrottled.
    pub fn new(plan: AttackPlan, defense: Option<AttackDefense>) -> Self {
        AttackInjector {
            clock: AttackClock::new(plan),
            defense,
            actions: Vec::new(),
            ladder: LadderState::default(),
            prev_throttles: 0,
        }
    }

    /// The plan being driven.
    pub fn plan(&self) -> &AttackPlan {
        self.clock.plan()
    }

    /// Human-readable log of every transition and ladder step so far.
    pub fn actions(&self) -> &[String] {
        &self.actions
    }

    /// The ladder rung `attacker` currently sits on, if enforcement
    /// engaged it at all. With hysteresis decay armed this can move
    /// down as well as up.
    pub fn rung(&self, attacker: &str) -> Option<LadderRung> {
        self.ladder.rung(attacker)
    }

    /// Ladder state for every attacker enforcement touched, sorted.
    pub fn rungs(&self) -> impl Iterator<Item = (&str, LadderRung)> {
        self.ladder.iter()
    }

    fn container_of(drone: &Drone, attacker: &str) -> Option<ContainerId> {
        drone.vdrones.get(attacker).map(|v| v.container)
    }

    fn record(&mut self, drone: &Drone, kind: &'static str, attacker: &str, armed: bool, action: String) {
        drone.obs.count("attack.transitions", 1);
        let attacker = attacker.to_string();
        drone.obs.emit(Subsystem::Fault, || TraceEvent::AttackEdge {
            kind,
            attacker,
            armed,
            detail: action.clone(),
        });
        self.actions.push(action);
    }

    /// Applies every attack transition scheduled at `tick`, then
    /// drives each armed attack's per-tick load and advances the
    /// escalation ladder. Call once per simulated second.
    pub fn apply_tick(&mut self, tick: u64, drone: &mut Drone) {
        if self.clock.plan().is_empty() {
            return;
        }
        let transitions = self.clock.transitions_at(tick);
        for t in transitions {
            let Some(event) = self.clock.plan().events.get(t.index).cloned() else {
                continue;
            };
            self.apply_transition(tick, &event.attacker, event.kind, t.armed, drone);
        }
        self.drive_armed(drone);
        self.advance_ladder(tick, drone);
        let quota_millicores = match self.defense {
            Some(d) => {
                let armed_cpu = (0..self.clock.plan().events.len())
                    .filter(|&i| self.clock.is_armed(i))
                    .filter_map(|i| self.clock.plan().events.get(i))
                    .filter(|e| matches!(e.kind, AttackKind::CpuSaturation { .. }))
                    .count() as u64;
                armed_cpu * (d.cpu_quota * 1_000.0) as u64
            }
            None => 0,
        };
        let attackers = self.clock.plan().attackers();
        observe_enforcement(drone, &attackers, &mut self.prev_throttles, quota_millicores);
    }

    fn apply_transition(
        &mut self,
        tick: u64,
        attacker: &str,
        kind: AttackKind,
        armed: bool,
        drone: &mut Drone,
    ) {
        let verb = if armed { "arm" } else { "disarm" };
        let Some(container) = Self::container_of(drone, attacker) else {
            let action = format!("t={tick} {verb} {} {attacker}: not deployed", kind.name());
            self.record(drone, kind.name(), attacker, armed, action);
            return;
        };
        if armed {
            // Enforcement arms with the attack: budget the tenant,
            // then register the attack's residual interference — the
            // throttled profile when defended, the raw one when not.
            let profile = match self.defense {
                Some(d) => {
                    if drone.driver.tenant_budget(&container).is_none() {
                        drone.driver.set_tenant_budget(container, d.budget);
                        self.ladder.note_budgeted(attacker);
                    }
                    arm_hardening(drone, &d, self.clock.plan().seed);
                    profiles::attack_throttled(kind.source_name())
                }
                None => profiles::attack_unenforced(kind.source_name()),
            };
            drone.kernel.borrow_mut().add_interference(profile);
        } else {
            drone.kernel.borrow_mut().remove_interference(kind.source_name());
        }
        match kind {
            AttackKind::TelemetryStorm { .. } if !armed => {
                drone.driver.release_subscriptions(&container);
            }
            AttackKind::CpuSaturation { demand } => {
                let mut kernel = drone.kernel.borrow_mut();
                let cpu = kernel.resources.get_mut(ResourceKind::Cpu);
                let client = ClientId::from(attacker);
                if armed {
                    cpu.register(attacker, demand);
                    if let Some(d) = self.defense {
                        cpu.set_quota(attacker, d.cpu_quota);
                    }
                } else {
                    cpu.unregister(&client);
                    cpu.clear_quota(&client);
                }
            }
            _ => {}
        }
        let action = format!("t={tick} {verb} {} {attacker}", kind.name());
        self.record(drone, kind.name(), attacker, armed, action);
    }

    /// One second of load from every armed attack.
    fn drive_armed(&mut self, drone: &mut Drone) {
        for index in 0..self.clock.plan().events.len() {
            if !self.clock.is_armed(index) {
                continue;
            }
            let Some(event) = self.clock.plan().events.get(index).cloned() else {
                continue;
            };
            let Some(container) = Self::container_of(drone, &event.attacker) else {
                continue;
            };
            match event.kind {
                AttackKind::BinderFlood { per_tick } => {
                    for _ in 0..per_tick {
                        let _ = drone.driver.attack_transact(container, 64);
                    }
                }
                AttackKind::ParcelBomb { wire_size } => {
                    // A bomb is few transactions, each enormous; the
                    // parcel ceiling (not the rate) is the defense.
                    for _ in 0..8 {
                        let _ = drone.driver.attack_transact(container, wire_size as usize);
                    }
                }
                AttackKind::TelemetryStorm { subscribers } => {
                    for _ in 0..subscribers {
                        let _ = drone.driver.try_subscribe(container);
                    }
                }
                AttackKind::CpuSaturation { .. } => {
                    // Scheduler pressure is standing demand registered
                    // at arm time; nothing to drive per tick.
                }
                AttackKind::FdExhaustion { per_tick } => {
                    for _ in 0..per_tick {
                        let _ = drone.driver.attack_install_fd(container);
                    }
                }
            }
        }
    }

    /// Walks each budgeted attacker along the ladder — up as its
    /// post-baseline throttle count crosses the thresholds, down
    /// under hysteresis decay. One rung per tick at most — graceful
    /// degradation (and recovery), not a cliff.
    fn advance_ladder(&mut self, tick: u64, drone: &mut Drone) {
        let Some(d) = self.defense else {
            return;
        };
        let attackers = self.clock.plan().attackers();
        for step in self.ladder.advance(&d, &attackers, drone) {
            let counter = if step.up {
                "attack.ladder.steps"
            } else {
                "attack.ladder.decays"
            };
            drone.obs.count(counter, 1);
            let arrow = if step.up { "->" } else { "~>" };
            let action = format!(
                "t={tick} ladder {} {arrow} {} (throttles={})",
                step.attacker,
                step.rung.name(),
                step.throttles
            );
            self.record(drone, "ladder", &step.attacker, step.up, action);
        }
    }
}

impl FlightProbe for AttackInjector {
    fn on_tick(&mut self, tick: u64, drone: &mut Drone) {
        self.apply_tick(tick, drone);
    }
}

/// Histogram bounds (µs) for the fast-loop wakeup jitter the
/// [`RtMonitor`] records; the last bound sits at four times the
/// ArduPilot deadline so the breach tail stays visible.
pub const FLIGHT_JITTER_BOUNDS: &[u64] = &[10, 25, 50, 100, 250, 500, 1_000, 2_500, 10_000];

/// The RT-deadline monitor probe: every simulated second it draws
/// `samples_per_tick` wakeup latencies from the kernel's
/// interference-aware latency model — the fast loop runs at 400 Hz,
/// so 400 samples per tick mirrors one wakeup per loop — and counts
/// misses against ArduPilot's 2500 µs budget. Draws come from the
/// monitor's own [`rt_monitor_stream_rng`] substream; the kernel RNG
/// is never touched.
pub struct RtMonitor {
    rng: SmallRng,
    samples_per_tick: u32,
    samples: u64,
    misses: u64,
    max_us: f64,
}

impl RtMonitor {
    /// A monitor at the fast-loop rate (400 samples per simulated
    /// second), seeded from the flight's RNG substream.
    pub fn new(seed: u64) -> Self {
        Self::with_rate(seed, 400)
    }

    /// A monitor with an explicit per-tick sample count.
    pub fn with_rate(seed: u64, samples_per_tick: u32) -> Self {
        RtMonitor {
            rng: rt_monitor_stream_rng(seed),
            samples_per_tick,
            samples: 0,
            misses: 0,
            max_us: 0.0,
        }
    }

    /// Wakeup latencies sampled so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Samples that blew the 2500 µs fast-loop deadline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Worst wakeup latency observed, µs.
    pub fn max_us(&self) -> f64 {
        self.max_us
    }
}

impl FlightProbe for RtMonitor {
    fn on_tick(&mut self, _tick: u64, drone: &mut Drone) {
        let kernel = drone.kernel.borrow();
        let model = kernel.latency_model();
        for _ in 0..self.samples_per_tick {
            let us = model.sample(&mut self.rng).as_micros_f64();
            self.samples += 1;
            if us > self.max_us {
                self.max_us = us;
            }
            if us > ARDUPILOT_DEADLINE_US {
                self.misses += 1;
            }
            drone
                .obs
                .observe("flight.jitter_us", FLIGHT_JITTER_BOUNDS, us as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use androne_workloads::AttackPlan;

    #[test]
    fn empty_plan_injector_is_inert() {
        let inj = AttackInjector::new(AttackPlan::empty(), Some(AttackDefense::default()));
        assert!(inj.plan().is_empty());
        assert!(inj.actions().is_empty());
        assert!(inj.rungs().next().is_none());
    }

    #[test]
    fn rt_monitor_is_deterministic_per_seed() {
        // Same seed, same draw sequence; the monitor never consults
        // wall clock or global state.
        use rand::Rng;
        let mut a = rt_monitor_stream_rng(42);
        let mut b = rt_monitor_stream_rng(42);
        let (x, y): (u64, u64) = (a.gen(), b.gen());
        assert_eq!(x, y);
        let m = RtMonitor::new(42);
        assert_eq!(m.samples(), 0);
        assert_eq!(m.misses(), 0);
        assert_eq!(m.max_us(), 0.0);
    }

    #[test]
    fn ladder_rungs_order_by_severity() {
        assert!(LadderRung::Budgeted < LadderRung::RateHalved);
        assert!(LadderRung::RateHalved < LadderRung::Suspended);
        assert!(LadderRung::Suspended < LadderRung::Revoked);
    }
}
