//! The flight probe API: first-class instrumentation points on the
//! flight executor.
//!
//! A [`FlightProbe`] replaces the old `Option<FlightObserver<'_>>`
//! closure parameter. Where the closure gave one anonymous per-second
//! hook that every harness re-wrapped by hand, the trait names the
//! three moments a harness can care about — and [`ProbeStack`] lets
//! fault injection, state hashing, tracing, and test assertions ride
//! the same flight as *peer* probes instead of nested closures:
//!
//! - [`on_tick`](FlightProbe::on_tick): once per simulated second,
//!   after that second's processing. Mutable drone access, so fault
//!   harnesses can perturb state at an exact tick; well-behaved
//!   probes only read.
//! - [`on_event`](FlightProbe::on_event): at every flight-log entry
//!   (launch, handover, leg end, breach, abort, landing), before the
//!   entry is appended.
//! - [`on_end`](FlightProbe::on_end): once, with the finished
//!   [`FlightOutcome`], before `execute_flight_probed` returns.
//!
//! All three default to no-ops; a probe implements only what it
//! needs.

use androne_obs::BlackBoxSnapshot;
use androne_simkern::StateHasher;

use crate::drone::Drone;
use crate::flight_exec::{EndReason, FlightLog, FlightOutcome};

/// Instrumentation hooks on one executed flight. See the module docs
/// for the call contract.
pub trait FlightProbe {
    /// Called once per simulated second with the tick index (seconds
    /// since launch), after that second's processing.
    fn on_tick(&mut self, _tick: u64, _drone: &mut Drone) {}

    /// Called at every flight-log entry, before it is appended.
    fn on_event(&mut self, _tick: u64, _event: &FlightLog, _drone: &mut Drone) {}

    /// Called once with the finished outcome, before the executor
    /// returns.
    fn on_end(&mut self, _outcome: &FlightOutcome, _drone: &mut Drone) {}
}

/// The no-op probe; `execute_flight` is `execute_flight_probed` with
/// this.
pub struct NoProbe;

impl FlightProbe for NoProbe {}

/// Adapts a per-tick closure into a probe — the migration path for
/// harnesses that only ever wanted the old observer's single hook.
pub struct FnProbe<F: FnMut(u64, &mut Drone)> {
    f: F,
}

impl<F: FnMut(u64, &mut Drone)> FnProbe<F> {
    /// Wraps `f` as an `on_tick`-only probe.
    pub fn new(f: F) -> Self {
        FnProbe { f }
    }
}

impl<F: FnMut(u64, &mut Drone)> FlightProbe for FnProbe<F> {
    fn on_tick(&mut self, tick: u64, drone: &mut Drone) {
        (self.f)(tick, drone);
    }
}

/// Composes probes: every hook fans out to each member in push
/// order. Members are borrowed, not owned, so the caller keeps
/// access to its probes (digests, action logs, snapshots) after the
/// flight returns.
#[derive(Default)]
pub struct ProbeStack<'a> {
    probes: Vec<&'a mut dyn FlightProbe>,
}

impl<'a> ProbeStack<'a> {
    /// An empty stack.
    pub fn new() -> Self {
        ProbeStack { probes: Vec::new() }
    }

    /// Appends a probe; hooks fire in push order.
    pub fn push(&mut self, probe: &'a mut dyn FlightProbe) -> &mut Self {
        self.probes.push(probe);
        self
    }

    /// Number of composed probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// True when no probe has been pushed.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

impl FlightProbe for ProbeStack<'_> {
    fn on_tick(&mut self, tick: u64, drone: &mut Drone) {
        for p in &mut self.probes {
            p.on_tick(tick, drone);
        }
    }

    fn on_event(&mut self, tick: u64, event: &FlightLog, drone: &mut Drone) {
        for p in &mut self.probes {
            p.on_event(tick, event, drone);
        }
    }

    fn on_end(&mut self, outcome: &FlightOutcome, drone: &mut Drone) {
        for p in &mut self.probes {
            p.on_end(outcome, drone);
        }
    }
}

/// Folds every per-second component hash into one FNV digest — the
/// fleet executor's per-flight trace digest, as a reusable probe.
pub struct DigestProbe {
    h: StateHasher,
}

impl DigestProbe {
    /// A fresh digest.
    pub fn new() -> Self {
        DigestProbe {
            h: StateHasher::new(),
        }
    }

    /// The digest over every tick observed so far.
    pub fn digest(&self) -> u64 {
        self.h.finish()
    }
}

impl Default for DigestProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightProbe for DigestProbe {
    fn on_tick(&mut self, tick: u64, drone: &mut Drone) {
        self.h.write_u64(tick);
        for (component, hash) in drone.component_hashes() {
            self.h.write_str(component);
            self.h.write_u64(hash);
        }
    }
}

/// The black-box flight recorder probe: on any non-`Completed` end
/// of flight it freezes the last `window_s` seconds of the drone's
/// trace bus into a [`BlackBoxSnapshot`]; a completed flight leaves
/// it empty.
pub struct FlightRecorder {
    window_s: u64,
    snapshot: Option<BlackBoxSnapshot>,
}

impl FlightRecorder {
    /// A recorder covering the final `window_s` simulated seconds.
    pub fn new(window_s: u64) -> Self {
        FlightRecorder {
            window_s,
            snapshot: None,
        }
    }

    /// The frozen black box, if the flight ended abnormally.
    pub fn snapshot(&self) -> Option<&BlackBoxSnapshot> {
        self.snapshot.as_ref()
    }

    /// Consumes the recorder, yielding the black box if any.
    pub fn into_snapshot(self) -> Option<BlackBoxSnapshot> {
        self.snapshot
    }
}

impl FlightProbe for FlightRecorder {
    fn on_end(&mut self, outcome: &FlightOutcome, drone: &mut Drone) {
        if outcome.end_reason == EndReason::Completed {
            return;
        }
        let window_ns = self.window_s.saturating_mul(1_000_000_000);
        self.snapshot = drone
            .obs
            .snapshot_window(window_ns, outcome.end_reason.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Drone-driven probe behavior is covered by the integration
    // tests (tests/determinism.rs, tests/chaos.rs); here we check
    // the pure composition plumbing.

    #[test]
    fn probe_stack_tracks_members() {
        let mut a = NoProbe;
        let mut b = DigestProbe::new();
        let mut stack = ProbeStack::new();
        assert!(stack.is_empty());
        stack.push(&mut a);
        stack.push(&mut b);
        assert_eq!(stack.len(), 2);
    }

    #[test]
    fn fresh_digests_agree() {
        assert_eq!(DigestProbe::new().digest(), DigestProbe::default().digest());
    }

    #[test]
    fn recorder_starts_empty() {
        let r = FlightRecorder::new(30);
        assert!(r.snapshot().is_none());
        assert!(r.into_snapshot().is_none());
    }
}
